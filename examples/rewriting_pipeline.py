#!/usr/bin/env python3
"""Deep dive: the four binary-rewriting stages of Fig. 1.

Walks one binary through disassembly -> structural recovery ->
transformation -> code generation, printing the artifacts of each
stage: the recovered blocks and symbols, the symbolized listing, a
manual patch, and the reassembled (still working) executable.
"""

from repro.asm import assemble
from repro.disasm import disassemble, pretty_print, reassemble
from repro.disasm.functions import find_functions
from repro.emu import run_executable
from repro.gtirb import build_cfg
from repro.patcher import Patcher
from repro.workloads import pincheck


def main():
    wl = pincheck.workload()
    exe = wl.build()

    print("stage 1+2: disassembly & structural recovery")
    module = disassemble(exe)
    text = module.text()
    print(f"  code blocks : {len(text.code_blocks())}")
    print(f"  symbols     : {len(module.symbols)}")
    functions = find_functions(module)
    for function in functions:
        print(f"  function {function.name}: "
              f"{len(function.blocks)} block(s), "
              f"{function.instruction_count()} instruction(s)")
    cfg = build_cfg(module)
    print(f"  CFG edges   : {len(cfg.edges)}")

    print("\nstage 2b: symbolized, reassembleable listing (excerpt)")
    listing = pretty_print(module)
    for line in listing.splitlines()[:24]:
        print(f"  {line}")
    print("  ...")

    print("\nstage 3: transformation — patch the pin compare")
    patcher = Patcher(module)
    cmp_entries = [
        entry
        for block in text.code_blocks()
        for entry in list(block.entries)
        if entry.insn.name == "cmp" and not entry.protected
    ]
    patched = sum(patcher.patch_entry(e) for e in cmp_entries)
    print(f"  patched {patched} compare instruction(s) "
          f"(Table II pattern)")
    for record in patcher.log:
        state = "applied" if record.applied else f"skip ({record.reason})"
        print(f"    {record.mnemonic:<6} @ "
              f"{'?' if record.address is None else hex(record.address)}"
              f" -> {state}")

    print("\nstage 4: code generation (reassembly)")
    rebuilt = reassemble(module)
    print(f"  text size {exe.code_size()}B -> {rebuilt.code_size()}B")
    good = run_executable(rebuilt, stdin=wl.good_input)
    bad = run_executable(rebuilt, stdin=wl.bad_input)
    print(f"  correct pin -> {good.stdout.decode().strip()!r}")
    print(f"  wrong pin   -> {bad.stdout.decode().strip()!r}")


if __name__ == "__main__":
    main()
