#!/usr/bin/env python3
"""Secure-boot scenario: protect a bootloader's digest check.

Mirrors the paper's motivation (ARM secure boot / bootloader bypasses
via glitching): the loader hashes a firmware image and boots only on a
digest match.  We attack it with instruction-skip *and* single-bit-flip
faults, then harden it with both methodologies and compare.
"""

from repro.emu import run_executable
from repro.workloads import bootloader


def main():
    wl = bootloader.workload(rich=True)
    exe = wl.build()
    target = wl.target(exe=exe)   # Target: exe + inputs + oracle
    print(f"bootloader text size: {exe.code_size()} bytes")

    tampered = wl.bad_input
    print(f"tampered image -> "
          f"{run_executable(exe, stdin=tampered).stdout.decode()!r}")

    print("\n--- fault campaigns on the unprotected loader ---")
    reports = target.campaign(models=("skip", "bitflip"))
    for model, report in reports.items():
        points = report.vulnerable_points()
        print(f"{model:>8}: {report.outcomes.get('success', 0)} "
              f"successful fault(s) at {len(points)} point(s): "
              + ", ".join(f"{p.mnemonic}@{p.address:#x}"
                          for p in points))

    print("\n--- approach 1: Faulter+Patcher (targeted) ---")
    fp = target.harden(approach="faulter+patcher",
                       fault_models=("skip",))
    print(fp.report())

    print("\n--- approach 2: Hybrid lift/harden/lower (holistic) ---")
    hy = target.harden(approach="hybrid", fault_models=("skip",))
    print(hy.report())

    print("\n--- the trade-off (paper Section IV-D) ---")
    print(f"targeted  F+P overhead : {fp.overhead_percent:+8.2f}%")
    print(f"holistic hybrid overhead: {hy.overhead_percent:+8.2f}%")
    print("both loaders still boot the genuine image:")
    for name, image in (("F+P", fp.hardened), ("hybrid", hy.hardened)):
        out = run_executable(image, stdin=wl.good_input)
        print(f"  {name:>6}: {out.stdout.decode().splitlines()[-1]!r}")


if __name__ == "__main__":
    main()
