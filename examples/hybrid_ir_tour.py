#!/usr/bin/env python3
"""Hybrid pipeline tour: lift to SSA IR, harden, inspect, lower.

Shows what the paper's Fig. 3 upper path actually produces: the lifted
LLVM-like IR of the pincheck binary, the CFG transformation performed
by the conditional-branch-hardening pass (Fig. 5), the instruction
census behind Table IV, and the final regenerated executable.
"""

from collections import Counter

from repro.emu import run_executable
from repro.hybrid import harden_branches
from repro.ir import print_function
from repro.ir.passes import instruction_histogram
from repro.ir.passes.pass_manager import standard_cleanup
from repro.lift import Lifter
from repro.lower.pipeline import lower_module
from repro.workloads import pincheck


def main():
    wl = pincheck.workload()
    exe = wl.build()

    print("== lifting (Rev.ng-style full translation) ==")
    ir = Lifter(exe).lift()
    fn = ir.function("entry")
    raw_count = fn.instruction_count()
    standard_cleanup().run(ir)
    print(f"lifted {raw_count} raw IR instructions, "
          f"{fn.instruction_count()} after mem2reg/constfold/DCE "
          f"across {len(fn.blocks)} blocks")

    before = instruction_histogram(fn)

    print("\n== lifted IR (excerpt) ==")
    for line in print_function(fn).splitlines()[:20]:
        print(f"  {line}")
    print("  ...")

    print("\n== conditional branch hardening (Algorithm 1 / Fig. 5) ==")
    stats = harden_branches(ir)
    after = instruction_histogram(fn)
    print(f"branches hardened: {stats.branches_hardened}")
    delta = Counter({k: after[k] - before.get(k, 0) for k in after
                     if after[k] - before.get(k, 0)})
    per_branch = {k: v / max(stats.branches_hardened, 1)
                  for k, v in sorted(delta.items())}
    print("added IR instructions per protected branch (Table IV):")
    for opcode, count in per_branch.items():
        print(f"  {opcode:<12} {count:.1f}")

    print("\n== hardened CFG around one branch (Fig. 5) ==")
    hardened_blocks = [b.name for b in fn.blocks
                       if b.name.startswith(("chk1_", "chk2_",
                                             "flt_resp_"))]
    print(f"validation/fault-response blocks: "
          f"{len(hardened_blocks)} "
          f"(e.g. {', '.join(hardened_blocks[:4])}, ...)")

    print("\n== lowering back to an executable ==")
    hardened = lower_module(ir, exe, trap_after_jmp=True)
    print(f"text size {exe.code_size()}B -> {hardened.code_size()}B")
    good = run_executable(hardened, stdin=wl.good_input)
    bad = run_executable(hardened, stdin=wl.bad_input)
    print(f"correct pin -> {good.stdout.decode().strip()!r}")
    print(f"wrong pin   -> {bad.stdout.decode().strip()!r}")


if __name__ == "__main__":
    main()
