#!/usr/bin/env python3
"""Quickstart: find fault-injection vulnerabilities and patch them.

Builds the paper's pincheck case study, shows that a wrong pin is
rejected, demonstrates a successful instruction-skip fault, then runs
the Faulter+Patcher loop (Fig. 2) and shows the hardened binary
resisting the same campaign.
"""

from repro.api import Target
from repro.emu import Machine, run_executable
from repro.workloads import pincheck


def main():
    wl = pincheck.workload(pin="1234")
    exe = wl.build()
    target = wl.target(exe=exe)   # Target: exe + inputs + oracle

    print("=== baseline behaviour " + "=" * 40)
    good = run_executable(exe, stdin=wl.good_input)
    bad = run_executable(exe, stdin=wl.bad_input)
    print(f"correct pin  -> {good.stdout.decode().strip()!r}")
    print(f"wrong pin    -> {bad.stdout.decode().strip()!r}")

    print("\n=== fault campaign on the unprotected binary " + "=" * 18)
    reports = target.campaign(models=("skip",))
    print(reports["skip"].summary())

    # demonstrate one successful fault concretely
    fault = reports["skip"].successes[0]
    machine = Machine(exe, stdin=wl.bad_input)
    result = machine.run(fault_step=fault.trace_index,
                         fault_intercept=lambda insn, cpu: None)
    print(f"\nskipping '{fault.mnemonic}' at {fault.address:#x} "
          f"(step {fault.trace_index}) with the WRONG pin prints: "
          f"{result.stdout.decode().strip()!r}")

    print("\n=== Faulter+Patcher hardening (Fig. 2) " + "=" * 24)
    hardened = target.harden(approach="faulter+patcher",
                             fault_models=("skip",))
    print(hardened.report())

    print("\n=== hardened binary behaviour " + "=" * 33)
    good = run_executable(hardened.hardened, stdin=wl.good_input)
    bad = run_executable(hardened.hardened, stdin=wl.bad_input)
    print(f"correct pin  -> {good.stdout.decode().strip()!r}")
    print(f"wrong pin    -> {bad.stdout.decode().strip()!r}")

    retest = Target(hardened.hardened, wl.good_input, wl.bad_input,
                    wl.grant_marker, name="hardened")
    reports = retest.campaign(models=("skip",))
    print(f"successful skip faults after hardening: "
          f"{reports['skip'].outcomes.get('success', 0)}")


if __name__ == "__main__":
    main()
