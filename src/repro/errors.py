"""Exception hierarchy shared across the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class EncodingError(ReproError):
    """An instruction cannot be encoded (unsupported form or operands)."""


class DecodingError(ReproError):
    """Bytes do not decode to a supported instruction.

    The emulator maps this onto an *invalid opcode* fault, which the
    faulter classifies as a crash outcome.
    """


class AsmError(ReproError):
    """Assembly-source level error (syntax, unknown mnemonic, bad operand)."""


class LinkError(ReproError):
    """Symbol resolution or layout error while producing an executable."""


class ElfError(ReproError):
    """Malformed or unsupported ELF image."""


class UnsupportedBinaryError(ElfError):
    """A well-formed ELF we deliberately do not handle.

    Raised for ``e_type`` other than ``ET_EXEC``/``ET_DYN`` and for
    machines other than x86-64, instead of silently misparsing.
    """

    def __init__(self, message, *, e_type=None, e_machine=None):
        super().__init__(message)
        self.e_type = e_type
        self.e_machine = e_machine


class EmulationError(ReproError):
    """Base class for guest runtime faults."""


class MemoryFault(EmulationError):
    """Out-of-bounds or permission-violating guest memory access."""

    def __init__(self, address, size, kind):
        super().__init__(
            f"memory fault: {kind} of {size} byte(s) at {address:#x}"
        )
        self.address = address
        self.size = size
        self.kind = kind


class InvalidOpcode(EmulationError):
    """The CPU fetched bytes that do not form a supported instruction."""


class GuestCrash(EmulationError):
    """Catch-all for guest termination that is neither exit nor success."""


class LiftError(ReproError):
    """The binary lifter cannot translate an instruction or CFG shape."""


class LowerError(ReproError):
    """The backend cannot lower an IR construct."""


class IRError(ReproError):
    """SSA IR construction or verification failure."""


class RewriteError(ReproError):
    """GTIRB-level rewriting failure (bad patch point, symbolization)."""
