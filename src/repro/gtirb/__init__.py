"""GTIRB-like intermediate representation for binary rewriting.

Models the parts of GrammaTech's GTIRB that the paper's patcher relies
on: modules with sections, code/data blocks, symbols whose referents are
blocks, and per-operand *symbolic expressions* that keep references
valid when rewriting shifts the layout.  A CFG over code blocks supports
the analyses and the Fig. 4/5 benches.
"""

from repro.gtirb.ir import (
    CodeBlock,
    DataBlock,
    InsnEntry,
    Module,
    GSection,
    SymExpr,
    Symbol,
)
from repro.gtirb.cfg import CFG, Edge, build_cfg

__all__ = [
    "CodeBlock",
    "DataBlock",
    "InsnEntry",
    "Module",
    "GSection",
    "SymExpr",
    "Symbol",
    "CFG",
    "Edge",
    "build_cfg",
]
