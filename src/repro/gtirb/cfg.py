"""Control-flow graph over GTIRB code blocks.

Edge kinds follow GTIRB: ``fallthrough``, ``branch`` (direct jump,
conditional or not), ``call``, ``return``, ``indirect``.  The CFG drives
the flag-liveness analysis used by the patcher and the Fig. 4/5 CFG
benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gtirb.ir import CodeBlock, Module
from repro.isa.insn import Mnemonic
from repro.isa.operands import Imm


@dataclass(frozen=True)
class Edge:
    src: CodeBlock
    dst: Optional[CodeBlock]  # None for unresolved (indirect) targets
    kind: str                 # fallthrough | branch | call | return | indirect

    def __repr__(self):
        def name(block):
            if block is None:
                return "?"
            return f"{block.address:#x}" if block.address is not None \
                else f"blk{block.uid}"
        return f"Edge({name(self.src)} -{self.kind}-> {name(self.dst)})"


class CFG:
    """Adjacency over code blocks."""

    def __init__(self):
        self.edges: list[Edge] = []
        self._succ: dict[int, list[Edge]] = {}
        self._pred: dict[int, list[Edge]] = {}

    def add(self, edge: Edge):
        self.edges.append(edge)
        self._succ.setdefault(edge.src.uid, []).append(edge)
        if edge.dst is not None:
            self._pred.setdefault(edge.dst.uid, []).append(edge)

    def successors(self, block: CodeBlock) -> list[Edge]:
        return self._succ.get(block.uid, [])

    def predecessors(self, block: CodeBlock) -> list[Edge]:
        return self._pred.get(block.uid, [])

    def has_unknown_successor(self, block: CodeBlock) -> bool:
        return any(e.dst is None for e in self.successors(block))

    def to_dot(self, module: Module) -> str:
        """Graphviz rendering (used by the Fig. 4/5 benches)."""
        lines = ["digraph cfg {", "  node [shape=box fontname=monospace];"]

        def label(block):
            syms = module.symbols_for(block)
            title = syms[0].name if syms else (
                f"{block.address:#x}" if block.address is not None
                else f"blk{block.uid}")
            body = "\\l".join(str(e.insn) for e in block.entries)
            return f"{title}\\l----\\l{body}\\l"

        blocks = {b.uid: b for b in module.code_blocks()}
        for uid, block in blocks.items():
            lines.append(f'  b{uid} [label="{label(block)}"];')
        for edge in self.edges:
            if edge.dst is None:
                continue
            style = {"fallthrough": "dashed", "call": "dotted"}.get(
                edge.kind, "solid")
            lines.append(
                f"  b{edge.src.uid} -> b{edge.dst.uid} "
                f'[style={style} label="{edge.kind}"];')
        lines.append("}")
        return "\n".join(lines)


def build_cfg(module: Module) -> CFG:
    """Construct the CFG from block order + symbolic branch targets."""
    cfg = CFG()
    for section in module.sections:
        if "x" not in section.flags:
            continue
        blocks = section.code_blocks()
        order = {b.uid: i for i, b in enumerate(blocks)}
        for block in blocks:
            terminator = block.terminator()
            next_block = (blocks[order[block.uid] + 1]
                          if order[block.uid] + 1 < len(blocks) else None)
            if terminator is None:
                if next_block is not None:
                    cfg.add(Edge(block, next_block, "fallthrough"))
                continue
            insn = terminator.insn
            target = _direct_target(terminator)
            if insn.mnemonic is Mnemonic.JMP:
                if target is not None:
                    cfg.add(Edge(block, target, "branch"))
                else:
                    cfg.add(Edge(block, None, "indirect"))
            elif insn.mnemonic is Mnemonic.JCC:
                if target is not None:
                    cfg.add(Edge(block, target, "branch"))
                else:
                    cfg.add(Edge(block, None, "indirect"))
                if next_block is not None:
                    cfg.add(Edge(block, next_block, "fallthrough"))
            elif insn.mnemonic is Mnemonic.CALL:
                cfg.add(Edge(block, target, "call"))
                if next_block is not None:
                    cfg.add(Edge(block, next_block, "fallthrough"))
            elif insn.mnemonic is Mnemonic.RET:
                cfg.add(Edge(block, None, "return"))
            # hlt/ud2/int3: no successors
    return cfg


def _direct_target(entry) -> Optional[CodeBlock]:
    expr = entry.sym_operands.get(0)
    if expr is not None and isinstance(expr.symbol.referent, CodeBlock):
        return expr.symbol.referent
    if entry.insn.operands and isinstance(entry.insn.operands[0], Imm):
        return None  # direct but unsymbolized (shouldn't happen post-recovery)
    return None
