"""Core GTIRB-like IR classes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.errors import RewriteError
from repro.isa.insn import Instruction

_uid_counter = itertools.count()


@dataclass(eq=False)
class Symbol:
    """A named reference to a block (or a bare address before linking).

    Identity-based equality: two symbols with the same name are still
    distinct objects unless they are literally the same symbol.
    """

    name: str
    referent: Optional[Union["CodeBlock", "DataBlock"]] = None
    is_global: bool = False

    def __repr__(self):
        return f"Symbol({self.name})"


@dataclass(frozen=True)
class SymExpr:
    """Symbolic expression attached to one instruction operand.

    ``kind`` says which syntactic position it replaces when printing:

    * ``"branch"`` — the target of a direct jmp/jcc/call,
    * ``"mem"``    — the displacement of a memory operand (RIP-relative
      or absolute),
    * ``"imm"``    — an absolute address materialized as an immediate.
    """

    kind: str
    symbol: Symbol
    addend: int = 0

    def __str__(self):
        if self.addend:
            sign = "+" if self.addend >= 0 else "-"
            return f"{self.symbol.name}{sign}{abs(self.addend)}"
        return self.symbol.name


@dataclass(eq=False)
class InsnEntry:
    """One instruction plus the symbolic expressions on its operands.

    ``sym_operands`` maps operand index -> :class:`SymExpr`.  The
    concrete displacement/immediate values inside ``insn`` are the
    original decoded ones; printing prefers the symbolic form so the
    reference survives layout changes.

    ``protected`` marks entries emitted by a protection pattern; the
    Faulter+Patcher loop refuses to patch them again and reports any
    remaining successful faults there as residual vulnerabilities.
    ``origin`` links pattern-emitted entries back to the original
    vulnerable entry they protect, so campaigns can attribute residual
    faults to original program sites (the paper's "vulnerable points").
    """

    insn: Instruction
    sym_operands: dict[int, SymExpr] = field(default_factory=dict)
    protected: bool = False
    origin: object = field(default=None, repr=False)

    @property
    def address(self) -> Optional[int]:
        return self.insn.address

    def copy(self) -> "InsnEntry":
        return InsnEntry(self.insn, dict(self.sym_operands),
                         protected=self.protected, origin=self.origin)

    def root_site(self) -> "InsnEntry":
        """The original entry this one protects (itself if original)."""
        return self.origin if self.origin is not None else self

    def __str__(self):
        return str(self.insn)


@dataclass(eq=False)
class CodeBlock:
    """A straight-line run of instructions (basic block granularity)."""

    address: Optional[int] = None
    entries: list[InsnEntry] = field(default_factory=list)
    uid: int = field(default_factory=lambda: next(_uid_counter))

    @property
    def is_code(self) -> bool:
        return True

    def instructions(self) -> list[Instruction]:
        return [entry.insn for entry in self.entries]

    def terminator(self) -> Optional[InsnEntry]:
        if self.entries and self.entries[-1].insn.is_control_flow:
            return self.entries[-1]
        return None

    def find(self, address: int) -> Optional[int]:
        """Index of the entry whose original address is ``address``."""
        for index, entry in enumerate(self.entries):
            if entry.address == address:
                return index
        return None

    def byte_size(self) -> int:
        from repro.isa.encoder import encoded_length
        return sum(encoded_length(e.insn) for e in self.entries)

    def __repr__(self):
        where = f"{self.address:#x}" if self.address is not None else "new"
        return f"CodeBlock({where}, {len(self.entries)} insns)"


@dataclass(eq=False)
class DataBlock:
    """A run of data bytes, possibly containing symbolic words.

    ``items`` are ``bytes`` chunks or ``(SymExpr, size)`` pairs;
    ``zero_fill`` marks NOBITS (.bss) blocks whose extent is
    ``zero_size``.
    """

    address: Optional[int] = None
    items: list = field(default_factory=list)
    zero_fill: bool = False
    zero_size: int = 0
    uid: int = field(default_factory=lambda: next(_uid_counter))

    @property
    def is_code(self) -> bool:
        return False

    def byte_size(self) -> int:
        if self.zero_fill:
            return self.zero_size
        total = 0
        for item in self.items:
            total += len(item) if isinstance(item, bytes) else item[1]
        return total

    def __repr__(self):
        where = f"{self.address:#x}" if self.address is not None else "new"
        return f"DataBlock({where}, {self.byte_size()} bytes)"


@dataclass
class GSection:
    """An ordered sequence of blocks belonging to one output section."""

    name: str
    blocks: list = field(default_factory=list)
    flags: str = "r"

    def code_blocks(self) -> list[CodeBlock]:
        return [b for b in self.blocks if b.is_code]


@dataclass
class Module:
    """A rewritable program: sections, symbols, entry."""

    name: str = "module"
    sections: list[GSection] = field(default_factory=list)
    symbols: list[Symbol] = field(default_factory=list)
    entry: Optional[Symbol] = None
    aux: dict = field(default_factory=dict)

    # -- lookup ------------------------------------------------------------

    def section(self, name: str) -> GSection:
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(f"no section {name!r}")

    def text(self) -> GSection:
        return self.section(".text")

    def symbol(self, name: str) -> Symbol:
        for symbol in self.symbols:
            if symbol.name == name:
                return symbol
        raise KeyError(f"no symbol {name!r}")

    def has_symbol(self, name: str) -> bool:
        return any(s.name == name for s in self.symbols)

    def symbols_for(self, block) -> list[Symbol]:
        return [s for s in self.symbols if s.referent is block]

    def add_symbol(self, name: str, referent, is_global=False) -> Symbol:
        if self.has_symbol(name):
            raise RewriteError(f"symbol {name!r} already exists")
        symbol = Symbol(name, referent, is_global)
        self.symbols.append(symbol)
        return symbol

    def fresh_symbol(self, prefix: str, referent) -> Symbol:
        index = 0
        while self.has_symbol(f"{prefix}_{index}"):
            index += 1
        return self.add_symbol(f"{prefix}_{index}", referent)

    # -- traversal -----------------------------------------------------------

    def all_blocks(self) -> Iterable:
        for section in self.sections:
            yield from section.blocks

    def code_blocks(self) -> list[CodeBlock]:
        blocks = []
        for section in self.sections:
            if "x" in section.flags:
                blocks.extend(section.code_blocks())
        return blocks

    def find_instruction(self, address: int):
        """Locate an original instruction address.

        Returns ``(section, block, entry_index)`` or raises
        :class:`~repro.errors.RewriteError`.
        """
        for section in self.sections:
            for block in section.blocks:
                if not block.is_code:
                    continue
                index = block.find(address)
                if index is not None:
                    return section, block, index
        raise RewriteError(f"no instruction at address {address:#x}")

    def block_at(self, address: int):
        """The block whose *original* address is ``address``, if any."""
        for block in self.all_blocks():
            if block.address == address:
                return block
        return None

    # -- statistics -----------------------------------------------------------

    def text_size(self) -> int:
        """Code bytes in executable sections (paper's overhead metric)."""
        return sum(
            block.byte_size()
            for section in self.sections if "x" in section.flags
            for block in section.blocks)

    def instruction_count(self) -> int:
        return sum(len(b.entries) for b in self.code_blocks())
