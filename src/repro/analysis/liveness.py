"""Backward register liveness over the CFG.

Registers are tracked at 64-bit GPR granularity (sub-register
reads/writes touch the parent).  Unknown control flow (indirect jumps,
returns) conservatively treats every register as live; call edges use
the SysV convention for caller-saved scratch registers only when the
callee is unknown.
"""

from __future__ import annotations

from repro.gtirb.cfg import CFG, build_cfg
from repro.gtirb.ir import CodeBlock, Module
from repro.isa.metadata import effects
from repro.isa.registers import all_gpr64

ALL_REGS = frozenset(all_gpr64())


class RegisterLiveness:
    """Per-block register liveness query object."""

    def __init__(self, module: Module):
        self.module = module
        self.cfg: CFG = build_cfg(module)
        self._live_in: dict[int, frozenset] = {}
        self._effects_cache: dict[int, list] = {}
        self._compute()

    def live_in(self, block: CodeBlock) -> frozenset:
        return self._live_in.get(block.uid, ALL_REGS)

    def live_out(self, block: CodeBlock) -> frozenset:
        edges = self.cfg.successors(block)
        if not edges:
            return frozenset()
        out = set()
        for edge in edges:
            if edge.dst is None:
                return ALL_REGS
            out |= self.live_in(edge.dst)
        return frozenset(out)

    def live_after(self, block: CodeBlock, index: int) -> frozenset:
        """Registers live immediately after ``block.entries[index]``."""
        live = set(self.live_out(block))
        for entry in reversed(block.entries[index + 1:]):
            eff = effects(entry.insn)
            live -= eff.writes
            live |= eff.reads
        return frozenset(live)

    def dead_after(self, block: CodeBlock, index: int) -> frozenset:
        """Registers provably dead after the entry (safe scratch picks)."""
        return ALL_REGS - self.live_after(block, index)

    # ------------------------------------------------------------------

    def _block_effects(self, block: CodeBlock) -> list:
        cached = self._effects_cache.get(block.uid)
        if cached is None:
            cached = [effects(e.insn) for e in block.entries]
            self._effects_cache[block.uid] = cached
        return cached

    def _transfer(self, block: CodeBlock, live_out: frozenset) -> frozenset:
        live = set(live_out)
        for eff in reversed(self._block_effects(block)):
            live -= eff.writes
            live |= eff.reads
        return frozenset(live)

    def _compute(self):
        blocks = self.module.code_blocks()
        for block in blocks:
            self._live_in[block.uid] = frozenset()
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                new_value = self._transfer(block, self.live_out(block))
                if new_value != self._live_in[block.uid]:
                    self._live_in[block.uid] = new_value
                    changed = True
