"""Register value analysis (Ddisasm-style constant propagation).

Forward dataflow tracking registers with statically known constant
values (from ``mov reg, imm``, ``xor reg, reg``, ``lea`` over known
bases, and simple arithmetic on known values).  The disassembler's
refined symbolization and the tests use it to reason about which
immediates actually flow into address computations.
"""

from __future__ import annotations

from typing import Optional

from repro.gtirb.cfg import build_cfg
from repro.gtirb.ir import CodeBlock, Module
from repro.isa.insn import Mnemonic
from repro.isa.metadata import effects
from repro.isa.operands import Imm, Reg
from repro.isa.registers import parent_gpr

_MASK64 = (1 << 64) - 1

# lattice: dict reg -> int for known; missing = unknown (top handled by
# intersection at joins)


class RegisterValueAnalysis:
    """Per-block-entry known-register-value maps."""

    def __init__(self, module: Module):
        self.module = module
        self.cfg = build_cfg(module)
        self._in: dict[int, Optional[dict]] = {}
        self._compute()

    def values_in(self, block: CodeBlock) -> dict:
        state = self._in.get(block.uid)
        return dict(state) if state else {}

    def value_before(self, block: CodeBlock, index: int,
                     register) -> Optional[int]:
        """Known value of ``register`` before ``block.entries[index]``."""
        state = self.values_in(block)
        for entry in block.entries[:index]:
            state = _transfer_one(entry.insn, state)
        return state.get(parent_gpr(register))

    # ------------------------------------------------------------------

    def _compute(self):
        blocks = self.module.code_blocks()
        if not blocks:
            return
        entry_block = (self.module.entry.referent
                       if self.module.entry is not None and
                       isinstance(self.module.entry.referent, CodeBlock)
                       else blocks[0])
        self._in = {b.uid: None for b in blocks}  # None = unreached
        self._in[entry_block.uid] = {}
        worklist = [entry_block]
        out_cache: dict[int, dict] = {}
        while worklist:
            block = worklist.pop()
            state = self._in[block.uid]
            if state is None:
                continue
            out = dict(state)
            for entry in block.entries:
                out = _transfer_one(entry.insn, out)
            out_cache[block.uid] = out
            for edge in self.cfg.successors(block):
                if edge.dst is None:
                    continue
                incoming = out if edge.kind != "call" else {}
                merged = _join(self._in.get(edge.dst.uid), incoming)
                if merged != self._in.get(edge.dst.uid):
                    self._in[edge.dst.uid] = merged
                    worklist.append(edge.dst)


def _join(old: Optional[dict], new: dict) -> dict:
    if old is None:
        return dict(new)
    return {reg: value for reg, value in old.items()
            if new.get(reg) == value}


def _transfer_one(insn, state: dict) -> dict:
    state = dict(state)
    m = insn.mnemonic
    ops = insn.operands
    if m is Mnemonic.MOV and len(ops) == 2 and isinstance(ops[0], Reg):
        dst = parent_gpr(ops[0].register)
        value = _operand_value(ops[1], state, ops[0].size)
        if value is not None:
            state[dst] = value
            return state
    if m is Mnemonic.XOR and len(ops) == 2 and \
            isinstance(ops[0], Reg) and ops[0] == ops[1]:
        state[parent_gpr(ops[0].register)] = 0
        return state
    if m in (Mnemonic.ADD, Mnemonic.SUB) and isinstance(ops[0], Reg):
        dst = parent_gpr(ops[0].register)
        current = state.get(dst)
        delta = _operand_value(ops[1], state, ops[0].size)
        if current is not None and delta is not None:
            if m is Mnemonic.SUB:
                delta = -delta
            state[dst] = (current + delta) & _MASK64
            return state
    # anything else: kill written registers
    for written in effects(insn).writes:
        state.pop(written, None)
    return state


def _operand_value(operand, state: dict, width: int) -> Optional[int]:
    if isinstance(operand, Imm):
        return operand.value & ((1 << (width * 8)) - 1) if width < 8 \
            else operand.value & _MASK64
    if isinstance(operand, Reg):
        return state.get(parent_gpr(operand.register))
    return None
