"""Backward liveness of the arithmetic flags over the CFG.

Conservative on unknown control flow: an indirect jump or a missing
successor makes flags live.  Calls and returns follow the SysV ABI
(flags are not preserved across them), so flags are dead at those
edges — matching how Ddisasm-based rewriters reason about binaries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.gtirb.cfg import CFG, build_cfg
from repro.gtirb.ir import CodeBlock, Module

#: The six arithmetic flags of the emulated subset.
ALL_FLAGS = frozenset({"cf", "pf", "af", "zf", "sf", "of"})


class FlagLiveness:
    """Flags-liveness query object for one module snapshot.

    Invalidate (drop and rebuild) after mutating the module.
    """

    def __init__(self, module: Module):
        self.module = module
        self.cfg: CFG = build_cfg(module)
        self._live_in: dict[int, bool] = {}
        self._compute()

    # -- public queries -----------------------------------------------------

    def live_in(self, block: CodeBlock) -> bool:
        return self._live_in.get(block.uid, True)

    def live_out(self, block: CodeBlock) -> bool:
        out = False
        edges = self.cfg.successors(block)
        if not edges:
            return False  # program end (hlt / exit path)
        for edge in edges:
            if edge.kind in ("call", "return"):
                continue  # ABI: flags dead across calls/returns
            if edge.dst is None:
                return True  # unknown target: stay conservative
            out = out or self.live_in(edge.dst)
        return out

    def live_after(self, block: CodeBlock, index: int) -> bool:
        """Are flags live immediately after ``block.entries[index]``?"""
        live = self.live_out(block)
        for entry in reversed(block.entries[index + 1:]):
            insn = entry.insn
            if insn.reads_flags:
                live = True
            elif insn.writes_flags:
                live = False
        return live

    # -- fixpoint ------------------------------------------------------------

    def _transfer(self, block: CodeBlock, live_out: bool) -> bool:
        live = live_out
        for entry in reversed(block.entries):
            insn = entry.insn
            if insn.reads_flags:
                live = True
            elif insn.writes_flags:
                live = False
        return live

    def _compute(self):
        blocks = self.module.code_blocks()
        for block in blocks:
            self._live_in[block.uid] = False
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                new_value = self._transfer(block, self.live_out(block))
                if new_value != self._live_in[block.uid]:
                    self._live_in[block.uid] = new_value
                    changed = True


def flag_materialization(
    writers: Sequence[tuple[Iterable[str], Iterable[str]]],
    live_out: Iterable[str] = ALL_FLAGS,
) -> list[int]:
    """Select the minimal tail of flag writers that must be replayed.

    ``writers`` is a straight-line sequence, in program order, of
    ``(may_define, definite_define)`` flag-name sets — one entry per
    flag-writing instruction.  A writer whose *may* set no longer
    intersects the flags still needed at block exit is redundant: every
    flag it could produce is definitely overwritten by a later kept
    writer.  This is the per-flag refinement of the boolean liveness
    above, used by the JIT to batch flag materialization (only the live
    tail of exact ``Flags`` updates is replayed at superblock exit).

    Returns the indices of the writers to keep, in program order.
    """
    needed = set(live_out)
    keep: list[int] = []
    for index in range(len(writers) - 1, -1, -1):
        if not needed:
            break
        may, definite = writers[index]
        if needed & set(may):
            keep.append(index)
            needed -= set(definite)
    keep.reverse()
    return keep
