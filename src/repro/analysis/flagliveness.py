"""Backward liveness of the arithmetic flags over the CFG.

Conservative on unknown control flow: an indirect jump or a missing
successor makes flags live.  Calls and returns follow the SysV ABI
(flags are not preserved across them), so flags are dead at those
edges — matching how Ddisasm-based rewriters reason about binaries.
"""

from __future__ import annotations

from repro.gtirb.cfg import CFG, build_cfg
from repro.gtirb.ir import CodeBlock, Module


class FlagLiveness:
    """Flags-liveness query object for one module snapshot.

    Invalidate (drop and rebuild) after mutating the module.
    """

    def __init__(self, module: Module):
        self.module = module
        self.cfg: CFG = build_cfg(module)
        self._live_in: dict[int, bool] = {}
        self._compute()

    # -- public queries -----------------------------------------------------

    def live_in(self, block: CodeBlock) -> bool:
        return self._live_in.get(block.uid, True)

    def live_out(self, block: CodeBlock) -> bool:
        out = False
        edges = self.cfg.successors(block)
        if not edges:
            return False  # program end (hlt / exit path)
        for edge in edges:
            if edge.kind in ("call", "return"):
                continue  # ABI: flags dead across calls/returns
            if edge.dst is None:
                return True  # unknown target: stay conservative
            out = out or self.live_in(edge.dst)
        return out

    def live_after(self, block: CodeBlock, index: int) -> bool:
        """Are flags live immediately after ``block.entries[index]``?"""
        live = self.live_out(block)
        for entry in reversed(block.entries[index + 1:]):
            insn = entry.insn
            if insn.reads_flags:
                live = True
            elif insn.writes_flags:
                live = False
        return live

    # -- fixpoint ------------------------------------------------------------

    def _transfer(self, block: CodeBlock, live_out: bool) -> bool:
        live = live_out
        for entry in reversed(block.entries):
            insn = entry.insn
            if insn.reads_flags:
                live = True
            elif insn.writes_flags:
                live = False
        return live

    def _compute(self):
        blocks = self.module.code_blocks()
        for block in blocks:
            self._live_in[block.uid] = False
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                new_value = self._transfer(block, self.live_out(block))
                if new_value != self._live_in[block.uid]:
                    self._live_in[block.uid] = new_value
                    changed = True
