"""Dynamic-trace fault-equivalence facts (the reduction layer's core).

The campaign reduction layer (:mod:`repro.faulter.reduction`) must
prove, per fault point, that injecting the fault cannot change what a
detection oracle observes.  This module supplies those proofs as pure
functions of the recorded bad-input trace, the same trace both
backends already re-derive deterministically — so every process that
enumerates a reduced space recomputes identical facts.

It is the dynamic-trace counterpart of the static analyses it borrows
its vocabulary from: the forward dead-bit scan is
:class:`repro.analysis.liveness.RegisterLiveness` specialized to one
straight-line path (the trace), and the def/use extraction reuses the
same per-instruction :func:`repro.isa.metadata.effects` facts that
:class:`repro.analysis.defuse.DefUse` chains are built from.  Flag
vocabulary (:data:`~repro.analysis.flagliveness.ALL_FLAGS`, the
may/definite write split) comes from
:mod:`repro.analysis.flagliveness`.

Soundness conventions, shared with the fault models' hooks:

* A *dead* verdict means the faulted run's :class:`RunResult` is
  bit-identical to the unfaulted continuation — same termination, same
  cumulative stdout, same end memory — so *any* oracle classifies it
  as it classifies the bad baseline.
* Each dead verdict carries a ``settled`` trace step: the last step
  whose execution provably erases the fault's state difference
  (``math.inf`` when the difference merely stays unobserved until the
  run ends).  Multi-fault elision strips a leading dead fault only
  when it settles before the next fault's divergence point.
* A *crash* verdict means the faulted step itself raises (an
  undecodable mutated encoding), ending the run with the unfaulted
  stdout prefix; callers gate it on oracles that map crashes to
  deterministic classes.
* Like variant enumeration itself, all proofs decode trace
  instructions from the initial image — self-modifying code is outside
  the subset the workloads exercise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.analysis.flagliveness import ALL_FLAGS
from repro.errors import DecodingError
from repro.isa.decoder import decode
from repro.isa.insn import CONTROL_FLOW, Instruction, Mnemonic
from repro.isa.metadata import effects
from repro.isa.operands import Mem, Reg
from repro.isa.registers import RIP, parent_gpr, reg

MASK64 = (1 << 64) - 1
LOW8 = 0xFF

_RCX = reg("rcx").code
_R11 = reg("r11").code

# Destination registers written without reading their old value; a
# >= 4 byte register destination zero-extends, clobbering all 64 bits.
_WRITE_ONLY_DEST = frozenset(
    (
        Mnemonic.MOV,
        Mnemonic.MOVZX,
        Mnemonic.LEA,
        Mnemonic.POP,
        Mnemonic.SETCC,
    )
)

# dst-op == src-op forms whose result is 0 regardless of the old value.
_SAME_REG_ZEROERS = frozenset((Mnemonic.XOR, Mnemonic.SUB))

# Flag effects per mnemonic (mirrors emu/flagops and the jit lifter):
# writers that recompute all six flags from their operands, the
# inc/dec pair that preserves CF, and the shifts whose writes are
# conditional on the (dynamic) count — a may-write, never a kill.
_FLAG_KILL_ALL = frozenset(
    (
        Mnemonic.ADD,
        Mnemonic.SUB,
        Mnemonic.CMP,
        Mnemonic.NEG,
        Mnemonic.IMUL,
        Mnemonic.AND,
        Mnemonic.OR,
        Mnemonic.XOR,
        Mnemonic.TEST,
        Mnemonic.POPFQ,
    )
)
_INC_DEC = frozenset((Mnemonic.INC, Mnemonic.DEC))
_INC_DEC_FLAGS = frozenset({"pf", "af", "zf", "sf", "of"})
_SHIFTS = frozenset((Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR))
_SHIFT_FLAGS = frozenset({"cf", "pf", "zf", "sf", "of"})

# Flags consumed per condition-code base (see repro.isa.cond.evaluate).
_COND_FLAGS = {
    0x0: frozenset({"of"}),
    0x2: frozenset({"cf"}),
    0x4: frozenset({"zf"}),
    0x6: frozenset({"cf", "zf"}),
    0x8: frozenset({"sf"}),
    0xA: frozenset({"pf"}),
    0xC: frozenset({"sf", "of"}),
    0xE: frozenset({"zf", "sf", "of"}),
}
_COND_CONSUMERS = frozenset(
    (Mnemonic.JCC, Mnemonic.SETCC, Mnemonic.CMOVCC)
)


def consumed_flags(insn: Instruction) -> frozenset:
    """The status flags ``insn`` actually reads."""
    if insn.mnemonic in _COND_CONSUMERS and insn.cond is not None:
        return _COND_FLAGS[insn.cond.value & 0xE]
    if insn.mnemonic is Mnemonic.PUSHFQ:
        return ALL_FLAGS
    return frozenset()


def _flag_sets(mnemonic: Mnemonic) -> tuple[frozenset, frozenset]:
    """``(definitely killed, may-touched)`` flags of one writer."""
    if mnemonic in _FLAG_KILL_ALL:
        return ALL_FLAGS, ALL_FLAGS
    if mnemonic in _INC_DEC:
        return _INC_DEC_FLAGS, _INC_DEC_FLAGS
    if mnemonic in _SHIFTS:
        return frozenset(), _SHIFT_FLAGS
    return frozenset(), frozenset()


@dataclass(frozen=True)
class StepFacts:
    """Register/flag def-use facts of one traced instruction."""

    insn: Instruction
    eff: object
    reads: dict  # gpr code -> bit mask read (at view width)
    kills: frozenset  # codes clobbered independent of their old value
    spans: dict  # code -> low-bit mask independently overwritten
    write_spans: dict  # code -> bit mask a skip/replace can perturb
    consumed: frozenset  # flags read
    killed: frozenset  # flags definitely recomputed
    touched: frozenset  # flags possibly written


def derive_step_facts(insn: Instruction) -> StepFacts:
    """Compute :class:`StepFacts` for one decoded instruction."""
    eff = effects(insn)
    m = insn.mnemonic
    ops = insn.operands

    kills: set[int] = set()
    spans: dict[int, int] = {}
    value_independent: set[int] = set()
    if m in _WRITE_ONLY_DEST and ops and isinstance(ops[0], Reg):
        code = ops[0].register.code
        if ops[0].size >= 4:
            kills.add(code)
        else:
            spans[code] = LOW8
    if (
        m in _SAME_REG_ZEROERS
        and len(ops) == 2
        and isinstance(ops[0], Reg)
        and isinstance(ops[1], Reg)
        and ops[0].register == ops[1].register
    ):
        code = ops[0].register.code
        if ops[0].size >= 4:
            kills.add(code)
        else:
            spans[code] = LOW8
        # the "read" of a zeroing idiom is value-independent
        value_independent.add(code)
    if m is Mnemonic.SYSCALL:
        kills.update((_RCX, _R11))
    # a killed register's syntactic "read" (the zeroing idiom) does
    # not observe its old value
    value_independent.update(kills)

    reads: dict[int, int] = {}

    def add_read(code: int, mask: int) -> None:
        if code in value_independent:
            return
        reads[code] = reads.get(code, 0) | mask

    seen: set[int] = set()
    for position, operand in enumerate(ops):
        if isinstance(operand, Reg):
            code = operand.register.code
            seen.add(code)
            if position == 0 and m in _WRITE_ONLY_DEST:
                continue
            if parent_gpr(operand.register) in eff.reads:
                add_read(code, (1 << (operand.size * 8)) - 1)
        elif isinstance(operand, Mem):
            if operand.base is not None and operand.base is not RIP:
                seen.add(operand.base.code)
                add_read(operand.base.code, MASK64)
            if operand.index is not None:
                seen.add(operand.index.code)
                add_read(operand.index.code, MASK64)
    for register in eff.reads:
        if register.code not in seen:
            add_read(register.code, MASK64)

    write_spans: dict[int, int] = {
        register.code: MASK64 for register in eff.writes
    }
    if (
        ops
        and isinstance(ops[0], Reg)
        and ops[0].size == 1
        and ops[0].register.code in write_spans
        and m is not Mnemonic.SYSCALL
    ):
        # the sole write to an 8-bit destination view touches bits 0-7
        write_spans[ops[0].register.code] = LOW8

    killed, touched = _flag_sets(m)
    return StepFacts(
        insn=insn,
        eff=eff,
        reads=reads,
        kills=frozenset(kills),
        spans=spans,
        write_spans=write_spans,
        consumed=consumed_flags(insn),
        killed=killed,
        touched=touched,
    )


@dataclass(frozen=True)
class VariantPrune:
    """A per-variant proof: the fault is dead or a guaranteed crash.

    ``settled`` is the trace step whose execution erases the fault's
    state difference (``-1`` for a no-op fault, ``math.inf`` when the
    difference merely stays unobserved until the run ends).
    """

    kind: str  # "dead" | "crash"
    reason: str
    settled: float = math.inf


_MISSING = object()


class TraceFacts:
    """Lazily-computed fault-equivalence facts over one trace.

    ``insn_at(step)`` decodes the traced instruction (``None`` for the
    undecodable tail of a crashing run); ``window_at(step)`` returns
    the 15-byte fetch window an encoding fault mutates (``None`` when
    unavailable); ``flag_replay()`` lazily replays the bad-input run,
    returning the pre-step flag state per trace step.  All three are
    deterministic functions of (image, bad input), so independently
    constructed instances agree across processes.
    """

    def __init__(
        self,
        trace: Sequence[int],
        insn_at: Callable[[int], Optional[Instruction]],
        window_at: Optional[Callable[[int], Optional[bytes]]] = None,
        flag_replay: Optional[Callable[[], list]] = None,
    ):
        self.trace = list(trace)
        self._insn_at = insn_at
        self._window_at = window_at
        self._flag_replay = flag_replay
        self._steps: dict[int, Optional[StepFacts]] = {}
        self._reg_profiles: dict = {}
        self._flag_dead: dict = {}
        self._flag_regions: dict[str, list[int]] = {}
        self._flag_values: Optional[list] = None
        self.prune_cache: dict = {}
        self.class_cache: dict = {}
        self.scan_steps = 0

    def step(self, step: int) -> Optional[StepFacts]:
        cached = self._steps.get(step, _MISSING)
        if cached is not _MISSING:
            return cached
        insn = self._insn_at(step)
        facts = derive_step_facts(insn) if insn is not None else None
        self._steps[step] = facts
        return facts

    # ----- register deadness ------------------------------------------

    def _reg_profile(self, start: int, code: int):
        """``(dead mask, ((settle step, submask), ...))`` from
        ``start``.

        A bit is *dead* when, walking the trace forward from ``start``,
        it is independently overwritten (a kill or a low-byte span)
        before any instruction reads it — or is never read before the
        run ends.  Reads are width-aware; within one step the
        instruction's reads precede its writes.  The settle events
        record *when* each dead submask is overwritten; end-of-trace
        deadness has no settle event.
        """
        key = (start, code)
        cached = self._reg_profiles.get(key)
        if cached is not None:
            return cached
        pending = MASK64
        dead = 0
        events: list[tuple[int, int]] = []
        for j in range(start, len(self.trace)):
            facts = self.step(j)
            self.scan_steps += 1
            if facts is None:
                # undecodable tail: assume the bits are observed
                pending = 0
                break
            mask = facts.reads.get(code)
            if mask:
                pending &= ~mask
                if not pending:
                    break
            if code in facts.kills:
                dead |= pending
                events.append((j, pending))
                pending = 0
                break
            mask = facts.spans.get(code)
            if mask and pending & mask:
                dead |= pending & mask
                events.append((j, pending & mask))
                pending &= ~mask
                if not pending:
                    break
        dead |= pending  # never read before the run ended
        profile = (dead, tuple(events))
        self._reg_profiles[key] = profile
        return profile

    def reg_dead_mask(self, start: int, code: int) -> int:
        return self._reg_profile(start, code)[0]

    def reg_settle(self, start: int, code: int, mask: int) -> float:
        """Step settling every bit of ``mask`` (``inf`` if end-based)."""
        dead, events = self._reg_profile(start, code)
        if mask & ~dead:
            return math.inf  # not even dead
        settled = -1.0
        remaining = mask
        for step, submask in events:
            if remaining & submask:
                settled = max(settled, step)
                remaining &= ~submask
        if remaining:
            return math.inf
        return settled

    # ----- flag deadness ----------------------------------------------

    def flag_dead(self, start: int, flag: str) -> tuple[bool, float]:
        """``(dead?, settle step)`` for a flag difference at
        ``start``.

        Walking forward, a consumer kills the proof; a definite writer
        settles the difference; a may-writer (shift) either leaves the
        difference or recomputes the flag from inputs that are
        identical in both runs, so the scan continues past it.
        """
        key = (start, flag)
        cached = self._flag_dead.get(key)
        if cached is not None:
            return cached
        verdict: tuple[bool, float] = (True, math.inf)
        for j in range(start, len(self.trace)):
            facts = self.step(j)
            self.scan_steps += 1
            if facts is None:
                verdict = (False, math.inf)
                break
            if flag in facts.consumed:
                verdict = (False, math.inf)
                break
            if flag in facts.killed:
                verdict = (True, float(j))
                break
        self._flag_dead[key] = verdict
        return verdict

    def _flag_state(self, step: int) -> Optional[dict]:
        if self._flag_replay is None:
            return None
        if self._flag_values is None:
            self._flag_values = self._flag_replay()
        if 0 <= step < len(self._flag_values):
            return self._flag_values[step]
        return None

    # ----- model-facing proofs ----------------------------------------

    def skip_prune(self, step: int) -> Optional[VariantPrune]:
        """Prove skipping the instruction at ``step`` unobservable."""
        facts = self.step(step)
        if facts is None:
            return None
        insn = facts.insn
        m = insn.mnemonic
        if m is Mnemonic.JCC:
            follow = step + 1
            if (
                follow < len(self.trace)
                and self.trace[follow] == insn.end_address
            ):
                # the branch fell through anyway: skip == not-taken
                return VariantPrune("dead", "jcc-not-taken", -1)
            return None
        if m in CONTROL_FLOW or m is Mnemonic.SYSCALL:
            return None
        if facts.eff.writes_memory:
            return None
        settled = -1.0
        for code, span in facts.write_spans.items():
            if span & ~self.reg_dead_mask(step + 1, code):
                return None
            settled = max(
                settled, self.reg_settle(step + 1, code, span)
            )
        if facts.eff.writes_flags:
            for flag in facts.touched:
                dead, flag_settled = self.flag_dead(step + 1, flag)
                if not dead:
                    return None
                settled = max(settled, flag_settled)
        if not facts.write_spans and not facts.eff.writes_flags:
            return VariantPrune("dead", "no-effect", -1)
        return VariantPrune("dead", "dead-defs", settled)

    def reg_bit_prune(
        self, step: int, code: int, bit: int
    ) -> Optional[VariantPrune]:
        """Prove a pre-step flip of ``code`` bit ``bit``
        unobservable."""
        mask = 1 << bit
        if mask & ~self.reg_dead_mask(step, code):
            return None
        settled = self.reg_settle(step, code, mask)
        return VariantPrune("dead", "reg-dead", settled)

    def flag_prune(
        self, step: int, flag: str, value: int
    ) -> Optional[VariantPrune]:
        """Prove forcing ``flag`` to ``value`` at ``step``
        unobservable."""
        facts = self.step(step)
        if facts is None:
            return None
        state = self._flag_state(step)
        if state is not None and flag in state:
            if bool(state[flag]) == bool(value):
                # the flag already holds the forced value
                return VariantPrune("dead", "flag-already-set", -1)
        if flag in facts.consumed:
            return None
        if flag in facts.killed:
            # recomputed by the faulted step itself, before any read
            return VariantPrune("dead", "flag-rewritten", step)
        if flag in facts.touched:
            dead, settled = self.flag_dead(step + 1, flag)
            if dead and not math.isinf(settled):
                return VariantPrune("dead", "flag-dead", settled)
            return None
        dead, settled = self.flag_dead(step + 1, flag)
        if dead:
            return VariantPrune("dead", "flag-dead", settled)
        return None

    def flag_class_key(
        self, step: int, flag: str, value: int
    ) -> Optional[tuple]:
        """Equivalence-class key for a flag-force fault.

        Two forces of the same flag/value are equivalent when no step
        between them consumes or may-write the flag: the forced value
        survives untouched from the earlier point to the later one, so
        both runs coincide from the later point on.  The key is the
        index of the surrounding quiet region.
        """
        regions = self._flag_regions.get(flag)
        if regions is None:
            regions = []
            region = 0
            for j in range(len(self.trace)):
                regions.append(region)
                facts = self.step(j)
                if (
                    facts is None
                    or flag in facts.consumed
                    or flag in facts.touched
                ):
                    region += 1
            self._flag_regions[flag] = regions
        if not 0 <= step < len(regions):
            return None
        return (flag, int(bool(value)), regions[step])

    def encoding_prune(
        self, step: int, mutate: Callable[[bytearray], None]
    ) -> Optional[VariantPrune]:
        """Classify a mutated-encoding fault at ``step``.

        ``mutate`` perturbs the 15-byte fetch window in place, exactly
        as the runtime effect would.  The mutation is *dead* when it
        re-decodes to the identical bytes, or to a same-length,
        non-control, non-memory instruction all of whose definitions
        (old and new) are dead; it is a *crash* when the mutated window
        no longer decodes.
        """
        facts = self.step(step)
        if facts is None or self._window_at is None:
            return None
        window = self._window_at(step)
        if window is None:
            return None
        original = facts.insn
        mutated = bytearray(window)
        mutate(mutated)
        length = original.length
        if bytes(mutated[:length]) == bytes(window[:length]):
            # e.g. a stuck-at-zero byte that is already zero
            return VariantPrune("dead", "encoding-identity", -1)
        try:
            replacement = decode(bytes(mutated), 0, original.address)
        except DecodingError:
            return VariantPrune("crash", "undecodable", math.inf)
        if replacement.length != length:
            return None
        m_old, m_new = original.mnemonic, replacement.mnemonic
        if m_old in CONTROL_FLOW or m_new in CONTROL_FLOW:
            return None
        if m_old is Mnemonic.SYSCALL or m_new is Mnemonic.SYSCALL:
            return None
        new_facts = derive_step_facts(replacement)
        if (
            facts.eff.writes_memory
            or new_facts.eff.writes_memory
            or new_facts.eff.reads_memory
        ):
            return None
        diff: dict[int, int] = {}
        for source in (facts.write_spans, new_facts.write_spans):
            for code, span in source.items():
                diff[code] = diff.get(code, 0) | span
        settled = -1.0
        for code, span in diff.items():
            if span & ~self.reg_dead_mask(step + 1, code):
                return None
            settled = max(
                settled, self.reg_settle(step + 1, code, span)
            )
        if facts.eff.writes_flags or new_facts.eff.writes_flags:
            for flag in facts.touched | new_facts.touched:
                dead, flag_settled = self.flag_dead(step + 1, flag)
                if not dead:
                    return None
                settled = max(settled, flag_settled)
        return VariantPrune("dead", "encoding-dead", settled)
