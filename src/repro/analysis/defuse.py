"""Reaching definitions and def-use chains over the CFG.

This is the def-use component the paper attributes to Ddisasm's "Data
Access Pattern" analysis; the tests use it to relate address
materializations to the memory accesses they feed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gtirb.cfg import build_cfg
from repro.gtirb.ir import CodeBlock, Module
from repro.isa.metadata import effects


@dataclass(frozen=True)
class DefSite:
    block_uid: int
    index: int
    register: object  # Register

    def __repr__(self):
        return f"Def({self.register.name}@b{self.block_uid}[{self.index}])"


class DefUse:
    """Def-use chains: which definitions reach which uses."""

    def __init__(self, module: Module):
        self.module = module
        self.cfg = build_cfg(module)
        self._blocks = module.code_blocks()
        self._effects = {
            b.uid: [effects(e.insn) for e in b.entries]
            for b in self._blocks
        }
        self._in: dict[int, frozenset] = {}
        self._compute()
        self.uses: dict[DefSite, list[tuple[int, int]]] = {}
        self._link()

    def reaching_in(self, block: CodeBlock) -> frozenset:
        return self._in.get(block.uid, frozenset())

    def defs_reaching(self, block: CodeBlock, index: int,
                      register) -> list[DefSite]:
        """Definitions of ``register`` reaching ``block.entries[index]``."""
        live = set(self.reaching_in(block))
        for i in range(index):
            live = self._step(block.uid, i, live)
        return [d for d in live if d.register == register]

    def uses_of(self, site: DefSite) -> list[tuple[int, int]]:
        """(block_uid, index) pairs that use ``site``'s value."""
        return self.uses.get(site, [])

    # ------------------------------------------------------------------

    def _step(self, uid: int, index: int, live: set) -> set:
        eff = self._effects[uid][index]
        if eff.writes:
            live = {d for d in live if d.register not in eff.writes}
            live |= {DefSite(uid, index, r) for r in eff.writes}
        return live

    def _transfer(self, block: CodeBlock, incoming: frozenset) -> frozenset:
        live = set(incoming)
        for index in range(len(block.entries)):
            live = self._step(block.uid, index, live)
        return frozenset(live)

    def _compute(self):
        for block in self._blocks:
            self._in[block.uid] = frozenset()
        changed = True
        while changed:
            changed = False
            for block in self._blocks:
                out = self._transfer(block, self._in[block.uid])
                for edge in self.cfg.successors(block):
                    if edge.dst is None:
                        continue
                    merged = self._in[edge.dst.uid] | out
                    if merged != self._in[edge.dst.uid]:
                        self._in[edge.dst.uid] = merged
                        changed = True

    def _link(self):
        for block in self._blocks:
            live = set(self._in[block.uid])
            for index, eff in enumerate(self._effects[block.uid]):
                for register in eff.reads:
                    for site in [d for d in live
                                 if d.register == register]:
                        self.uses.setdefault(site, []).append(
                            (block.uid, index))
                live = self._step(block.uid, index, live)
