"""Machine-code analyses over recovered GTIRB modules.

* :mod:`repro.analysis.flagliveness` — is RFLAGS live after a program
  point?  Drives the patcher's choice between the paper-exact patterns
  and the flag-preserving variants.
* :mod:`repro.analysis.liveness` — general register liveness.
* :mod:`repro.analysis.regvalues` — Ddisasm-style register value
  analysis (constant/address propagation).
* :mod:`repro.analysis.defuse` — reaching definitions / def-use chains
  (the paper's "Data Access Pattern" ingredient).
"""

from repro.analysis.flagliveness import FlagLiveness
from repro.analysis.liveness import RegisterLiveness
from repro.analysis.regvalues import RegisterValueAnalysis
from repro.analysis.defuse import DefUse

__all__ = ["FlagLiveness", "RegisterLiveness", "RegisterValueAnalysis",
           "DefUse"]
