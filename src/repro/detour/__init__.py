"""Patch-based detour rewriting (Section III-B's classic alternative).

The oldest static rewriting scheme the paper surveys: replace the
patched instruction(s) with an unconditional branch to a trampoline
section that holds the instrumentation, the displaced instructions, and
a branch back.  No symbolization or reassembly is needed — the original
layout is untouched — but every patch point pays two control transfers,
the "high performance degradation" the paper attributes to detouring.

Implemented to make that comparison *measurable* (see the
``test_ablation_detour_vs_reassembly`` benchmark): the same duplication
countermeasure applied by detouring and by inline reassembly, compared
on code size and dynamic instruction count.
"""

from repro.detour.rewriter import (
    DetourResult,
    DetourRewriter,
    DetourStats,
    detour_harden,
    duplicate_with_detours,
)

__all__ = [
    "DetourResult",
    "DetourRewriter",
    "DetourStats",
    "detour_harden",
    "duplicate_with_detours",
]
