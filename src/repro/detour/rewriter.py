"""Patch-based detour instrumentation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.binfmt.image import Executable, Section, SymbolDef
from repro.errors import DecodingError, RewriteError
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem
from repro.isa.registers import RIP
from repro.provenance import KIND_DERIVED, KIND_INSN, ProvenanceMap

JMP_REL32_LEN = 5
NOP = 0x90
PAGE = 0x1000


@dataclass
class DetourStats:
    patched: int = 0
    refused: int = 0
    trampoline_bytes: int = 0


class DetourRewriter:
    """Applies patch-based detours to an executable in place.

    Usage::

        rewriter = DetourRewriter(exe)
        rewriter.instrument(address, lambda displaced: [  # instrumentation
            displaced[0].insn_copy...,
        ])
        hardened = rewriter.finish()

    ``instrument`` callbacks receive the displaced instructions and
    return the instrumentation instruction list executed *before* them
    (the paper's trampoline order: instrumentation, replaced
    instruction, branch back).
    """

    def __init__(self, exe: Executable):
        self.exe = exe
        text = exe.section(".text")
        self.text_addr = text.addr
        self.text = bytearray(text.data)
        self.trampoline = bytearray()
        self.trampoline_base = self._pick_trampoline_base()
        self.stats = DetourStats()
        self.plan = None  # optional RewritePlan for per-unit rollups
        self._branch_targets = self._collect_branch_targets()
        self._patched_ranges: list[tuple[int, int]] = []
        # .text addresses never move under detouring; displaced
        # instructions additionally gain exact trampoline mappings
        self.provenance = ProvenanceMap(path="detour")
        if self.text:
            self.provenance.add_identity(
                self.text_addr, self.text_addr + len(self.text))

    # -- public ------------------------------------------------------------

    def instrument(self, address: int,
                   instrumentation: Callable[[list[Instruction]],
                                             list[Instruction]]) -> bool:
        """Detour the instruction(s) starting at ``address``."""
        displaced = self._displaced_window(address)
        if displaced is None:
            self.stats.refused += 1
            return False
        window_len = sum(i.length for i in displaced)
        resume = address + window_len

        entry = self.trampoline_base + len(self.trampoline)
        body: list[bytes] = []
        position = entry
        injected = instrumentation(displaced)
        for index, insn in enumerate(injected + displaced):
            code = self._reencode_at(insn, position)
            body.append(code)
            if insn.address is not None:
                # instrumentation copies protect their site (derived);
                # the displaced originals relocate verbatim (insn)
                kind = KIND_DERIVED if index < len(injected) \
                    else KIND_INSN
                self.provenance.add(insn.address, position, kind=kind)
            position += len(code)
        # jmp back to the resume point
        back = encode(Instruction(
            Mnemonic.JMP, (Imm(resume - (position + JMP_REL32_LEN), 4),)))
        body.append(back)
        self.trampoline += b"".join(body)

        # overwrite the original window: jmp trampoline + NOP padding
        offset = address - self.text_addr
        jump = encode(Instruction(
            Mnemonic.JMP,
            (Imm(entry - (address + JMP_REL32_LEN), 4),)))
        patch = jump + bytes([NOP]) * (window_len - JMP_REL32_LEN)
        self.text[offset:offset + window_len] = patch
        self._patched_ranges.append((address, address + window_len))
        self.stats.patched += 1
        self.stats.trampoline_bytes = len(self.trampoline)
        return True

    def finish(self) -> Executable:
        """Produce the instrumented executable (adds ``.detour``)."""
        sections = []
        for section in self.exe.sections:
            if section.name == ".text":
                sections.append(Section(
                    ".text", section.addr, bytes(self.text),
                    flags=section.flags))
            else:
                sections.append(section)
        if self.trampoline:
            sections.append(Section(
                ".detour", self.trampoline_base, bytes(self.trampoline),
                flags="rx"))
        symbols = list(self.exe.symbols)
        if self.trampoline:
            symbols.append(SymbolDef("fi_detour", self.trampoline_base,
                                     ".detour"))
        # .text addresses are stable under detouring, so the dynamic
        # tables of a PIE input carry over unchanged.
        return Executable(entry=self.exe.entry, sections=sections,
                          symbols=symbols, pie=self.exe.pie,
                          relocations=list(self.exe.relocations),
                          dynamic_symbols=list(self.exe.dynamic_symbols))

    # -- internals -----------------------------------------------------------

    def _pick_trampoline_base(self) -> int:
        top = max(s.end for s in self.exe.sections)
        return (top + PAGE - 1) // PAGE * PAGE + PAGE

    def _collect_branch_targets(self) -> set[int]:
        """Branch targets of every decodable ``.text`` instruction.

        Decoding stays in lockstep with instruction boundaries: on a
        :class:`DecodingError` (data embedded in ``.text``, exotic
        encodings) the walk resynchronizes at the next known-good
        boundary — the next ``.text`` symbol — instead of sliding one
        byte forward, which would decode garbage mid-blob and mint
        phantom branch targets (spuriously refusing legal detours).

        Past the last symbol the walk falls back to the conservative
        one-byte slide: it may over-approximate (phantom targets only
        ever *refuse* detours, which is safe), but it never drops a
        real target the window-overlap check depends on — important
        for stripped binaries, where no boundaries exist at all.
        """
        targets = set()
        boundaries = sorted(
            symbol.value - self.text_addr
            for symbol in self.exe.recovery_symbols()
            if symbol.section == ".text"
            and 0 <= symbol.value - self.text_addr < len(self.text))
        offset = 0
        while offset < len(self.text):
            try:
                insn = decode(self.text, offset,
                              self.text_addr + offset)
            except DecodingError:
                resume = next((b for b in boundaries if b > offset),
                              None)
                offset = resume if resume is not None else offset + 1
                continue
            target = insn.branch_target()
            if target is not None:
                targets.add(target)
            offset += insn.length
        return targets

    def _displaced_window(self, address: int) -> Optional[list]:
        """Instructions from ``address`` covering >= 5 bytes, if legal."""
        if any(start <= address < end
               for start, end in self._patched_ranges):
            return None
        displaced = []
        position = address
        while position - address < JMP_REL32_LEN:
            offset = position - self.text_addr
            if offset >= len(self.text):
                return None
            try:
                insn = decode(self.text, offset, position)
            except DecodingError:
                return None
            if insn.is_control_flow:
                return None  # keep it simple: never displace branches
            displaced.append(insn)
            position += insn.length
            # a branch target inside the window would jump into the
            # middle of our patch bytes
            if any(address < t < position for t in self._branch_targets):
                return None
        return displaced

    def _reencode_at(self, insn: Instruction, new_address: int) -> bytes:
        """Re-encode an instruction for a new location.

        RIP-relative operands are re-based; everything else is
        position-independent in the subset.
        """
        operands = []
        changed = False
        for operand in insn.operands:
            if isinstance(operand, Mem) and operand.is_rip_relative:
                if insn.address is None:
                    raise RewriteError("cannot rebase unplaced insn")
                target = insn.address + insn.length + operand.disp
                # length may change with the new displacement; iterate
                operands.append(("rip", operand, target))
                changed = True
            else:
                operands.append(("keep", operand, None))
        if not changed:
            return insn.raw if insn.raw else encode(insn)
        # fixpoint on the encoded length (disp32 is stable, so one pass)
        new_ops = []
        provisional = encode(insn.with_operands(*[
            o if kind == "keep" else Mem(RIP, None, 1, 0, o.size)
            for kind, o, _ in operands]))
        length = len(provisional)
        for kind, operand, target in operands:
            if kind == "keep":
                new_ops.append(operand)
            else:
                disp = target - (new_address + length)
                new_ops.append(Mem(RIP, None, 1, disp, operand.size))
        return encode(insn.with_operands(*new_ops))


def _duplication_rewriter(exe: Executable) -> DetourRewriter:
    """Detour every idempotent data instruction into a run-twice
    trampoline (the duplication countermeasure, Section III-B).

    Consumes the unit stream from :func:`recover_plan` instead of a
    raw linear decode of ``.text``: opaque (undecodable) units are
    skipped and preserved, sweep-recovered units on stripped inputs
    are instrumented like any function, and the resulting provenance
    map composes per-unit rollups.
    """
    from repro.disasm.units import recover_plan
    from repro.patcher.patterns import _is_idempotent
    from repro.provenance import with_unit_rollups

    rewriter = DetourRewriter(exe)
    _, plan = recover_plan(exe)
    rewriter.plan = plan
    for unit in plan.code_units():
        for block in unit.blocks:
            if not block.is_code:
                continue
            for entry in block.entries:
                insn = entry.insn
                if not insn.is_control_flow and \
                        insn.mnemonic is not Mnemonic.SYSCALL and \
                        _is_idempotent(entry):
                    rewriter.instrument(
                        insn.address, lambda displaced: [displaced[0]])
    rewriter.provenance = with_unit_rollups(rewriter.provenance, plan)
    return rewriter


def duplicate_with_detours(exe: Executable) -> tuple[Executable,
                                                     DetourStats]:
    """Apply the duplication countermeasure via detours.

    Every idempotent data instruction is displaced into a trampoline
    that executes it twice — the detour-flavoured equivalent of the
    inline duplication the patcher performs, used by the Section III-B
    comparison benchmark.
    """
    rewriter = _duplication_rewriter(exe)
    return rewriter.finish(), rewriter.stats


@dataclass
class DetourResult:
    """Outcome of detour-based hardening (duplication via trampolines).

    Mirrors the surface of ``HardenResult``/``HybridResult`` so the
    countermeasure-evaluation loop treats all three rewriting paths
    uniformly.
    """

    hardened: Executable
    original_text_size: int
    hardened_text_size: int
    stats: DetourStats = field(default_factory=DetourStats)
    provenance: ProvenanceMap = field(default_factory=lambda:
                                      ProvenanceMap(path="detour"))
    final_reports: dict = field(default_factory=dict)

    @property
    def overhead_percent(self) -> float:
        """Code-size overhead (original text + trampoline bytes)."""
        if self.original_text_size == 0:
            return 0.0
        return 100.0 * (self.hardened_text_size -
                        self.original_text_size) \
            / self.original_text_size

    def to_dict(self) -> dict:
        return {
            "approach": "detour",
            "original_text_size": self.original_text_size,
            "hardened_text_size": self.hardened_text_size,
            "overhead_percent": round(self.overhead_percent, 2),
            "patched": self.stats.patched,
            "refused": self.stats.refused,
            "trampoline_bytes": self.stats.trampoline_bytes,
            "provenance": self.provenance.to_dict(),
            "final_reports": {
                model: report.to_dict()
                for model, report in self.final_reports.items()
            },
        }

    def report(self) -> str:
        lines = [
            "Detour hardening report",
            f"  text size: {self.original_text_size}B -> "
            f"{self.hardened_text_size}B "
            f"({self.overhead_percent:+.2f}%)",
            f"  detours: {self.stats.patched} patched, "
            f"{self.stats.refused} refused, "
            f"{self.stats.trampoline_bytes}B trampoline",
        ]
        for model, report in self.final_reports.items():
            lines.append(
                f"  final[{model}]: "
                f"{len(report.vulnerable_points())} vulnerable "
                f"point(s)")
        return "\n".join(lines)


def detour_harden(exe: Executable,
                  good_input: bytes,
                  bad_input: bytes,
                  grant_marker,
                  name: str = "target",
                  models=()) -> DetourResult:
    """Duplication-via-detours hardening with behaviour validation.

    ``grant_marker`` accepts raw marker ``bytes`` or any
    :class:`~repro.faulter.oracle.Oracle` (consumed by the optional
    ``models`` re-fault campaigns; validation compares behaviour).

    ``models`` optionally re-runs fault campaigns against the hardened
    binary (reported in ``final_reports``), mirroring the other two
    hardening entry points.
    """
    from repro.emu.machine import run_executable

    rewriter = _duplication_rewriter(exe)
    hardened = rewriter.finish()
    for label, stdin in (("good", good_input), ("bad", bad_input)):
        want = run_executable(exe, stdin=stdin)
        got = run_executable(hardened, stdin=stdin)
        if want.behavior() != got.behavior():
            raise RewriteError(
                f"{name}: detour hardening changed {label}-input "
                f"behaviour: {want} vs {got}")

    result = DetourResult(
        hardened=hardened,
        original_text_size=exe.code_size(),
        hardened_text_size=hardened.code_size(),
        stats=rewriter.stats,
        provenance=rewriter.provenance,
    )
    if models:
        from repro.faulter.campaign import Faulter

        faulter = Faulter(hardened, good_input, bad_input, grant_marker,
                          name=f"{name}-detour")
        result.final_reports = {
            model: faulter.run_campaign(model) for model in models}
    return result
