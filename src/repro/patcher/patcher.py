"""Patch application: splice hardened patterns into a GTIRB module."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.flagliveness import FlagLiveness
from repro.errors import RewriteError
from repro.gtirb.ir import (
    CodeBlock, DataBlock, GSection, InsnEntry, Module, SymExpr, Symbol)
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm, Reg
from repro.isa.registers import reg
from repro.patcher.patterns import PatchBuilder, select_pattern

FAULTHANDLER_NAME = "fi_faulthandler"
FAULT_MESSAGE = b"FAULT DETECTED\n"
FAULT_EXIT_CODE = 42


@dataclass
class PatchRecord:
    """Log entry for one applied (or refused) patch."""

    address: Optional[int]
    mnemonic: str
    applied: bool
    reason: str = ""


class Patcher:
    """Applies localized protection patterns to a module."""

    def __init__(self, module: Module):
        self.module = module
        self.log: list[PatchRecord] = []
        self._flags: Optional[FlagLiveness] = None
        self._handler: Optional[Symbol] = None

    # -- fault handler injection ------------------------------------------

    def ensure_faulthandler(self) -> Symbol:
        """Inject the fault-response routine once (write + exit(42))."""
        if self._handler is not None:
            return self._handler
        if self.module.has_symbol(FAULTHANDLER_NAME):
            self._handler = self.module.symbol(FAULTHANDLER_NAME)
            return self._handler

        message = DataBlock(items=[FAULT_MESSAGE])
        data_section = self._data_section()
        data_section.blocks.append(message)
        msg_symbol = self.module.add_symbol("fi_fault_msg", message)

        rax, rdi, rsi, rdx = (Reg(reg(n)) for n in
                              ("rax", "rdi", "rsi", "rdx"))
        entries = [
            InsnEntry(Instruction(Mnemonic.MOV, (rax, Imm(1))),
                      protected=True),
            InsnEntry(Instruction(Mnemonic.MOV, (rdi, Imm(2))),
                      protected=True),
            InsnEntry(Instruction(Mnemonic.MOV, (rsi, Imm(0, 8))),
                      {1: SymExpr("imm", msg_symbol)}, protected=True),
            InsnEntry(Instruction(Mnemonic.MOV,
                                  (rdx, Imm(len(FAULT_MESSAGE)))),
                      protected=True),
            InsnEntry(Instruction(Mnemonic.SYSCALL, ()), protected=True),
            InsnEntry(Instruction(Mnemonic.MOV, (rax, Imm(60))),
                      protected=True),
            InsnEntry(Instruction(Mnemonic.MOV,
                                  (rdi, Imm(FAULT_EXIT_CODE))),
                      protected=True),
            InsnEntry(Instruction(Mnemonic.SYSCALL, ()), protected=True),
        ]
        block = CodeBlock(entries=entries)
        self.module.text().blocks.append(block)
        self._handler = self.module.add_symbol(FAULTHANDLER_NAME, block)
        self._invalidate()
        return self._handler

    def _data_section(self) -> GSection:
        for section in self.module.sections:
            if section.name == ".data":
                return section
        section = GSection(".data", [], "rw")
        # keep .bss last if present
        bss_index = next(
            (i for i, s in enumerate(self.module.sections)
             if s.name == ".bss"), len(self.module.sections))
        self.module.sections.insert(bss_index, section)
        return section

    # -- patching ------------------------------------------------------------

    def flag_liveness(self) -> FlagLiveness:
        if self._flags is None:
            self._flags = FlagLiveness(self.module)
        return self._flags

    def _invalidate(self):
        self._flags = None

    def patch_entry(self, entry: InsnEntry) -> bool:
        """Patch the block entry object in place.  True on success."""
        located = self._locate(entry)
        if located is None:
            raise RewriteError("entry not found in module")
        section, block, index = located
        if entry.protected:
            self._log(entry, False, "already protected")
            return False
        pattern = select_pattern(entry)
        if pattern is None:
            self._log(entry, False,
                      f"no pattern for {entry.insn.mnemonic}")
            return False
        flags_live = self.flag_liveness().live_after(block, index)
        builder = PatchBuilder(self.module, self.ensure_faulthandler(),
                               site=entry)
        if not pattern(builder, entry, flags_live):
            self._log(entry, False, "pattern not applicable")
            return False
        self._splice(section, block, index, builder)
        self._log(entry, True,
                  f"flags {'live' if flags_live else 'dead'}")
        self._invalidate()
        return True

    def patch_address(self, address: int) -> bool:
        """Patch the instruction at an original address."""
        _, block, index = self.module.find_instruction(address)
        return self.patch_entry(block.entries[index])

    def _locate(self, entry: InsnEntry):
        for section in self.module.sections:
            if "x" not in section.flags:
                continue
            for block in section.blocks:
                if not block.is_code:
                    continue
                for index, candidate in enumerate(block.entries):
                    if candidate is entry:
                        return section, block, index
        return None

    def _log(self, entry: InsnEntry, applied: bool, reason: str):
        self.log.append(PatchRecord(entry.address, entry.insn.name,
                                    applied, reason))

    # -- splicing ------------------------------------------------------------

    def _splice(self, section: GSection, block: CodeBlock, index: int,
                builder: PatchBuilder):
        """Replace ``block.entries[index]`` with the builder's items."""
        pre = block.entries[:index]
        post = block.entries[index + 1:]

        # chunk items at label boundaries
        chunks: list[tuple[list[Symbol], list[InsnEntry]]] = [([], [])]
        for kind, payload in builder.items:
            if kind == "label":
                if chunks[-1][1]:
                    chunks.append(([payload], []))
                else:
                    chunks[-1][0].append(payload)
            else:
                chunks[-1][1].append(payload)

        block.entries = pre + chunks[0][1]
        for symbol in chunks[0][0]:
            # labels before any instruction of the first chunk would
            # alias the patched block's start; bind them to it
            symbol.referent = block

        position = section.blocks.index(block)
        new_blocks: list[CodeBlock] = []
        for symbols, entries in chunks[1:]:
            new_block = CodeBlock(entries=entries)
            for symbol in symbols:
                symbol.referent = new_block
            new_blocks.append(new_block)

        continuation = builder._continuation
        if post or continuation is not None:
            post_block = CodeBlock(entries=post)
            if continuation is not None:
                continuation.referent = post_block
            new_blocks.append(post_block)
        section.blocks[position + 1:position + 1] = new_blocks
