"""Protection patterns (Tables I, II, III of the paper).

Each pattern receives the vulnerable :class:`InsnEntry` and a
:class:`PatchBuilder`, and emits the hardened replacement sequence.
Deviations from the paper listings (documented in DESIGN.md):

* the ``mov`` pattern has a flag-preserving variant, chosen when the
  flag-liveness analysis proves RFLAGS live across the patch point
  (the paper-exact pattern clobbers them);
* the ``j<cc>`` pattern restores ``rsp`` after the red-zone hop and
  re-evaluates the *inverted* condition on the fall-through edge (the
  paper listing omits both, which makes it unexecutable as printed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.gtirb.ir import InsnEntry, Module, SymExpr, Symbol
from repro.isa.cond import Cond
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.metadata import effects
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import parent_gpr, reg

RSP = reg("rsp")
RCX = reg("rcx")
RBX = reg("rbx")
CL = reg("cl")

RED_ZONE = 128


@dataclass
class PatchBuilder:
    """Accumulates the replacement sequence for one patch site.

    Items are ``("insn", InsnEntry)`` and ``("label", Symbol)``; the
    patcher turns label boundaries into fresh code blocks.  The special
    :meth:`continuation` symbol is bound to the code following the
    patched instruction.
    """

    module: Module
    faulthandler: Symbol
    site: Optional[InsnEntry] = None
    items: list = field(default_factory=list)
    _continuation: Optional[Symbol] = None

    def _root(self):
        return self.site.root_site() if self.site is not None else None

    def insn(self, mnemonic: Mnemonic, *operands, cond=None,
             syms: Optional[dict] = None) -> InsnEntry:
        entry = InsnEntry(Instruction(mnemonic, tuple(operands), cond=cond),
                          dict(syms or {}), protected=True,
                          origin=self._root())
        self.items.append(("insn", entry))
        return entry

    def copy_original(self, entry: InsnEntry) -> InsnEntry:
        duplicate = entry.copy()
        duplicate.protected = True
        duplicate.origin = self._root()
        self.items.append(("insn", duplicate))
        return duplicate

    def label(self, prefix: str) -> Symbol:
        symbol = self.module.fresh_symbol(prefix, None)
        self.items.append(("label", symbol))
        return symbol

    def continuation(self) -> Symbol:
        if self._continuation is None:
            self._continuation = self.module.fresh_symbol("fi_cont", None)
        return self._continuation

    # -- branch helpers ----------------------------------------------------

    def jump_to(self, symbol: Symbol, cond: Optional[Cond] = None):
        mnemonic = Mnemonic.JCC if cond is not None else Mnemonic.JMP
        self.insn(mnemonic, Imm(0, 4), cond=cond,
                  syms={0: SymExpr("branch", symbol)})

    def call_faulthandler(self):
        self.insn(Mnemonic.CALL, Imm(0, 4),
                  syms={0: SymExpr("branch", self.faulthandler)})

    # -- red-zone helpers ----------------------------------------------------

    def red_zone_enter(self):
        self.insn(Mnemonic.LEA, Reg(RSP),
                  Mem(base=RSP, disp=-RED_ZONE, size=8))

    def red_zone_leave(self):
        self.insn(Mnemonic.LEA, Reg(RSP),
                  Mem(base=RSP, disp=RED_ZONE, size=8))


# ---------------------------------------------------------------------------
# applicability helpers
# ---------------------------------------------------------------------------


def _operand_regs(operand) -> set:
    regs = set()
    if isinstance(operand, Reg):
        regs.add(parent_gpr(operand.register))
    elif isinstance(operand, Mem):
        if operand.base is not None and operand.base.name != "rip":
            regs.add(parent_gpr(operand.base))
        if operand.index is not None:
            regs.add(parent_gpr(operand.index))
    return regs


def _uses_rsp(entry: InsnEntry) -> bool:
    return any(RSP in _operand_regs(op) for op in entry.insn.operands)


def _is_zeroing_idiom(insn) -> bool:
    """``xor r, r`` / ``sub r, r``: value-independent, so duplicable."""
    if insn.mnemonic not in (Mnemonic.XOR, Mnemonic.SUB):
        return False
    if len(insn.operands) != 2:
        return False
    a, b = insn.operands
    return isinstance(a, Reg) and isinstance(b, Reg) and a == b


def _is_idempotent(entry: InsnEntry) -> bool:
    """Safe to execute twice in a row with identical effect?"""
    insn = entry.insn
    if _is_zeroing_idiom(insn):
        return True
    if insn.mnemonic not in (Mnemonic.MOV, Mnemonic.LEA, Mnemonic.MOVZX,
                             Mnemonic.SETCC, Mnemonic.CMP, Mnemonic.TEST):
        return False
    eff = effects(insn)
    sources = set()
    for operand in insn.operands[1:] if len(insn.operands) > 1 else []:
        sources |= _operand_regs(operand)
    dst = insn.operands[0] if insn.operands else None
    if isinstance(dst, Reg):
        dst_reg = parent_gpr(dst.register)
        if dst_reg in sources:
            return False
        if isinstance(dst, Reg) and len(insn.operands) > 1 and \
                isinstance(insn.operands[1], Mem):
            if dst_reg in _operand_regs(insn.operands[1]):
                return False
    return True


# ---------------------------------------------------------------------------
# Table I: mov protection
# ---------------------------------------------------------------------------


def mov_pattern(builder: PatchBuilder, entry: InsnEntry,
                flags_live: bool) -> bool:
    """Re-perform and verify a ``mov`` (Table I)."""
    insn = entry.insn
    if len(insn.operands) != 2:
        return False
    dst, src = insn.operands
    if isinstance(src, Imm) and src.size == 8:
        # movabs: no cmp imm64 form exists; fall back to duplication
        return duplicate_pattern(builder, entry)
    if isinstance(dst, Reg) and \
            parent_gpr(dst.register) in _operand_regs(src):
        # e.g. mov rax, [rax+8]: the reload would use the clobbered base
        return False
    if _uses_rsp(entry) and flags_live:
        # the flag-preserving variant moves rsp; offsets would shift
        return False

    if flags_live:
        builder.copy_original(entry)
        builder.red_zone_enter()
        builder.insn(Mnemonic.PUSHFQ)
        builder.insn(Mnemonic.CMP, dst, src, syms=_shift_syms(entry))
        ok = builder.module.fresh_symbol("fi_mov_ok", None)
        builder.jump_to(ok, cond=Cond.E)
        builder.call_faulthandler()
        builder.items.append(("label", ok))
        builder.insn(Mnemonic.POPFQ)
        builder.red_zone_leave()
        return True

    builder.copy_original(entry)
    builder.insn(Mnemonic.CMP, dst, src, syms=_shift_syms(entry))
    builder.jump_to(builder.continuation(), cond=Cond.E)  # happyflow
    builder.call_faulthandler()
    return True


def _shift_syms(entry: InsnEntry) -> dict:
    """Reuse the original operand SymExprs for a same-shape instruction."""
    return dict(entry.sym_operands)


# ---------------------------------------------------------------------------
# Table II: cmp/test protection
# ---------------------------------------------------------------------------


def cmp_pattern(builder: PatchBuilder, entry: InsnEntry,
                flags_live: bool) -> bool:
    """Duplicate a compare and match the two RFLAGS snapshots (Table II)."""
    insn = entry.insn
    if len(insn.operands) != 2 or _uses_rsp(entry):
        return False
    scratch = None
    for operand in insn.operands:
        if isinstance(operand, Reg):
            scratch = parent_gpr(operand.register)
            break
    if scratch is None or scratch is RSP:
        scratch = RBX

    builder.red_zone_enter()
    builder.copy_original(entry)              # first compare -> F1
    builder.insn(Mnemonic.PUSH, Reg(scratch))
    builder.insn(Mnemonic.PUSHFQ)             # save F1
    builder.copy_original(entry)              # duplicate compare -> F2
    builder.insn(Mnemonic.PUSHFQ)
    builder.insn(Mnemonic.POP, Reg(scratch))  # scratch = F2
    builder.insn(Mnemonic.CMP, Reg(scratch), Mem(base=RSP, size=8))
    restore = builder.module.fresh_symbol("fi_cmp_restore", None)
    builder.jump_to(restore, cond=Cond.E)
    builder.call_faulthandler()
    builder.items.append(("label", restore))
    # Restore deviates from the paper's single `popfq`: skipping that
    # popfq leaves ZF=1 from the snapshot comparison, which is exactly
    # the attacker-favorable state for a following `je`.  Instead we
    # drop the saved snapshot arithmetically and re-derive the final
    # flags by re-executing the (idempotent) compare twice, so that no
    # single instruction skip can leave forged flags behind.
    builder.insn(Mnemonic.LEA, Reg(RSP), Mem(base=RSP, disp=8, size=8))
    builder.insn(Mnemonic.POP, Reg(scratch))
    builder.red_zone_leave()
    builder.copy_original(entry)              # re-establish flags (1)
    builder.copy_original(entry)              # re-establish flags (2)
    return True


# ---------------------------------------------------------------------------
# Table III: conditional jump protection
# ---------------------------------------------------------------------------


def jcc_pattern(builder: PatchBuilder, entry: InsnEntry,
                flags_live: bool) -> bool:
    """Verify the branch condition on both edges (Table III)."""
    insn = entry.insn
    target_expr = entry.sym_operands.get(0)
    if insn.mnemonic is not Mnemonic.JCC or target_expr is None:
        return False
    cond = insn.cond

    new_jumptarget = builder.module.fresh_symbol("fi_jcc_taken", None)
    builder.jump_to(new_jumptarget, cond=cond)

    # fall-through edge: condition must evaluate false
    _edge_check(builder, cond, expected=0, tag="fi_jcc_nft")
    builder.jump_to(builder.continuation(), cond=cond.inverted)
    builder.call_faulthandler()

    # taken edge: condition must evaluate true
    builder.items.append(("label", new_jumptarget))
    _edge_check(builder, cond, expected=1, tag="fi_jcc_njt")
    builder.insn(Mnemonic.JCC, Imm(0, 4), cond=cond,
                 syms={0: SymExpr("branch", target_expr.symbol,
                                  target_expr.addend)})
    builder.call_faulthandler()
    return True


def _edge_check(builder: PatchBuilder, cond: Cond, expected: int, tag: str):
    """Shared Table III edge validation: set<cc> cl; cmp cl, expected."""
    builder.red_zone_enter()
    builder.insn(Mnemonic.PUSH, Reg(RCX))
    builder.insn(Mnemonic.PUSHFQ)
    builder.insn(Mnemonic.SETCC, Reg(CL), cond=cond)
    builder.insn(Mnemonic.CMP, Reg(CL), Imm(expected, 1))
    ok = builder.module.fresh_symbol(tag, None)
    builder.jump_to(ok, cond=Cond.E)
    builder.call_faulthandler()
    builder.items.append(("label", ok))
    builder.insn(Mnemonic.POPFQ)
    builder.insn(Mnemonic.POP, Reg(RCX))
    builder.red_zone_leave()


# ---------------------------------------------------------------------------
# fallback: plain duplication (Barry et al. style, for idempotent ops)
# ---------------------------------------------------------------------------


def duplicate_pattern(builder: PatchBuilder, entry: InsnEntry) -> bool:
    if not _is_idempotent(entry):
        return False
    builder.copy_original(entry)
    builder.copy_original(entry)
    return True


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------


def select_pattern(entry: InsnEntry):
    """Pattern function for a vulnerable entry, or None."""
    mnemonic = entry.insn.mnemonic
    if mnemonic is Mnemonic.MOV:
        return mov_pattern
    if _is_zeroing_idiom(entry.insn):
        return lambda builder, entry, flags_live: duplicate_pattern(
            builder, entry)
    if mnemonic in (Mnemonic.CMP, Mnemonic.TEST):
        return cmp_pattern
    if mnemonic is Mnemonic.JCC:
        return jcc_pattern
    if mnemonic in (Mnemonic.LEA, Mnemonic.MOVZX, Mnemonic.SETCC):
        return lambda builder, entry, flags_live: duplicate_pattern(
            builder, entry)
    return None
