"""The patcher: localized countermeasure insertion (Section IV-B.2).

Takes the faulter's vulnerability list and replaces each vulnerable
instruction with the paper's hardened patterns:

* Table I  — ``mov``  : re-perform/verify the move, fault-handler on
  mismatch,
* Table II — ``cmp``  : duplicate the compare, compare the two RFLAGS
  snapshots through the stack (with the Intel red-zone hop),
* Table III— ``j<cc>``: verify the branch condition on both edges with
  ``set<cc>`` before re-executing the jump.

``FaulterPatcherLoop`` drives the Fig. 2 iteration: fault, patch,
reassemble, repeat until no successful faults remain or only residual
(already-protected) points are left.
"""

from repro.patcher.patterns import PatchBuilder, select_pattern
from repro.patcher.patcher import Patcher
from repro.patcher.loop import FaulterPatcherLoop, HardenResult

__all__ = ["PatchBuilder", "select_pattern", "Patcher",
           "FaulterPatcherLoop", "HardenResult"]
