"""The Faulter+Patcher fixpoint loop (Fig. 2 of the paper).

Iteration: run the faulter under the chosen fault models, map every
successful fault back to its GTIRB entry, patch the unprotected ones,
reassemble, and repeat — until no successful faults remain, only
residual (already-protected) points are left, or the iteration cap is
hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.asm.assembler import assemble_with_map
from repro.binfmt.image import Executable
from repro.disasm.emitprog import module_to_program
from repro.disasm.recover import disassemble
from repro.disasm.units import build_plan
from repro.faulter.campaign import Faulter
from repro.faulter.report import CampaignReport
from repro.gtirb.ir import Module
from repro.patcher.patcher import Patcher
from repro.provenance import (
    KIND_DERIVED, KIND_INSN, ProvenanceMap, with_unit_rollups)


def provenance_from_tag_map(tag_map: dict, plan=None) -> ProvenanceMap:
    """Build the original->rewritten map from the assembler's tag map.

    Every ``InsnEntry`` that survived the rewrite carries its original
    decoded address; pattern-emitted entries attribute to the original
    site they protect via ``root_site()``.  Entries with no original
    counterpart (the injected fault handler) carry no mapping.  With a
    :class:`~repro.disasm.units.RewritePlan` the map is composed from
    per-unit maps and carries per-function rollups.
    """
    provenance = ProvenanceMap(path="patcher")
    for entry, address in tag_map.items():
        original = entry.root_site().address
        if original is None:
            continue
        kind = KIND_INSN if entry.origin is None else KIND_DERIVED
        provenance.add(original, address, kind=kind)
    if plan is not None:
        provenance = with_unit_rollups(provenance, plan)
    return provenance


@dataclass
class IterationStats:
    """One round of fault-patch-reassemble."""

    iteration: int
    vulnerable_points: int
    patched: int
    residual: int
    text_size: int
    reports: dict[str, CampaignReport] = field(default_factory=dict)

    def __str__(self):
        return (f"iter {self.iteration}: vulnerable={self.vulnerable_points} "
                f"patched={self.patched} residual={self.residual} "
                f"text={self.text_size}B")


@dataclass
class HardenResult:
    """Outcome of the Faulter+Patcher loop."""

    hardened: Executable
    module: Module
    original_text_size: int
    hardened_text_size: int
    iterations: list[IterationStats]
    final_reports: dict[str, CampaignReport]
    converged: bool
    original_sites: int = 0
    remaining_sites: int = 0
    emergent_points: int = 0
    provenance: ProvenanceMap = field(default_factory=lambda:
                                      ProvenanceMap(path="patcher"))

    @property
    def overhead_percent(self) -> float:
        """Code-size overhead, the paper's Table V metric."""
        if self.original_text_size == 0:
            return 0.0
        return 100.0 * (self.hardened_text_size - self.original_text_size) \
            / self.original_text_size

    @property
    def site_reduction_percent(self) -> float:
        """How many of the originally vulnerable program points were
        fixed (the paper's "number of vulnerable points" metric)."""
        if self.original_sites == 0:
            return 100.0
        return 100.0 * (self.original_sites - self.remaining_sites) \
            / self.original_sites

    def residual_vulnerabilities(self) -> dict[str, int]:
        return {model: len(report.vulnerable_points())
                for model, report in self.final_reports.items()}

    def to_dict(self) -> dict:
        """JSON-friendly summary (for CI dashboards / automation)."""
        return {
            "approach": "faulter+patcher",
            "converged": self.converged,
            "original_text_size": self.original_text_size,
            "hardened_text_size": self.hardened_text_size,
            "overhead_percent": round(self.overhead_percent, 2),
            "original_sites": self.original_sites,
            "remaining_sites": self.remaining_sites,
            "emergent_points": self.emergent_points,
            "provenance": self.provenance.to_dict(),
            "iterations": [
                {
                    "iteration": s.iteration,
                    "vulnerable": s.vulnerable_points,
                    "patched": s.patched,
                    "residual": s.residual,
                }
                for s in self.iterations
            ],
            "final_reports": {
                model: report.to_dict()
                for model, report in self.final_reports.items()
            },
        }

    def report(self) -> str:
        lines = [
            "Faulter+Patcher hardening report",
            f"  text size: {self.original_text_size}B -> "
            f"{self.hardened_text_size}B "
            f"({self.overhead_percent:+.2f}%)",
            f"  converged: {self.converged}",
            f"  vulnerable sites: {self.original_sites} -> "
            f"{self.remaining_sites} "
            f"({self.site_reduction_percent:.0f}% fixed, "
            f"{self.emergent_points} emergent point(s) in patterns)",
        ]
        for stats in self.iterations:
            lines.append(f"  {stats}")
        for model, report in self.final_reports.items():
            lines.append(
                f"  final[{model}]: "
                f"{len(report.vulnerable_points())} vulnerable point(s), "
                f"{report.outcomes.get('success', 0)} successful fault(s)")
        return "\n".join(lines)


class FaulterPatcherLoop:
    """Drives the iterative, simulation-guided hardening of one binary.

    ``grant_marker`` is the fault-detection oracle: raw ``bytes`` keep
    the historical stdout-marker check, and any
    :class:`~repro.faulter.oracle.Oracle` swaps in a different
    success predicate for the loop's campaigns.
    """

    def __init__(self,
                 exe: Executable,
                 good_input: bytes,
                 bad_input: bytes,
                 grant_marker,
                 models: Sequence[str] = ("skip",),
                 max_iterations: int = 8,
                 symbolization: str = "refined",
                 name: str = "target"):
        self.original = exe
        self.good_input = good_input
        self.bad_input = bad_input
        self.grant_marker = grant_marker
        self.models = list(models)
        self.max_iterations = max_iterations
        self.symbolization = symbolization
        self.name = name

    def run(self) -> HardenResult:
        module = disassemble(self.original, mode=self.symbolization)
        plan = build_plan(module)
        patcher = Patcher(module)
        exe, tag_map = self._emit(module)
        original_text_size = self.original.code_size()

        iterations: list[IterationStats] = []
        reports: dict[str, CampaignReport] = {}
        converged = False
        original_sites: set = set()
        by_address: dict = {}
        for iteration in range(1, self.max_iterations + 1):
            faulter = Faulter(exe, self.good_input, self.bad_input,
                              self.grant_marker, name=self.name)
            reports = {m: faulter.run_campaign(m) for m in self.models}
            by_address = {addr: entry for entry, addr in tag_map.items()}

            vulnerable = {}
            for report in reports.values():
                for point in report.vulnerable_points():
                    vulnerable.setdefault(point.address, point)
            if iteration == 1:
                original_sites = {
                    id(by_address[a].root_site())
                    for a in vulnerable if a in by_address}
            if not vulnerable:
                converged = True
                iterations.append(IterationStats(
                    iteration, 0, 0, 0, exe.code_size(), reports))
                break

            patched = residual = 0
            for unit, addresses in _stream_by_unit(plan, vulnerable,
                                                   by_address):
                if unit is not None and unit.opaque:
                    residual += len(addresses)  # preserved byte-for-byte
                    continue
                for address in addresses:
                    entry = by_address.get(address)
                    if entry is None or entry.protected:
                        residual += 1
                        continue
                    if patcher.patch_entry(entry):
                        patched += 1
                    else:
                        residual += 1
            iterations.append(IterationStats(
                iteration, len(vulnerable), patched, residual,
                exe.code_size(), reports))
            if patched == 0:
                break  # nothing more can be fixed (paper's exit arrow)
            exe, tag_map = self._emit(module)

        remaining_sites: set = set()
        emergent = 0
        for report in reports.values():
            for point in report.vulnerable_points():
                entry = by_address.get(point.address)
                if entry is None:
                    emergent += 1
                    continue
                root = id(entry.root_site())
                if root in original_sites:
                    remaining_sites.add(root)
                else:
                    emergent += 1
        return HardenResult(
            hardened=exe,
            module=module,
            original_text_size=original_text_size,
            hardened_text_size=exe.code_size(),
            iterations=iterations,
            final_reports=reports,
            converged=converged,
            original_sites=len(original_sites),
            remaining_sites=len(remaining_sites),
            emergent_points=emergent,
            provenance=provenance_from_tag_map(tag_map, plan),
        )

    def _emit(self, module: Module):
        program = module_to_program(module)
        return assemble_with_map(program, pie=self.original.pie)


def _stream_by_unit(plan, vulnerable, by_address):
    """Group vulnerable (rewritten) addresses by their rewrite unit.

    Attribution goes through each entry's original root site, since
    reassembly shifts rewritten addresses; unmapped addresses (emergent
    points in injected code) stream last under unit ``None``.
    """
    grouped: dict = {}
    for address in sorted(vulnerable):
        entry = by_address.get(address)
        unit = None
        if entry is not None:
            original = entry.root_site().address
            if original is not None:
                unit = plan.unit_at(original)
        grouped.setdefault(
            None if unit is None else unit.name, (unit, []))[1].append(
                address)
    ordered = [u.name for u in plan.units if u.name in grouped]
    if None in grouped:
        ordered.append(None)
    return [grouped[name] for name in ordered]
