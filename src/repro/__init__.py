"""Rewrite to Reinforce — rewriting against fault-injection attacks.

Reproduction of Kiaei et al., "Rewrite to Reinforce: Rewriting the Binary
to Apply Countermeasures against Fault Injection" (DAC 2021).

The package bundles the paper's primary contribution (the Faulter+Patcher
loop and the Hybrid lift/harden/lower pipeline) together with every
substrate it needs to run offline: an x86-64 subset ISA with real
encodings, an ELF64 subset, an assembler/linker, a CPU emulator, a
GTIRB-like rewriting IR with Ddisasm-style recovery, and an LLVM-like SSA
IR with a lowering backend.

Quickstart::

    from repro.workloads import pincheck

    target = pincheck.workload().target()
    result = target.harden(approach="faulter+patcher",
                           fault_models=("skip",))
    print(result.report())

(See ``docs/api.md`` for the session API — ``Target``/``Oracle``/
``EngineConfig`` — and the migration path from the deprecated free
functions.)
"""

__version__ = "1.0.0"


def __getattr__(name):
    """Lazy access to the main entry points.

    ``repro.harden_binary`` / ``repro.find_vulnerabilities`` work
    without importing the whole pipeline at package-import time.
    """
    if name in ("Target", "EngineConfig", "harden_binary",
                "find_vulnerabilities", "hardened_elf"):
        from repro import api
        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = ["__version__", "Target", "EngineConfig", "harden_binary",
           "find_vulnerabilities", "hardened_elf"]
