"""Serialize an :class:`~repro.binfmt.image.Executable` to ELF64 bytes."""

from __future__ import annotations

from repro.binfmt import elfdefs as d
from repro.binfmt.image import Executable


class _StrTab:
    """Builds a string table, returning offsets for each added name."""

    def __init__(self):
        self._data = bytearray(b"\x00")
        self._offsets: dict[str, int] = {"": 0}

    def add(self, name: str) -> int:
        if name not in self._offsets:
            self._offsets[name] = len(self._data)
            self._data += name.encode() + b"\x00"
        return self._offsets[name]

    def bytes(self) -> bytes:
        return bytes(self._data)


def write_elf(exe: Executable) -> bytes:
    """Produce a well-formed ELF64 image for ``exe``.

    One PT_LOAD segment per section; file offsets are congruent to
    virtual addresses modulo the page size, as the SysV ABI requires.
    PIE images (``exe.pie``) are written as ``ET_DYN`` with their
    dynamic symbol and relocation tables re-emitted; relocation
    offsets and RELATIVE addends are recomputed from their section
    anchors so entries stay correct when sections have moved.
    """
    sections = sorted(exe.sections, key=lambda s: s.addr)
    phnum = len(sections)

    # --- lay out file offsets -------------------------------------------
    pos = d.EHDR.size + d.PHDR.size * phnum
    offsets: dict[str, int] = {}
    for section in sections:
        congruent = section.addr % d.PAGE
        if pos % d.PAGE != congruent:
            pos += (congruent - pos) % d.PAGE
        offsets[section.name] = pos
        if not section.nobits:
            pos += len(section.data)

    shstrtab = _StrTab()
    strtab = _StrTab()

    # --- symbol table ----------------------------------------------------
    section_index = {s.name: i + 1 for i, s in enumerate(sections)}
    locals_, globals_ = [], []
    for sym in exe.symbols:
        (globals_ if sym.is_global else locals_).append(sym)
    sym_entries = [d.SYM.pack(0, 0, 0, 0, 0, 0)]
    for sym in locals_ + globals_:
        bind = d.STB_GLOBAL if sym.is_global else d.STB_LOCAL
        stype = d.STT_FUNC if sym.is_func else d.STT_NOTYPE
        shndx = section_index.get(sym.section, d.SHN_UNDEF)
        sym_entries.append(d.SYM.pack(
            strtab.add(sym.name), (bind << 4) | stype, 0, shndx,
            sym.value, 0))
    symtab_data = b"".join(sym_entries)
    first_global = 1 + len(locals_)

    strtab_data_offset = pos
    strtab_bytes = strtab.bytes()
    pos += len(strtab_bytes)
    symtab_offset = pos
    pos += len(symtab_data)

    # --- dynamic tables (PIE only) ----------------------------------------
    addr_of = {s.name: s.addr for s in sections}

    def anchored_addr(section_name, offset, fallback):
        base = addr_of.get(section_name)
        return fallback if base is None else base + offset

    dynstr = _StrTab()
    dynsym_entries = [d.SYM.pack(0, 0, 0, 0, 0, 0)]
    dynsym_index: dict[str, int] = {}
    dyn_first_global = 1
    rela_data = b""
    if exe.pie:
        dyn_locals = [s for s in exe.dynamic_symbols if not s.is_global]
        dyn_globals = [s for s in exe.dynamic_symbols if s.is_global]
        for sym in dyn_locals + dyn_globals:
            bind = d.STB_GLOBAL if sym.is_global else d.STB_LOCAL
            stype = d.STT_FUNC if sym.is_func else d.STT_NOTYPE
            shndx = section_index.get(sym.section, d.SHN_UNDEF)
            dynsym_index[sym.name] = len(dynsym_entries)
            dynsym_entries.append(d.SYM.pack(
                dynstr.add(sym.name), (bind << 4) | stype, 0, shndx,
                sym.value, 0))
        dyn_first_global = 1 + len(dyn_locals)
        rela_parts = []
        for reloc in exe.relocations:
            r_offset = anchored_addr(reloc.section, reloc.offset,
                                     reloc.offset)
            addend = reloc.addend
            if reloc.rtype == d.R_X86_64_RELATIVE and reloc.anchored:
                addend = anchored_addr(
                    reloc.target_section, reloc.target_offset, addend)
            symindex = dynsym_index.get(reloc.symbol, 0)
            rela_parts.append(d.RELA.pack(
                r_offset, d.rela_info(symindex, reloc.rtype), addend))
        rela_data = b"".join(rela_parts)
    dynstr_bytes = dynstr.bytes()
    dynsym_data = b"".join(dynsym_entries)

    dynstr_offset = pos
    dynsym_offset = rela_offset = 0
    if exe.pie:
        pos += len(dynstr_bytes)
        dynsym_offset = pos
        pos += len(dynsym_data)
        rela_offset = pos
        pos += len(rela_data)

    # --- section headers ---------------------------------------------------
    shdrs = [d.SHDR.pack(0, d.SHT_NULL, 0, 0, 0, 0, 0, 0, 0, 0)]
    for section in sections:
        sh_type = d.SHT_NOBITS if section.nobits else d.SHT_PROGBITS
        shdrs.append(d.SHDR.pack(
            shstrtab.add(section.name), sh_type,
            d.section_flags_to_shf(section.flags), section.addr,
            offsets[section.name], section.mem_size, 0, 0, 16, 0))
    strtab_index = len(sections) + 1
    shdrs.append(d.SHDR.pack(
        shstrtab.add(".strtab"), d.SHT_STRTAB, 0, 0,
        strtab_data_offset, len(strtab_bytes), 0, 0, 1, 0))
    shdrs.append(d.SHDR.pack(
        shstrtab.add(".symtab"), d.SHT_SYMTAB, 0, 0,
        symtab_offset, len(symtab_data), strtab_index, first_global,
        8, d.SYM.size))
    if exe.pie:
        dynstr_index = len(shdrs)
        shdrs.append(d.SHDR.pack(
            shstrtab.add(".dynstr"), d.SHT_STRTAB, 0, 0,
            dynstr_offset, len(dynstr_bytes), 0, 0, 1, 0))
        dynsym_shndx = len(shdrs)
        shdrs.append(d.SHDR.pack(
            shstrtab.add(".dynsym"), d.SHT_DYNSYM, 0, 0,
            dynsym_offset, len(dynsym_data), dynstr_index,
            dyn_first_global, 8, d.SYM.size))
        shdrs.append(d.SHDR.pack(
            shstrtab.add(".rela.dyn"), d.SHT_RELA, 0, 0,
            rela_offset, len(rela_data), dynsym_shndx, 0, 8,
            d.RELA.size))
    shstr_offset = pos
    shstr_name = shstrtab.add(".shstrtab")
    shstr_bytes = shstrtab.bytes()
    pos += len(shstr_bytes)
    shdrs.append(d.SHDR.pack(
        shstr_name, d.SHT_STRTAB, 0, 0, shstr_offset,
        len(shstr_bytes), 0, 0, 1, 0))

    shoff = pos
    shnum = len(shdrs)
    shstrndx = shnum - 1

    # --- ELF header and program headers -----------------------------------
    ident = d.ELF_MAGIC + bytes([d.ELFCLASS64, d.ELFDATA2LSB,
                                 d.EV_CURRENT]) + bytes(9)
    e_type = d.ET_DYN if exe.pie else d.ET_EXEC
    ehdr = d.EHDR.pack(
        ident, e_type, d.EM_X86_64, d.EV_CURRENT, exe.entry,
        d.EHDR.size, shoff, 0, d.EHDR.size, d.PHDR.size, phnum,
        d.SHDR.size, shnum, shstrndx)
    phdrs = b"".join(
        d.PHDR.pack(
            d.PT_LOAD, d.section_flags_to_pf(section.flags),
            offsets[section.name], section.addr, section.addr,
            0 if section.nobits else len(section.data),
            section.mem_size, d.PAGE)
        for section in sections)

    # --- assemble the file --------------------------------------------------
    blob = bytearray(ehdr + phdrs)
    for section in sections:
        if section.nobits:
            continue
        offset = offsets[section.name]
        if len(blob) < offset:
            blob += bytes(offset - len(blob))
        blob[offset:offset + len(section.data)] = section.data
    if len(blob) < strtab_data_offset:
        # NOBITS congruence adjustment may leave a gap before metadata
        blob += bytes(strtab_data_offset - len(blob))
    blob += strtab_bytes
    blob += symtab_data
    if exe.pie:
        blob += dynstr_bytes
        blob += dynsym_data
        blob += rela_data
    blob += shstr_bytes
    assert len(blob) == shoff
    blob += b"".join(shdrs)
    return bytes(blob)
