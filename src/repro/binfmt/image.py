"""In-memory model of a linked executable."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional


@dataclass
class Section:
    """A loadable section.

    ``data`` holds file content; for NOBITS (``.bss``) sections ``data``
    is empty and ``mem_size`` carries the zero-initialized extent.
    """

    name: str
    addr: int
    data: bytes = b""
    mem_size: Optional[int] = None
    flags: str = "r"  # subset of "rwx"
    nobits: bool = False

    def __post_init__(self):
        if self.mem_size is None:
            self.mem_size = len(self.data)

    @property
    def end(self) -> int:
        return self.addr + self.mem_size

    @property
    def executable(self) -> bool:
        return "x" in self.flags

    @property
    def writable(self) -> bool:
        return "w" in self.flags

    def contains(self, address: int) -> bool:
        return self.addr <= address < self.end


@dataclass
class SymbolDef:
    """A linked symbol (label) with its resolved address."""

    name: str
    value: int
    section: str
    is_global: bool = False
    is_func: bool = False


@dataclass
class Executable:
    """A linked executable image: sections + symbols + entry point."""

    entry: int
    sections: list[Section] = field(default_factory=list)
    symbols: list[SymbolDef] = field(default_factory=list)

    def section(self, name: str) -> Section:
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(f"no section named {name!r}")

    def has_section(self, name: str) -> bool:
        return any(s.name == name for s in self.sections)

    def section_at(self, address: int) -> Optional[Section]:
        for section in self.sections:
            if section.contains(address):
                return section
        return None

    def symbol(self, name: str) -> SymbolDef:
        for sym in self.symbols:
            if sym.name == name:
                return sym
        raise KeyError(f"no symbol named {name!r}")

    def symbols_in(self, section_name: str) -> Iterable[SymbolDef]:
        return [s for s in self.symbols if s.section == section_name]

    def address_ranges(self) -> list[tuple[int, int]]:
        """Sorted (start, end) ranges of all loadable sections."""
        return sorted((s.addr, s.end) for s in self.sections)

    def in_loaded_range(self, address: int) -> bool:
        return self.section_at(address) is not None

    def stripped(self) -> "Executable":
        """Copy without any symbols (exercises symbol-free recovery)."""
        return Executable(self.entry, list(self.sections), [])

    def read(self, address: int, size: int) -> bytes:
        """Read bytes from the image at a virtual address."""
        section = self.section_at(address)
        if section is None:
            raise KeyError(f"address {address:#x} not in any section")
        offset = address - section.addr
        if section.nobits:
            return bytes(size)
        chunk = section.data[offset:offset + size]
        if len(chunk) < size:
            chunk += bytes(size - len(chunk))
        return chunk

    def code_size(self) -> int:
        """Total size of executable sections (the paper's overhead metric)."""
        return sum(s.mem_size for s in self.sections if s.executable)

    def with_entry(self, entry: int) -> "Executable":
        return replace(self, entry=entry)
