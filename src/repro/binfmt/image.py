"""In-memory model of a linked executable."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional


@dataclass
class Section:
    """A loadable section.

    ``data`` holds file content; for NOBITS (``.bss``) sections ``data``
    is empty and ``mem_size`` carries the zero-initialized extent.
    """

    name: str
    addr: int
    data: bytes = b""
    mem_size: Optional[int] = None
    flags: str = "r"  # subset of "rwx"
    nobits: bool = False

    def __post_init__(self):
        if self.mem_size is None:
            self.mem_size = len(self.data)

    @property
    def end(self) -> int:
        return self.addr + self.mem_size

    @property
    def executable(self) -> bool:
        return "x" in self.flags

    @property
    def writable(self) -> bool:
        return "w" in self.flags

    def contains(self, address: int) -> bool:
        return self.addr <= address < self.end


@dataclass
class SymbolDef:
    """A linked symbol (label) with its resolved address."""

    name: str
    value: int
    section: str
    is_global: bool = False
    is_func: bool = False


@dataclass
class Relocation:
    """A dynamic relocation, anchored to sections on both sides.

    ``section``/``offset`` locate the patched word (``r_offset`` is
    recomputed from the section's final address at write time).  For
    ``R_X86_64_RELATIVE`` the addend is a virtual address inside the
    image; ``target_section``/``target_offset`` anchor it so the writer
    can re-derive the addend after sections move.  When no anchor could
    be established the raw ``addend`` is preserved as-is.
    """

    section: str
    offset: int
    rtype: int
    symbol: str = ""
    addend: int = 0
    target_section: str = ""
    target_offset: int = 0

    @property
    def anchored(self) -> bool:
        return bool(self.target_section)


@dataclass
class Executable:
    """A linked executable image: sections + symbols + entry point.

    Position-independent (``ET_DYN``) images carry ``pie=True`` plus
    their dynamic symbols and relocations; addresses stay absolute
    (the bundled loader maps PIEs at bias 0), so all consumers can
    treat both flavours uniformly.
    """

    entry: int
    sections: list[Section] = field(default_factory=list)
    symbols: list[SymbolDef] = field(default_factory=list)
    pie: bool = False
    relocations: list[Relocation] = field(default_factory=list)
    dynamic_symbols: list[SymbolDef] = field(default_factory=list)

    def section(self, name: str) -> Section:
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(f"no section named {name!r}")

    def has_section(self, name: str) -> bool:
        return any(s.name == name for s in self.sections)

    def section_at(self, address: int) -> Optional[Section]:
        for section in self.sections:
            if section.contains(address):
                return section
        return None

    def symbol(self, name: str) -> SymbolDef:
        for sym in self.symbols:
            if sym.name == name:
                return sym
        raise KeyError(f"no symbol named {name!r}")

    def symbols_in(self, section_name: str) -> Iterable[SymbolDef]:
        return [s for s in self.symbols if s.section == section_name]

    def recovery_symbols(self) -> list[SymbolDef]:
        """Static symbols plus dynamic ones not shadowing a static name.

        Code recovery treats both tables as boundary/naming ground
        truth; on stripped PIEs the dynamic table is all that is left.
        """
        merged = list(self.symbols)
        seen = {(s.name, s.value) for s in merged}
        for sym in self.dynamic_symbols:
            if (sym.name, sym.value) not in seen:
                merged.append(sym)
                seen.add((sym.name, sym.value))
        return merged

    def address_ranges(self) -> list[tuple[int, int]]:
        """Sorted (start, end) ranges of all loadable sections."""
        return sorted((s.addr, s.end) for s in self.sections)

    def in_loaded_range(self, address: int) -> bool:
        return self.section_at(address) is not None

    def stripped(self) -> "Executable":
        """Copy without static symbols (exercises symbol-free recovery).

        Like ``strip(1)``, the dynamic table survives — it is part of
        the loadable image, not debug metadata.
        """
        return replace(self, symbols=[], sections=list(self.sections),
                       relocations=list(self.relocations),
                       dynamic_symbols=list(self.dynamic_symbols))

    def read(self, address: int, size: int) -> bytes:
        """Read bytes from the image at a virtual address."""
        section = self.section_at(address)
        if section is None:
            raise KeyError(f"address {address:#x} not in any section")
        offset = address - section.addr
        if section.nobits:
            return bytes(size)
        chunk = section.data[offset:offset + size]
        if len(chunk) < size:
            chunk += bytes(size - len(chunk))
        return chunk

    def code_size(self) -> int:
        """Total size of executable sections (the paper's overhead metric)."""
        return sum(s.mem_size for s in self.sections if s.executable)

    def with_entry(self, entry: int) -> "Executable":
        return replace(self, entry=entry)
