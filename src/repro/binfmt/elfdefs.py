"""ELF64 constants and struct layouts (little-endian, x86-64)."""

import struct

ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1
EV_CURRENT = 1

ET_EXEC = 2
ET_DYN = 3
EM_X86_64 = 62

PT_LOAD = 1
PF_X = 1
PF_W = 2
PF_R = 4

SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_RELA = 4
SHT_NOBITS = 8
SHT_DYNSYM = 11

R_X86_64_NONE = 0
R_X86_64_64 = 1
R_X86_64_RELATIVE = 8

SHF_WRITE = 1
SHF_ALLOC = 2
SHF_EXECINSTR = 4

STB_LOCAL = 0
STB_GLOBAL = 1
STT_NOTYPE = 0
STT_FUNC = 2
STT_OBJECT = 1

SHN_UNDEF = 0

PAGE = 0x1000

EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
PHDR = struct.Struct("<IIQQQQQQ")
SHDR = struct.Struct("<IIQQQQIIQQ")
SYM = struct.Struct("<IBBHQQ")
RELA = struct.Struct("<QQq")


def rela_info(symindex: int, rtype: int) -> int:
    return (symindex << 32) | rtype


def rela_sym(r_info: int) -> int:
    return r_info >> 32


def rela_type(r_info: int) -> int:
    return r_info & 0xFFFFFFFF


def section_flags_to_shf(flags: str) -> int:
    value = SHF_ALLOC
    if "w" in flags:
        value |= SHF_WRITE
    if "x" in flags:
        value |= SHF_EXECINSTR
    return value


def section_flags_to_pf(flags: str) -> int:
    value = PF_R
    if "w" in flags:
        value |= PF_W
    if "x" in flags:
        value |= PF_X
    return value


def shf_to_section_flags(shf: int) -> str:
    flags = "r"
    if shf & SHF_WRITE:
        flags += "w"
    if shf & SHF_EXECINSTR:
        flags += "x"
    return flags
