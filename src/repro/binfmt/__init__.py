"""ELF64 subset: executable image model, writer and reader.

Substitutes for the system toolchain's object format.  The writer emits
genuinely well-formed little-endian ELF64 executables (program headers,
section headers, symbol table), and the reader parses them back; the
emulator, disassembler and rewriter all exchange
:class:`~repro.binfmt.image.Executable` objects or raw ELF bytes.
"""

from repro.binfmt.image import Executable, Relocation, Section, SymbolDef
from repro.binfmt.writer import write_elf
from repro.binfmt.reader import read_elf

__all__ = ["Executable", "Relocation", "Section", "SymbolDef",
           "write_elf", "read_elf"]
