"""Parse ELF64 bytes back into an :class:`~repro.binfmt.image.Executable`."""

from __future__ import annotations

from repro.binfmt import elfdefs as d
from repro.binfmt.image import Executable, Section, SymbolDef
from repro.errors import ElfError


def _cstr(blob: bytes, offset: int) -> str:
    end = blob.index(b"\x00", offset)
    return blob[offset:end].decode()


def read_elf(blob: bytes) -> Executable:
    """Parse an ELF64 executable produced by :func:`write_elf` (or
    compatible enough: little-endian EXEC for x86-64 with section
    headers)."""
    if blob[:4] != d.ELF_MAGIC:
        raise ElfError("bad ELF magic")
    if blob[4] != d.ELFCLASS64 or blob[5] != d.ELFDATA2LSB:
        raise ElfError("only little-endian ELF64 is supported")
    fields = d.EHDR.unpack_from(blob, 0)
    (_, e_type, e_machine, _, e_entry, _, e_shoff, _, _, _, _,
     e_shentsize, e_shnum, e_shstrndx) = fields
    if e_machine != d.EM_X86_64:
        raise ElfError(f"unsupported machine {e_machine}")
    if e_shnum == 0:
        raise ElfError("missing section headers")

    shdrs = [
        d.SHDR.unpack_from(blob, e_shoff + i * e_shentsize)
        for i in range(e_shnum)
    ]
    shstr_off = shdrs[e_shstrndx][4]

    sections: list[Section] = []
    index_to_name: dict[int, str] = {}
    symtab = None
    strtab_off = None
    for index, sh in enumerate(shdrs):
        (sh_name, sh_type, sh_flags, sh_addr, sh_offset, sh_size,
         sh_link, _, _, sh_entsize) = sh
        name = _cstr(blob, shstr_off + sh_name)
        index_to_name[index] = name
        if sh_type == d.SHT_SYMTAB:
            symtab = (sh_offset, sh_size, sh_entsize)
            strtab_off = shdrs[sh_link][4]
        if not sh_flags & d.SHF_ALLOC:
            continue
        nobits = sh_type == d.SHT_NOBITS
        data = b"" if nobits else blob[sh_offset:sh_offset + sh_size]
        sections.append(Section(
            name=name,
            addr=sh_addr,
            data=data,
            mem_size=sh_size,
            flags=d.shf_to_section_flags(sh_flags),
            nobits=nobits,
        ))

    symbols: list[SymbolDef] = []
    if symtab is not None:
        offset, size, entsize = symtab
        count = size // entsize
        for i in range(1, count):
            st_name, st_info, _, st_shndx, st_value, _ = d.SYM.unpack_from(
                blob, offset + i * entsize)
            name = _cstr(blob, strtab_off + st_name)
            if not name:
                continue
            symbols.append(SymbolDef(
                name=name,
                value=st_value,
                section=index_to_name.get(st_shndx, ""),
                is_global=(st_info >> 4) == d.STB_GLOBAL,
                is_func=(st_info & 0xF) == d.STT_FUNC,
            ))

    return Executable(entry=e_entry, sections=sections, symbols=symbols)
