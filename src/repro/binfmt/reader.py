"""Parse ELF64 bytes back into an :class:`~repro.binfmt.image.Executable`."""

from __future__ import annotations

from repro.binfmt import elfdefs as d
from repro.binfmt.image import Executable, Relocation, Section, SymbolDef
from repro.errors import ElfError, UnsupportedBinaryError


def _cstr(blob: bytes, offset: int) -> str:
    end = blob.index(b"\x00", offset)
    return blob[offset:end].decode()


def read_elf(blob: bytes) -> Executable:
    """Parse an ELF64 executable produced by :func:`write_elf` (or
    compatible enough: little-endian EXEC or DYN for x86-64 with
    section headers)."""
    if blob[:4] != d.ELF_MAGIC:
        raise ElfError("bad ELF magic")
    if blob[4] != d.ELFCLASS64 or blob[5] != d.ELFDATA2LSB:
        raise ElfError("only little-endian ELF64 is supported")
    fields = d.EHDR.unpack_from(blob, 0)
    (_, e_type, e_machine, _, e_entry, _, e_shoff, _, _, _, _,
     e_shentsize, e_shnum, e_shstrndx) = fields
    if e_machine != d.EM_X86_64:
        raise UnsupportedBinaryError(
            f"unsupported machine {e_machine} (only x86-64)",
            e_machine=e_machine)
    if e_type not in (d.ET_EXEC, d.ET_DYN):
        raise UnsupportedBinaryError(
            f"unsupported ELF type {e_type} "
            "(only ET_EXEC and ET_DYN executables)",
            e_type=e_type)
    if e_shnum == 0:
        raise ElfError("missing section headers")

    shdrs = [
        d.SHDR.unpack_from(blob, e_shoff + i * e_shentsize)
        for i in range(e_shnum)
    ]
    shstr_off = shdrs[e_shstrndx][4]

    sections: list[Section] = []
    index_to_name: dict[int, str] = {}
    symtab = None
    strtab_off = None
    dynsym = None
    dynstr_off = None
    rela_tables: list[tuple[int, int, int]] = []
    for index, sh in enumerate(shdrs):
        (sh_name, sh_type, sh_flags, sh_addr, sh_offset, sh_size,
         sh_link, _, _, sh_entsize) = sh
        name = _cstr(blob, shstr_off + sh_name)
        index_to_name[index] = name
        if sh_type == d.SHT_SYMTAB:
            symtab = (sh_offset, sh_size, sh_entsize)
            strtab_off = shdrs[sh_link][4]
        elif sh_type == d.SHT_DYNSYM:
            dynsym = (sh_offset, sh_size, sh_entsize)
            dynstr_off = shdrs[sh_link][4]
        elif sh_type == d.SHT_RELA:
            rela_tables.append((sh_offset, sh_size,
                                sh_entsize or d.RELA.size))
        if not sh_flags & d.SHF_ALLOC:
            continue
        nobits = sh_type == d.SHT_NOBITS
        data = b"" if nobits else blob[sh_offset:sh_offset + sh_size]
        sections.append(Section(
            name=name,
            addr=sh_addr,
            data=data,
            mem_size=sh_size,
            flags=d.shf_to_section_flags(sh_flags),
            nobits=nobits,
        ))

    def parse_symbols(table, str_off):
        offset, size, entsize = table
        result: list[SymbolDef] = []
        count = size // entsize
        for i in range(1, count):
            st_name, st_info, _, st_shndx, st_value, _ = d.SYM.unpack_from(
                blob, offset + i * entsize)
            name = _cstr(blob, str_off + st_name)
            if not name:
                continue
            result.append(SymbolDef(
                name=name,
                value=st_value,
                section=index_to_name.get(st_shndx, ""),
                is_global=(st_info >> 4) == d.STB_GLOBAL,
                is_func=(st_info & 0xF) == d.STT_FUNC,
            ))
        return result

    symbols = parse_symbols(symtab, strtab_off) if symtab else []
    dynamic_symbols = parse_symbols(dynsym, dynstr_off) if dynsym else []

    def section_anchor(address: int) -> tuple[str, int]:
        for section in sections:
            if section.contains(address):
                return section.name, address - section.addr
        return "", address

    # Positional name list (keeps empty entries) for r_info sym indices.
    dynsym_names = [""]
    if dynsym:
        offset, size, entsize = dynsym
        for i in range(1, size // entsize):
            st_name = d.SYM.unpack_from(blob, offset + i * entsize)[0]
            dynsym_names.append(_cstr(blob, dynstr_off + st_name))

    relocations: list[Relocation] = []
    for offset, size, entsize in rela_tables:
        for i in range(size // entsize):
            r_offset, r_info, r_addend = d.RELA.unpack_from(
                blob, offset + i * entsize)
            rtype = d.rela_type(r_info)
            symindex = d.rela_sym(r_info)
            symbol = ""
            if 0 < symindex < len(dynsym_names):
                symbol = dynsym_names[symindex]
            site_section, site_offset = section_anchor(r_offset)
            target_section, target_offset = "", 0
            if rtype == d.R_X86_64_RELATIVE:
                target_section, target_offset = section_anchor(r_addend)
            relocations.append(Relocation(
                section=site_section,
                offset=site_offset if site_section else r_offset,
                rtype=rtype,
                symbol=symbol,
                addend=r_addend,
                target_section=target_section,
                target_offset=target_offset,
            ))

    return Executable(
        entry=e_entry,
        sections=sections,
        symbols=symbols,
        pie=e_type == d.ET_DYN,
        relocations=relocations,
        dynamic_symbols=dynamic_symbols,
    )
