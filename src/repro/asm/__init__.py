"""Two-pass Intel-syntax assembler and static linker.

Substitutes for GNU as/ld in the paper's toolchain.  The same assembler
consumes hand-written workload sources, the GTIRB pretty-printer's
reassembleable output, and the backend's lowered code, so every pipeline
in the reproduction exits through one code path.
"""

from repro.asm.assembler import assemble, assemble_to_elf, assemble_with_map
from repro.asm.parser import parse_source

__all__ = ["assemble", "assemble_to_elf", "assemble_with_map",
           "parse_source"]
