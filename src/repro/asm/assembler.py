"""Two-pass assembler and static linker.

Pass 1 lays out every section item at a stable offset (symbolic operands
always take their canonical wide encodings, so lengths never change
between passes).  Pass 2 resolves symbols against the final section
addresses and encodes instructions and data relocations.

Section placement mirrors a classic static link: ``.text`` at
``0x401000``, the remaining sections on consecutive page boundaries,
``.bss`` last as NOBITS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.parser import parse_source
from repro.asm.source import (
    AlignStmt, DataStmt, InsnStmt, LabelDef, Program, SpaceStmt)
from repro.binfmt import elfdefs
from repro.binfmt.image import Executable, Relocation, Section, SymbolDef
from repro.binfmt.writer import write_elf
from repro.errors import AsmError, LinkError
from repro.isa.encoder import encode, encoded_length
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm, Label, Mem
from repro.isa.registers import RIP

PAGE = 0x1000
TEXT_BASE = 0x401000

_SECTION_FLAGS = {
    ".text": "rx",
    ".rodata": "r",
    ".data": "rw",
    ".bss": "rw",
}
_SECTION_ORDER = [".text", ".rodata", ".data", ".bss"]


@dataclass
class _Fixup:
    """A pending data relocation inside a section blob."""

    section: str
    offset: int
    symbol: str
    addend: int
    size: int


def _section_rank(name: str) -> tuple[int, str]:
    try:
        return _SECTION_ORDER.index(name), name
    except ValueError:
        return len(_SECTION_ORDER) - 1, name  # unknown sections before .bss


def assemble(source: str | Program, pie: bool = False) -> Executable:
    """Assemble and link ``source`` into an executable image."""
    exe, _ = assemble_with_map(source, pie=pie)
    return exe


def assemble_with_map(source: str | Program, pie: bool = False):
    """Assemble and also return ``{InsnStmt.tag: final_address}``.

    The rewriting loop uses the map to translate fault addresses in the
    freshly linked binary back to the GTIRB entries that produced them.

    With ``pie=True`` the image is marked position-independent: every
    pointer-sized data word that resolves through a symbol becomes an
    ``R_X86_64_RELATIVE`` relocation (both sides section-anchored), and
    global symbols are exported through the dynamic symbol table — the
    writer then emits an ``ET_DYN`` image.
    """
    program = parse_source(source) if isinstance(source, str) else source

    ordered = sorted(program.sections, key=_section_rank)
    if ".bss" in ordered:
        ordered.remove(".bss")
        ordered.append(".bss")

    # ---- pass 1: offsets within each section ---------------------------
    offsets: dict[str, dict[int, int]] = {}
    sizes: dict[str, int] = {}
    symbols: dict[str, tuple[str, int]] = {}  # name -> (section, offset)
    for name in ordered:
        position = 0
        table: dict[int, int] = {}
        for index, item in enumerate(program.items(name)):
            if isinstance(item, AlignStmt):
                remainder = position % item.alignment
                if remainder:
                    position += item.alignment - remainder
            table[index] = position
            if isinstance(item, LabelDef):
                if item.name in symbols:
                    raise AsmError(
                        f"line {item.line}: duplicate label {item.name!r}")
                symbols[item.name] = (name, position)
            elif isinstance(item, InsnStmt):
                position += encoded_length(item.insn)
            elif isinstance(item, DataStmt):
                position += item.size()
            elif isinstance(item, SpaceStmt):
                position += item.size
        offsets[name] = table
        sizes[name] = position

    # ---- section address assignment -------------------------------------
    addresses: dict[str, int] = {}
    cursor = program.text_base
    for name in ordered:
        pinned = program.section_addresses.get(name)
        if pinned is not None:
            addresses[name] = pinned
            continue
        addresses[name] = cursor
        cursor = (cursor + max(sizes[name], 1) + PAGE - 1) // PAGE * PAGE
    for name, addr in addresses.items():
        for other, other_addr in addresses.items():
            if name < other and sizes[name] and sizes[other]:
                if addr < other_addr + sizes[other] and \
                        other_addr < addr + sizes[name]:
                    raise LinkError(
                        f"sections {name} and {other} overlap "
                        f"({addr:#x}/{sizes[name]}B vs "
                        f"{other_addr:#x}/{sizes[other]}B)")

    symbol_addr = {
        sym: addresses[section] + offset
        for sym, (section, offset) in symbols.items()
    }

    def resolve(label: Label, line: int) -> int:
        if label.name in symbol_addr:
            return symbol_addr[label.name] + label.addend
        if label.name in program.constants:
            # .equ defined after use parses as a symbol; treat as const
            return program.constants[label.name] + label.addend
        raise LinkError(f"line {line}: undefined symbol {label.name!r}")

    # ---- pass 2: encode ----------------------------------------------------
    sections: list[Section] = []
    relocations: list[Relocation] = []
    for name in ordered:
        if sizes[name] == 0:
            continue  # nothing emitted into this section
        blob = bytearray()
        base = addresses[name]
        is_text = _SECTION_FLAGS.get(name, "rw") == "rx" or name == ".text"
        nobits_only = True
        for index, item in enumerate(program.items(name)):
            expected = offsets[name][index]
            if len(blob) < expected:
                filler = b"\x90" if is_text else b"\x00"
                blob += filler * (expected - len(blob))
            if isinstance(item, InsnStmt):
                nobits_only = False
                address = base + expected
                resolved = _resolve_insn(item.insn, address, resolve,
                                         item.line)
                code = encode(resolved)
                if len(code) != encoded_length(item.insn):
                    raise LinkError(
                        f"line {item.line}: unstable encoding for "
                        f"'{item.insn}'")
                blob += code
            elif isinstance(item, DataStmt):
                nobits_only = False
                for part in item.parts:
                    if isinstance(part, bytes):
                        blob += part
                    else:
                        sym, addend, size = part
                        value = resolve(Label(sym, addend), item.line)
                        if pie and size == 8 and sym in symbols:
                            target_section, target_off = symbols[sym]
                            relocations.append(Relocation(
                                section=name,
                                offset=len(blob),
                                rtype=elfdefs.R_X86_64_RELATIVE,
                                addend=value,
                                target_section=target_section,
                                target_offset=target_off + addend,
                            ))
                        blob += (value % (1 << (size * 8))).to_bytes(
                            size, "little")
            elif isinstance(item, SpaceStmt):
                blob += bytes(item.size)
        mem_size = max(sizes[name], len(blob))
        nobits = name == ".bss" and nobits_only
        sections.append(Section(
            name=name,
            addr=base,
            data=b"" if nobits else bytes(blob),
            mem_size=mem_size,
            flags=_SECTION_FLAGS.get(name, "rw"),
            nobits=nobits,
        ))

    # ---- symbols and entry -------------------------------------------------
    symdefs = []
    for sym, (section, offset) in symbols.items():
        if sym.startswith("."):
            continue  # local labels stay out of the symbol table
        symdefs.append(SymbolDef(
            name=sym,
            value=symbol_addr[sym],
            section=section,
            is_global=sym in program.globals,
            is_func=section == ".text" and sym in program.globals,
        ))
    if program.entry not in symbol_addr:
        raise LinkError(f"undefined entry point {program.entry!r}")
    exe = Executable(
        entry=symbol_addr[program.entry],
        sections=sections,
        symbols=symdefs,
        pie=pie,
        relocations=relocations,
        dynamic_symbols=[s for s in symdefs if s.is_global] if pie else [],
    )
    tag_map = {}
    for name in ordered:
        base = addresses[name]
        for index, item in enumerate(program.items(name)):
            if isinstance(item, InsnStmt) and item.tag is not None:
                tag_map[item.tag] = base + offsets[name][index]
    return exe, tag_map


def _resolve_insn(instruction: Instruction, address: int, resolve,
                  line: int) -> Instruction:
    """Replace Label operands with concrete displacements/addresses."""
    length = encoded_length(instruction)
    end = address + length
    new_ops = []
    for op in instruction.operands:
        if isinstance(op, Label):
            target = resolve(op, line)
            if instruction.mnemonic in (Mnemonic.JMP, Mnemonic.JCC,
                                        Mnemonic.CALL):
                new_ops.append(Imm(target - end, 4))
            elif instruction.mnemonic is Mnemonic.MOV:
                new_ops.append(Imm(target, 8))  # movabs materialization
            else:
                new_ops.append(Imm(target, 4))  # imm32 address reference
        elif isinstance(op, Mem) and isinstance(op.disp, Label):
            target = resolve(op.disp, line)
            if op.is_rip_relative:
                new_ops.append(Mem(RIP, None, 1, target - end, op.size))
            else:
                new_ops.append(Mem(None, op.index, op.scale, target,
                                   op.size))
        else:
            new_ops.append(op)
    return instruction.with_operands(*new_ops)


def assemble_to_elf(source: str | Program, pie: bool = False) -> bytes:
    """Assemble ``source`` and serialize the result to ELF bytes."""
    return write_elf(assemble(source, pie=pie))
