"""Parsed representation of an assembly source file."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.isa.insn import Instruction


@dataclass
class LabelDef:
    """``name:`` — defines a symbol at the current location."""

    name: str
    line: int = 0


@dataclass
class InsnStmt:
    """One instruction, possibly with unresolved Label operands.

    ``tag`` is an opaque provenance handle (the GTIRB rewriting loop
    stores the originating ``InsnEntry`` here so the assembler can
    report the final address of every instruction it owns).
    """

    insn: Instruction
    line: int = 0
    tag: object = None


@dataclass
class DataStmt:
    """Emitted data: raw byte chunks interleaved with symbol references.

    ``parts`` items are either ``bytes`` or ``(symbol_name, addend,
    size)`` tuples resolved at link time (ABS relocations).
    """

    parts: list[Union[bytes, tuple[str, int, int]]] = field(
        default_factory=list)
    line: int = 0

    def size(self) -> int:
        total = 0
        for part in self.parts:
            total += len(part) if isinstance(part, bytes) else part[2]
        return total


@dataclass
class AlignStmt:
    """``.align N`` — pad to an N-byte boundary."""

    alignment: int
    line: int = 0


@dataclass
class SpaceStmt:
    """``.zero N`` / ``.space N`` — N zero bytes (extends bss extent)."""

    size: int
    line: int = 0


SectionItem = Union[LabelDef, InsnStmt, DataStmt, AlignStmt, SpaceStmt]


@dataclass
class Program:
    """A parsed assembly translation unit.

    ``text_base`` and ``section_addresses`` let a client pin the layout:
    the lowering backend keeps the guest's data sections at their
    original virtual addresses (lifted code references them as absolute
    constants) while relocating the regenerated code elsewhere.
    """

    sections: dict[str, list[SectionItem]] = field(default_factory=dict)
    globals: set[str] = field(default_factory=set)
    constants: dict[str, int] = field(default_factory=dict)
    entry: str = "_start"
    text_base: int = 0x401000
    section_addresses: dict[str, int] = field(default_factory=dict)

    def items(self, section: str) -> list[SectionItem]:
        return self.sections.setdefault(section, [])
