"""Intel-syntax assembly parser.

Dialect summary::

    .section .text            # or .text / .data / .rodata / .bss
    .global _start
    .equ LEN, 4*2+1           # constant expressions over literals/equs
    _start:                   # label ('.'-prefixed labels stay local)
        mov rax, 0
        lea rsi, [rel buf]    # RIP-relative symbol reference
        mov rdx, LEN
        cmp byte ptr [rsi+1], 'A'
        je .done
        mov rbx, offset buf   # absolute address materialization
    .done:
        ret
    .section .data
    buf:  .zero 16
    msg:  .asciz "hi"
    tab:  .quad _start, msg   # pointer table (ABS64 references)
    num:  .long 7
          .byte 1, 2, 3
          .align 8

Comments start with ``#`` or ``;``.
"""

from __future__ import annotations

import re

from repro.errors import AsmError
from repro.isa.cond import cond_from_suffix
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import RIP, is_register_name, reg
from repro.asm.source import (
    AlignStmt, DataStmt, InsnStmt, LabelDef, Program, SpaceStmt)

_LABEL_RE = re.compile(r"^([.\w$@]+):\s*(.*)$")
_NAME_RE = re.compile(r"^[.\w$@]+$")
_SIZE_KEYWORDS = {"byte": 1, "word": 2, "dword": 4, "qword": 8}

_COND_MNEMONICS = {}
for _suffix in ("o no b ae e ne be a s ns p np l ge le g z nz c nc na nbe "
                "nae nb pe po nge nl ng nle").split():
    _COND_MNEMONICS["j" + _suffix] = (Mnemonic.JCC, _suffix)
    _COND_MNEMONICS["set" + _suffix] = (Mnemonic.SETCC, _suffix)
    _COND_MNEMONICS["cmov" + _suffix] = (Mnemonic.CMOVCC, _suffix)

_PLAIN_MNEMONICS = {m.value: m for m in Mnemonic
                    if m not in (Mnemonic.JCC, Mnemonic.SETCC,
                                 Mnemonic.CMOVCC)}


def _strip_comment(line: str) -> str:
    out = []
    in_str = False
    for ch in line:
        if ch == '"':
            in_str = not in_str
        if not in_str and ch in "#;":
            break
        out.append(ch)
    return "".join(out).strip()


def _split_operands(text: str) -> list[str]:
    """Split on commas not inside brackets/quotes."""
    parts, depth, in_str, current = [], 0, False, []
    for ch in text:
        if ch == '"':
            in_str = not in_str
        if not in_str:
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append("".join(current).strip())
                current = []
                continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _ExprEval:
    """Tiny constant-expression evaluator (+ - * parentheses, equs)."""

    def __init__(self, constants: dict[str, int]):
        self.constants = constants

    def eval(self, text: str, line: int) -> int:
        tokens = re.findall(r"0x[0-9a-fA-F]+|\d+|'(?:\\.|[^'])'|[\w.$@]+"
                            r"|[()+\-*]", text)
        if not tokens or "".join(tokens).replace(" ", "") != \
                text.replace(" ", ""):
            raise AsmError(f"line {line}: bad constant expression {text!r}")
        self._tokens = tokens
        self._pos = 0
        self._line = line
        value = self._expr()
        if self._pos != len(self._tokens):
            raise AsmError(f"line {line}: trailing junk in {text!r}")
        return value

    def _expr(self) -> int:
        value = self._term()
        while self._peek() in ("+", "-"):
            op = self._next()
            rhs = self._term()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _term(self) -> int:
        value = self._atom()
        while self._peek() == "*":
            self._next()
            value *= self._atom()
        return value

    def _atom(self) -> int:
        token = self._next()
        if token == "(":
            value = self._expr()
            if self._next() != ")":
                raise AsmError(f"line {self._line}: missing ')'")
            return value
        if token == "-":
            return -self._atom()
        if token.startswith("0x"):
            return int(token, 16)
        if token.isdigit():
            return int(token)
        if token.startswith("'"):
            body = token[1:-1]
            return ord(body.encode().decode("unicode_escape"))
        if token in self.constants:
            return self.constants[token]
        raise AsmError(f"line {self._line}: unknown constant {token!r}")

    def _peek(self):
        return (self._tokens[self._pos]
                if self._pos < len(self._tokens) else None)

    def _next(self):
        token = self._peek()
        if token is None:
            raise AsmError(f"line {self._line}: unexpected end of expression")
        self._pos += 1
        return token


class Parser:
    """Parses one translation unit into a :class:`Program`."""

    def __init__(self):
        self.program = Program()
        self.section = ".text"
        self.evaluator = _ExprEval(self.program.constants)

    def parse(self, text: str) -> Program:
        for lineno, raw_line in enumerate(text.splitlines(), start=1):
            line = _strip_comment(raw_line)
            if not line:
                continue
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                self._emit(LabelDef(match.group(1), lineno))
                line = match.group(2).strip()
            if not line:
                continue
            if line.startswith("."):
                directive_handled = self._directive(line, lineno)
                if directive_handled:
                    continue
            self._instruction(line, lineno)
        return self.program

    # ------------------------------------------------------------------

    def _emit(self, item):
        self.program.items(self.section).append(item)

    def _directive(self, line: str, lineno: int) -> bool:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".section":
            self.section = rest.split()[0]
            self.program.items(self.section)
            return True
        if name in (".text", ".data", ".rodata", ".bss"):
            self.section = name
            self.program.items(self.section)
            return True
        if name in (".global", ".globl"):
            self.program.globals.add(rest.strip())
            return True
        if name == ".entry":
            self.program.entry = rest.strip()
            return True
        if name in (".equ", ".set"):
            const_name, _, expr = rest.partition(",")
            self.program.constants[const_name.strip()] = \
                self.evaluator.eval(expr.strip(), lineno)
            return True
        if name == ".align":
            self._emit(AlignStmt(self.evaluator.eval(rest, lineno), lineno))
            return True
        if name in (".zero", ".space", ".skip"):
            self._emit(SpaceStmt(self.evaluator.eval(rest, lineno), lineno))
            return True
        if name in (".byte", ".word", ".long", ".quad"):
            size = {".byte": 1, ".word": 2, ".long": 4, ".quad": 8}[name]
            self._emit(self._data_values(rest, size, lineno))
            return True
        if name in (".ascii", ".asciz", ".string"):
            data = self._parse_string(rest, lineno)
            if name in (".asciz", ".string"):
                data += b"\x00"
            self._emit(DataStmt([data], lineno))
            return True
        return False

    def _data_values(self, rest: str, size: int, lineno: int) -> DataStmt:
        stmt = DataStmt([], lineno)
        for item in _split_operands(rest):
            value = self._try_const(item, lineno)
            if value is not None:
                limit = 1 << (size * 8)
                stmt.parts.append((value % limit).to_bytes(size, "little"))
                continue
            sym, addend = self._symbol_with_addend(item, lineno)
            stmt.parts.append((sym, addend, size))
        return stmt

    def _parse_string(self, rest: str, lineno: int) -> bytes:
        rest = rest.strip()
        if len(rest) < 2 or rest[0] != '"' or rest[-1] != '"':
            raise AsmError(f"line {lineno}: expected quoted string")
        body = rest[1:-1]
        return body.encode().decode("unicode_escape").encode("latin-1")

    def _try_const(self, text: str, lineno: int):
        try:
            return self.evaluator.eval(text, lineno)
        except AsmError:
            return None

    def _symbol_with_addend(self, text: str, lineno: int):
        match = re.match(r"^([.\w$@]+)\s*([+-]\s*\d+|[+-]\s*0x[0-9a-fA-F]+)?$",
                         text.strip())
        if not match or not _NAME_RE.match(match.group(1)):
            raise AsmError(f"line {lineno}: bad symbol reference {text!r}")
        addend = 0
        if match.group(2):
            addend = int(match.group(2).replace(" ", ""), 0)
        return match.group(1), addend

    # ------------------------------------------------------------------

    def _instruction(self, line: str, lineno: int):
        parts = line.split(None, 1)
        mnemonic_text = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        cond = None
        if mnemonic_text in _COND_MNEMONICS:
            base, suffix = _COND_MNEMONICS[mnemonic_text]
            mnemonic = base
            cond = cond_from_suffix(suffix)
        elif mnemonic_text in _PLAIN_MNEMONICS:
            mnemonic = _PLAIN_MNEMONICS[mnemonic_text]
        elif mnemonic_text == "movabs":
            mnemonic = Mnemonic.MOV
        else:
            raise AsmError(f"line {lineno}: unknown mnemonic "
                           f"{mnemonic_text!r}")
        operands = [self._operand(text, lineno, mnemonic)
                    for text in _split_operands(operand_text)]
        operands = _fix_memory_sizes(operands)
        if mnemonic_text == "movabs" and len(operands) == 2 and \
                isinstance(operands[1], Imm):
            operands[1] = Imm(operands[1].value, 8)
        try:
            instruction = Instruction(mnemonic, tuple(operands), cond=cond)
        except ValueError as exc:
            raise AsmError(f"line {lineno}: {exc}") from None
        self._emit(InsnStmt(instruction, lineno))

    def _operand(self, text: str, lineno: int, mnemonic: Mnemonic):
        text = text.strip()
        lowered = text.lower()
        # size-annotated memory operand
        size = None
        match = re.match(r"^(byte|word|dword|qword)\s+ptr\s+(.*)$", lowered)
        if match:
            size = _SIZE_KEYWORDS[match.group(1)]
            text = text[match.end(1):].strip()
            assert text.lower().startswith("ptr")
            text = text[3:].strip()
        if text.startswith("["):
            if not text.endswith("]"):
                raise AsmError(f"line {lineno}: unterminated memory operand")
            return self._memory(text[1:-1].strip(), size, lineno)
        if size is not None:
            raise AsmError(f"line {lineno}: size prefix on non-memory "
                           f"operand {text!r}")
        if is_register_name(text):
            return Reg(reg(text))
        if lowered.startswith("offset "):
            sym, addend = self._symbol_with_addend(text[7:], lineno)
            return Label(sym, addend)
        value = self._try_const(text, lineno)
        if value is not None:
            return Imm(value)
        sym, addend = self._symbol_with_addend(text, lineno)
        return Label(sym, addend)

    def _memory(self, body: str, size, lineno: int) -> Mem:
        rip_relative = False
        if body.lower().startswith("rel "):
            rip_relative = True
            body = body[4:].strip()
        base = index = None
        scale = 1
        disp = 0
        sym_disp = None
        terms = re.findall(r"[+-]?[^+-]+(?:\s*)", body)
        for term in terms:
            term = term.strip()
            negative = term.startswith("-")
            term_body = term.lstrip("+-").strip()
            if not term_body:
                raise AsmError(f"line {lineno}: empty term in [{body}]")
            star = re.match(r"^(\w+)\s*\*\s*(\d+)$", term_body)
            if star and is_register_name(star.group(1)):
                if negative or index is not None:
                    raise AsmError(f"line {lineno}: bad index in [{body}]")
                index = reg(star.group(1))
                scale = int(star.group(2))
                continue
            star_rev = re.match(r"^(\d+)\s*\*\s*(\w+)$", term_body)
            if star_rev and is_register_name(star_rev.group(2)):
                if negative or index is not None:
                    raise AsmError(f"line {lineno}: bad index in [{body}]")
                index = reg(star_rev.group(2))
                scale = int(star_rev.group(1))
                continue
            if is_register_name(term_body):
                if negative:
                    raise AsmError(f"line {lineno}: negative register term")
                if base is None:
                    base = reg(term_body)
                elif index is None:
                    index = reg(term_body)
                else:
                    raise AsmError(f"line {lineno}: too many registers "
                                   f"in [{body}]")
                continue
            value = self._try_const(term_body, lineno)
            if value is not None:
                disp += -value if negative else value
                continue
            sym, addend = self._symbol_with_addend(term_body, lineno)
            if sym_disp is not None or negative:
                raise AsmError(f"line {lineno}: bad symbolic term in "
                               f"[{body}]")
            sym_disp = (sym, addend)
        if sym_disp is not None:
            if base is not None or index is not None:
                raise AsmError(
                    f"line {lineno}: symbolic displacement cannot be "
                    f"combined with registers in [{body}] (use lea)")
            label = Label(sym_disp[0], sym_disp[1] + disp)
            mem_base = RIP if rip_relative else None
            return Mem(base=mem_base, disp=label, size=size or 0)
        if rip_relative:
            raise AsmError(f"line {lineno}: 'rel' requires a symbol")
        return Mem(base=base, index=index, scale=scale, disp=disp,
                   size=size or 0)


def _fix_memory_sizes(operands):
    """Give unannotated memory operands the width of a register peer.

    ``mov [rbx], rax`` infers a qword access; a lone unannotated memory
    operand defaults to 8 bytes.
    """
    reg_size = None
    for operand in operands:
        if isinstance(operand, Reg):
            reg_size = operand.size
            break
    fixed = []
    for operand in operands:
        if isinstance(operand, Mem) and operand.size == 0:
            fixed.append(Mem(operand.base, operand.index, operand.scale,
                             operand.disp, reg_size or 8))
        else:
            fixed.append(operand)
    return fixed


def parse_source(text: str) -> Program:
    """Parse assembly source into a :class:`Program`."""
    return Parser().parse(text)
