"""``r2r`` command line: fault, patch, harden, and compare binaries.

Subcommands::

    r2r fault   TARGET.elf --good HEX --bad HEX --marker TEXT [--model M]
                [--backend B] [--checkpoint-interval N] [--workers W]
                [--k-faults K] [--samples S] [--seed SEED]
                [--stream | --no-stream] [--max-resident-points N]
    r2r harden  TARGET.elf -o OUT.elf
                --approach {faulter+patcher,hybrid,detour} [--evaluate]
    r2r compare TARGET --approach ... [--model M] [engine knobs]
    r2r demo    {pincheck,bootloader} --approach ...
    r2r run     TARGET.elf [--stdin HEX]
    r2r disasm  TARGET.elf

Inputs are passed as hex strings (``--good 31323334``) or with a
``text:`` prefix (``--good text:1234``).  ``compare`` (and only
``compare``) also accepts a bundled workload name
(``pincheck``/``bootloader``/``corpus``) as TARGET, in which case the
workload's own campaign inputs are used.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.api import (
    evaluate_countermeasures,
    find_vulnerabilities,
    harden_binary,
    hardened_elf,
)
from repro.binfmt.reader import read_elf
from repro.disasm import disassemble, pretty_print
from repro.emu.machine import run_executable
from repro.errors import ReproError
from repro.faulter.models import MODELS
from repro.workloads import bootloader, corpus, pincheck

# --model choices come from the model registry, so new fault models
# surface on every subcommand without touching the CLI.
MODEL_CHOICES = sorted(MODELS)

WORKLOADS = {
    "pincheck": pincheck.workload,
    "bootloader": bootloader.workload,
    "corpus": corpus.workload,
}


def _decode_input(text: str) -> bytes:
    if text.startswith("text:"):
        return text[5:].encode()
    return bytes.fromhex(text)


def _load(path: str):
    with open(path, "rb") as handle:
        return read_elf(handle.read())


def _resolve_compare_target(args):
    """(exe, good, bad, marker, name) for a path or a bundled name."""
    if args.target in WORKLOADS and not os.path.exists(args.target):
        wl = WORKLOADS[args.target]()
        good = (_decode_input(args.good) if args.good
                else wl.good_input)
        bad = _decode_input(args.bad) if args.bad else wl.bad_input
        marker = (args.marker.encode() if args.marker
                  else wl.grant_marker)
        return wl.build(), good, bad, marker, wl.name
    missing = [flag for flag, value in (("--good", args.good),
                                        ("--bad", args.bad),
                                        ("--marker", args.marker))
               if not value]
    if missing:
        raise SystemExit(
            f"r2r compare: error: {', '.join(missing)} required "
            f"for file targets")
    return (_load(args.target), _decode_input(args.good),
            _decode_input(args.bad), args.marker.encode(), args.target)


def _cmd_fault(args) -> int:
    try:
        reports = find_vulnerabilities(
            _load(args.target), _decode_input(args.good),
            _decode_input(args.bad), args.marker.encode(),
            models=args.model, name=args.target,
            backend=args.backend,
            checkpoint_interval=args.checkpoint_interval,
            workers=args.workers, k_faults=args.k_faults,
            samples=args.samples, seed=args.seed,
            stream=args.stream,
            max_resident_points=args.max_resident_points)
    except ValueError as exc:
        # conflicting engine knobs (exit 2: distinct from "vulnerable")
        print(f"r2r fault: error: {exc}", file=sys.stderr)
        return 2
    for report in reports.values():
        print(report.summary())
    return 0 if not any(r.vulnerable for r in reports.values()) else 1


def _cmd_harden(args) -> int:
    if args.evaluate:
        evaluation = evaluate_countermeasures(
            _load(args.target), _decode_input(args.good),
            _decode_input(args.bad), args.marker.encode(),
            approach=args.approach, models=args.model,
            harden_models=args.model, name=args.target)
        print(evaluation.report())
        result = evaluation.result
    else:
        result = harden_binary(
            _load(args.target), _decode_input(args.good),
            _decode_input(args.bad), args.marker.encode(),
            approach=args.approach, fault_models=args.model,
            name=args.target)
        print(result.report())
    with open(args.output, "wb") as handle:
        handle.write(hardened_elf(result))
    print(f"hardened binary written to {args.output}")
    return 0


def _cmd_compare(args) -> int:
    exe, good, bad, marker, name = _resolve_compare_target(args)
    try:
        evaluation = evaluate_countermeasures(
            exe, good, bad, marker,
            approach=args.approach, models=args.model,
            harden_models=args.model, name=name,
            backend=args.backend,
            checkpoint_interval=args.checkpoint_interval,
            workers=args.workers, stream=args.stream,
            max_resident_points=args.max_resident_points)
    except (ValueError, ReproError) as exc:
        # conflicting engine knobs, broken oracles, or a hardening
        # path refusing the binary (exit 2: distinct from "residual
        # vulnerabilities")
        print(f"r2r compare: error: {exc}", file=sys.stderr)
        return 2
    print(evaluation.report())
    census = evaluation.diff.counts()
    residual = census["surviving"] + census["introduced"]
    return 0 if residual == 0 else 1


def _cmd_demo(args) -> int:
    wl = (pincheck.workload(rich=args.rich) if args.case == "pincheck"
          else bootloader.workload(rich=args.rich))
    result = harden_binary(
        wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
        approach=args.approach, fault_models=args.model, name=wl.name)
    print(result.report())
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(hardened_elf(result))
        print(f"hardened binary written to {args.output}")
    return 0


def _cmd_run(args) -> int:
    stdin = _decode_input(args.stdin) if args.stdin else b""
    result = run_executable(_load(args.target), stdin=stdin)
    sys.stdout.write(result.stdout.decode("latin-1"))
    sys.stderr.write(result.stderr.decode("latin-1"))
    print(f"[{result.reason}] exit={result.exit_code} "
          f"steps={result.steps}", file=sys.stderr)
    return result.exit_code or 0


def _cmd_disasm(args) -> int:
    module = disassemble(_load(args.target), mode=args.mode)
    print(pretty_print(module))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="r2r",
        description="Rewrite to Reinforce: binary rewriting for "
                    "fault-injection countermeasures")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_campaign_args(p):
        p.add_argument("--good", required=True,
                       help="good input (hex or text:...)")
        p.add_argument("--bad", required=True,
                       help="bad input (hex or text:...)")
        p.add_argument("--marker", required=True,
                       help="stdout marker of the privileged behaviour")
        p.add_argument("--model", action="append",
                       default=None, choices=MODEL_CHOICES,
                       help="fault model(s); default: skip")

    fault = sub.add_parser("fault", help="run fault campaigns")
    fault.add_argument("target")
    add_campaign_args(fault)
    fault.add_argument("--backend", default=None,
                       choices=["sequential", "multiprocess"],
                       help="campaign execution backend "
                            "(default: sequential)")
    fault.add_argument("--checkpoint-interval", type=int, default=None,
                       help="snapshot the master trace every N steps "
                            "and replay faults from the nearest "
                            "checkpoint (<= 0: single step-0 "
                            "checkpoint)")
    fault.add_argument("--workers", type=int, default=None,
                       help="process count for --backend multiprocess")
    fault.add_argument("--k-faults", type=int, default=1,
                       help="faults injected per run (k > 1 samples "
                            "k-tuples along the trace)")
    fault.add_argument("--samples", type=int, default=200,
                       help="sampled runs for --k-faults > 1")
    fault.add_argument("--seed", type=int, default=0,
                       help="sampling seed for --k-faults > 1")
    fault.add_argument("--stream", default=None,
                       action=argparse.BooleanOptionalAction,
                       help="stream the fault space through a bounded "
                            "reorder window instead of materializing "
                            "it (default: on; --no-stream forces the "
                            "materialized path)")
    fault.add_argument("--max-resident-points", type=int, default=None,
                       help="streaming reorder-window size: the peak "
                            "number of fault points held in memory "
                            "at once")
    fault.set_defaults(func=_cmd_fault)

    harden = sub.add_parser("harden", help="harden a binary")
    harden.add_argument("target")
    harden.add_argument("-o", "--output", required=True)
    harden.add_argument("--approach", default="faulter+patcher",
                        choices=["faulter+patcher", "hybrid",
                                 "detour"])
    harden.add_argument("--evaluate", action="store_true",
                        help="also run the differential evaluation "
                             "loop (baseline campaign, re-fault the "
                             "hardened binary, report eliminated/"
                             "surviving/introduced/unmapped points)")
    add_campaign_args(harden)
    harden.set_defaults(func=_cmd_harden)

    compare = sub.add_parser(
        "compare",
        help="differential countermeasure evaluation: campaign "
             "before/after hardening, joined through the rewrite's "
             "provenance map")
    compare.add_argument("target",
                         help="an ELF path, or a bundled workload "
                              "name (pincheck/bootloader/corpus)")
    compare.add_argument("--good", help="good input (hex or text:...)")
    compare.add_argument("--bad", help="bad input (hex or text:...)")
    compare.add_argument("--marker",
                         help="stdout marker of the privileged "
                              "behaviour")
    compare.add_argument("--model", action="append", default=None,
                         choices=MODEL_CHOICES,
                         help="fault model(s); default: skip")
    compare.add_argument("--approach", default="faulter+patcher",
                         choices=["faulter+patcher", "hybrid",
                                  "detour"])
    compare.add_argument("--backend", default=None,
                         choices=["sequential", "multiprocess"])
    compare.add_argument("--checkpoint-interval", type=int,
                         default=None)
    compare.add_argument("--workers", type=int, default=None)
    compare.add_argument("--stream", default=None,
                         action=argparse.BooleanOptionalAction)
    compare.add_argument("--max-resident-points", type=int,
                         default=None)
    compare.set_defaults(func=_cmd_compare)

    demo = sub.add_parser("demo", help="harden a bundled case study")
    demo.add_argument("case", choices=["pincheck", "bootloader"])
    demo.add_argument("--approach", default="faulter+patcher",
                      choices=["faulter+patcher", "hybrid", "detour"])
    demo.add_argument("--rich", action="store_true",
                      help="use the realistically sized variant")
    demo.add_argument("--model", action="append", default=None,
                      choices=MODEL_CHOICES)
    demo.add_argument("-o", "--output")
    demo.set_defaults(func=_cmd_demo)

    run = sub.add_parser("run", help="run a binary in the emulator")
    run.add_argument("target")
    run.add_argument("--stdin", help="stdin bytes (hex or text:...)")
    run.set_defaults(func=_cmd_run)

    disasm = sub.add_parser("disasm",
                            help="reassembleable disassembly to stdout")
    disasm.add_argument("target")
    disasm.add_argument("--mode", default="refined",
                        choices=["refined", "naive"])
    disasm.set_defaults(func=_cmd_disasm)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "model", None) is None and \
            hasattr(args, "model"):
        args.model = ["skip"]
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
