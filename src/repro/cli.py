"""``r2r`` command line: fault, patch, harden, and compare binaries.

Subcommands::

    r2r fault   TARGET --good HEX --bad HEX --marker TEXT
                [--model M] [engine knobs] [-k K]
                [--samples S] [--seed SEED]
    r2r harden  TARGET.elf -o OUT.elf --approach A
                [--evaluate [engine knobs]]
    r2r compare TARGET --approach A [--model M] [engine knobs]
    r2r demo    {pincheck,bootloader} --approach A
    r2r cache   {info,clear} [--cache-dir DIR]
    r2r run     TARGET.elf [--stdin HEX]
    r2r disasm  TARGET.elf

The engine knobs — ``--backend``, ``--checkpoint-interval``,
``--workers``, ``--stream/--no-stream``, ``--max-resident-points``,
``--reduce/--no-reduce``, ``--chunk-units``, ``--artifact-cache``,
``--cache-dir``, ``--steal`` — are declared once in a
shared parent parser
and map onto one :class:`~repro.api.EngineConfig`; ``--approach``
choices derive from the
:data:`repro.hardening.HARDENING_APPROACHES` registry and ``--model``
choices from the fault-model registry, so registered third-party
approaches and models surface on every subcommand without touching
this module.

Inputs are passed as hex strings (``--good 31323334``) or with a
``text:`` prefix (``--good text:1234``).  ``fault`` and ``compare``
also accept a bundled workload name (``pincheck``/``bootloader``/
``corpus``/``exitgate``) as TARGET, in which case the workload's own
campaign inputs *and oracle* are used — ``exitgate`` runs the whole
differential loop under an exit-code oracle.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.api import EngineConfig, Target, hardened_elf
from repro.binfmt.reader import read_elf
from repro.disasm import disassemble, pretty_print
from repro.emu.machine import run_executable
from repro.errors import ReproError
from repro.faulter.engine import BACKENDS
from repro.faulter.models import MODELS
from repro.hardening import HARDENING_APPROACHES
from repro.workloads import bootloader, corpus, pincheck

# --model choices come from the model registry, so new fault models
# surface on every subcommand without touching the CLI.
MODEL_CHOICES = sorted(MODELS)

WORKLOADS = {
    "pincheck": pincheck.workload,
    "bootloader": bootloader.workload,
    "corpus": corpus.workload,
    "exitgate": corpus.exitgate_workload,
}


def _decode_input(text: str) -> bytes:
    if text.startswith("text:"):
        return text[5:].encode()
    return bytes.fromhex(text)


def _load(path: str):
    with open(path, "rb") as handle:
        return read_elf(handle.read())


class _AppendOverDefault(argparse.Action):
    """``append`` that *replaces* the parser-declared default.

    Lets the parser own the ``--model`` default (no post-parse
    patching in ``main``) without the classic argparse gotcha of
    appending onto the default list.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        current = getattr(namespace, self.dest, None)
        if current is None or current is self.default:
            current = []
            setattr(namespace, self.dest, current)
        current.append(values)


def _model_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--model", action=_AppendOverDefault,
                        default=["skip"], choices=MODEL_CHOICES,
                        help="fault model(s), repeatable "
                             "(default: skip)")
    return parent


def _campaign_parent(required: bool) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--good", required=required,
                        help="good input (hex or text:...)")
    parent.add_argument("--bad", required=required,
                        help="bad input (hex or text:...)")
    parent.add_argument("--marker", required=required,
                        help="stdout marker of the privileged "
                             "behaviour")
    return parent


def _engine_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("engine knobs")
    group.add_argument("--backend", default=None,
                       choices=sorted(BACKENDS),
                       help="campaign execution backend "
                            "(default: sequential)")
    group.add_argument("--checkpoint-interval", type=int, default=None,
                       help="snapshot the master trace every N steps "
                            "and replay faults from the nearest "
                            "checkpoint (<= 0: single step-0 "
                            "checkpoint)")
    group.add_argument("--workers", type=int, default=None,
                       help="process count for --backend multiprocess")
    group.add_argument("--stream", default=None,
                       action=argparse.BooleanOptionalAction,
                       help="stream the fault space through a bounded "
                            "reorder window instead of materializing "
                            "it (default: on; --no-stream forces the "
                            "materialized path)")
    group.add_argument("--max-resident-points", type=int, default=None,
                       help="streaming reorder-window size: the peak "
                            "number of fault points held in memory "
                            "at once")
    group.add_argument("--trace-compile", default=None,
                       action=argparse.BooleanOptionalAction,
                       help="run unfaulted instruction stretches "
                            "through the trace-compiled tier "
                            "(default: on; --no-trace-compile keeps "
                            "every step on the precise interpreter)")
    group.add_argument("--reduce", default=None,
                       action=argparse.BooleanOptionalAction,
                       help="prune provably-dead and equivalent fault "
                            "points before execution, reporting the "
                            "elided verdicts through the reduction "
                            "certificate (default: on; --no-reduce "
                            "forces the full enumeration)")
    group.add_argument("--chunk-units", default=None,
                       action=argparse.BooleanOptionalAction,
                       help="partition the campaign per recovered "
                            "rewrite unit (function), running each as "
                            "its own sub-campaign within the resident "
                            "bound; the merged report is bit-identical "
                            "and carries per-function rollups")
    group.add_argument("--artifact-cache", default=None,
                       action=argparse.BooleanOptionalAction,
                       help="cache derivations (trace, checkpoints, "
                            "traceflow facts, JIT block sources) in a "
                            "content-addressed on-disk store and load "
                            "them on later campaigns (default: off; "
                            "implied by --cache-dir)")
    group.add_argument("--cache-dir", default=None,
                       help="artifact store root (default: "
                            "$XDG_CACHE_HOME/r2r/artifacts); naming "
                            "one implies --artifact-cache")
    group.add_argument("--steal", default=None,
                       action=argparse.BooleanOptionalAction,
                       help="multiprocess scheduling: pull partitions "
                            "from a shared work-stealing queue "
                            "(default: on; --no-steal dispatches in "
                            "fixed worker-sized waves)")
    return parent


def _engine_config(args) -> EngineConfig:
    """One EngineConfig from the shared engine flags (validating)."""
    return EngineConfig(
        backend=args.backend,
        checkpoint_interval=args.checkpoint_interval,
        workers=args.workers,
        k_faults=getattr(args, "k_faults", 1),
        samples=getattr(args, "samples", 200),
        seed=getattr(args, "seed", 0),
        stream=args.stream,
        max_resident_points=args.max_resident_points,
        trace_compile=args.trace_compile,
        reduce=args.reduce,
        chunk_units=args.chunk_units,
        artifact_cache=args.artifact_cache,
        cache_dir=args.cache_dir,
        steal=args.steal)


def _file_target(args) -> Target:
    """Target for a subcommand taking an ELF path plus inputs."""
    return Target(_load(args.target), _decode_input(args.good),
                  _decode_input(args.bad), args.marker.encode(),
                  name=args.target)


def _resolve_target(args, prog: str) -> Target:
    """Target for an ELF path or a bundled workload name."""
    if args.target in WORKLOADS and not os.path.exists(args.target):
        wl = WORKLOADS[args.target]()
        good = (_decode_input(args.good) if args.good
                else wl.good_input)
        bad = _decode_input(args.bad) if args.bad else wl.bad_input
        if args.marker:
            oracle = args.marker.encode()
        elif wl.oracle is not None:
            oracle = wl.oracle
        else:
            oracle = wl.grant_marker
        return Target(wl.build(), good, bad, oracle, name=wl.name)
    missing = [flag for flag, value in (("--good", args.good),
                                        ("--bad", args.bad),
                                        ("--marker", args.marker))
               if not value]
    if missing:
        raise SystemExit(
            f"r2r {prog}: error: {', '.join(missing)} required "
            f"for file targets")
    return _file_target(args)


def _print_reduction(meta: dict) -> None:
    from repro.faulter.reduction import ReductionCertificate
    payload = meta.get("reduction")
    if payload is None:
        return
    print("  " + ReductionCertificate.from_dict(payload).summary())


def _cmd_fault(args) -> int:
    try:
        config = _engine_config(args)
        reports = _resolve_target(args, "fault").campaign(
            args.model, config)
    except ValueError as exc:
        # conflicting engine knobs (exit 2: distinct from "vulnerable")
        print(f"r2r fault: error: {exc}", file=sys.stderr)
        return 2
    for report in reports.values():
        print(report.summary())
        if args.verbose:
            meta = report.meta
            print(f"  execution: {meta['compiled_steps']} compiled + "
                  f"{meta['precise_steps']} precise steps "
                  f"(trace_compile={meta['trace_compile']}, "
                  f"{meta['compile_divergences']} divergences, "
                  f"compile {meta['compile_seconds']}s)")
            _print_reduction(meta)
            artifacts = meta.get("artifacts")
            if artifacts and artifacts.get("enabled"):
                print(f"  artifacts: {artifacts['hits']} hit(s), "
                      f"{artifacts['misses']} miss(es), "
                      f"{artifacts['saves']} save(s), derive "
                      f"{artifacts['derive_seconds']}s "
                      f"({artifacts.get('cache_dir', '?')})")
            for name, rollup in meta.get("units", {}).items():
                outcomes = ", ".join(
                    f"{k}={v}"
                    for k, v in sorted(rollup["outcomes"].items()))
                print(f"  unit {name}: {rollup['trace_steps']} "
                      f"step(s), {rollup['points']} point(s)"
                      + (f" ({outcomes})" if outcomes else ""))
    return 0 if not any(r.vulnerable for r in reports.values()) else 1


def _cmd_harden(args) -> int:
    try:
        config = _engine_config(args)
        if not args.evaluate and config != EngineConfig():
            # the knobs drive the evaluation campaigns; a plain harden
            # would silently drop them — refuse instead
            raise ValueError("engine knobs require --evaluate")
    except ValueError as exc:
        # conflicting engine knobs (exit 2: distinct from failures)
        print(f"r2r harden: error: {exc}", file=sys.stderr)
        return 2
    target = _file_target(args)
    if args.evaluate:
        evaluation = target.evaluate(
            approach=args.approach, models=args.model,
            config=config, harden_models=args.model)
        print(evaluation.report())
        result = evaluation.result
    else:
        result = target.harden(approach=args.approach,
                               fault_models=args.model)
        print(result.report())
    with open(args.output, "wb") as handle:
        handle.write(hardened_elf(result))
    print(f"hardened binary written to {args.output}")
    return 0


def _cmd_compare(args) -> int:
    target = _resolve_target(args, "compare")
    try:
        evaluation = target.evaluate(
            approach=args.approach, models=args.model,
            config=_engine_config(args), harden_models=args.model)
    except (ValueError, ReproError) as exc:
        # conflicting engine knobs, broken oracles, or a hardening
        # path refusing the binary (exit 2: distinct from "residual
        # vulnerabilities")
        print(f"r2r compare: error: {exc}", file=sys.stderr)
        return 2
    print(evaluation.report())
    census = evaluation.diff.counts()
    residual = census["surviving"] + census["introduced"]
    return 0 if residual == 0 else 1


def _cmd_demo(args) -> int:
    wl = (pincheck.workload(rich=args.rich) if args.case == "pincheck"
          else bootloader.workload(rich=args.rich))
    result = wl.target().harden(approach=args.approach,
                                fault_models=args.model)
    print(result.report())
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(hardened_elf(result))
        print(f"hardened binary written to {args.output}")
    return 0


def _cmd_cache(args) -> int:
    from repro.faulter.artifacts import ArtifactStore
    store = ArtifactStore(args.cache_dir)
    if args.action == "info":
        census = store.info()
        print(f"artifact store: {census['root']}")
        print(f"  {census['entries']} entries, "
              f"{census['bytes']} bytes")
        for kind, row in sorted(census["kinds"].items()):
            print(f"  {kind}: {row['entries']} entries, "
                  f"{row['bytes']} bytes")
        return 0
    removed = store.clear()
    print(f"removed {removed} artifact(s) from {store.root}")
    return 0


def _cmd_run(args) -> int:
    stdin = _decode_input(args.stdin) if args.stdin else b""
    result = run_executable(_load(args.target), stdin=stdin)
    sys.stdout.write(result.stdout.decode("latin-1"))
    sys.stderr.write(result.stderr.decode("latin-1"))
    print(f"[{result.reason}] exit={result.exit_code} "
          f"steps={result.steps}", file=sys.stderr)
    return result.exit_code or 0


def _cmd_disasm(args) -> int:
    module = disassemble(_load(args.target), mode=args.mode)
    print(pretty_print(module))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="r2r",
        description="Rewrite to Reinforce: binary rewriting for "
                    "fault-injection countermeasures")
    sub = parser.add_subparsers(dest="command", required=True)

    # shared flag groups (declared once; see module docstring)
    model = _model_parent()
    inputs = _campaign_parent(required=True)
    inputs_optional = _campaign_parent(required=False)
    engine = _engine_parent()
    # --approach choices derive from the registry at parser-build
    # time, so approaches registered before build_parser() show up
    approach_choices = sorted(HARDENING_APPROACHES)

    fault = sub.add_parser("fault", help="run fault campaigns",
                           parents=[inputs_optional, model, engine])
    fault.add_argument("target",
                       help="an ELF path, or a bundled workload "
                            "name (pincheck/bootloader/corpus/"
                            "exitgate)")
    fault.add_argument("-k", "--k-faults", type=int, default=1,
                       help="faults injected per run (k > 1 samples "
                            "k-tuples along the trace)")
    fault.add_argument("--samples", type=int, default=200,
                       help="sampled runs for --k-faults > 1")
    fault.add_argument("--seed", type=int, default=0,
                       help="sampling seed for --k-faults > 1")
    fault.add_argument("-v", "--verbose", action="store_true",
                       help="print per-report execution detail "
                            "(compiled vs precise step split)")
    fault.set_defaults(func=_cmd_fault)

    harden = sub.add_parser("harden", help="harden a binary",
                            parents=[inputs, model, engine])
    harden.add_argument("target")
    harden.add_argument("-o", "--output", required=True)
    harden.add_argument("--approach", default="faulter+patcher",
                        choices=approach_choices)
    harden.add_argument("--evaluate", action="store_true",
                        help="also run the differential evaluation "
                             "loop (baseline campaign, re-fault the "
                             "hardened binary, report eliminated/"
                             "surviving/introduced/unmapped points) "
                             "honouring the engine knobs")
    harden.set_defaults(func=_cmd_harden)

    compare = sub.add_parser(
        "compare",
        help="differential countermeasure evaluation: campaign "
             "before/after hardening, joined through the rewrite's "
             "provenance map",
        parents=[inputs_optional, model, engine])
    compare.add_argument("target",
                         help="an ELF path, or a bundled workload "
                              "name (pincheck/bootloader/corpus/"
                              "exitgate)")
    compare.add_argument("--approach", default="faulter+patcher",
                         choices=approach_choices)
    compare.set_defaults(func=_cmd_compare)

    demo = sub.add_parser("demo", help="harden a bundled case study",
                          parents=[model])
    demo.add_argument("case", choices=["pincheck", "bootloader"])
    demo.add_argument("--approach", default="faulter+patcher",
                      choices=approach_choices)
    demo.add_argument("--rich", action="store_true",
                      help="use the realistically sized variant")
    demo.add_argument("-o", "--output")
    demo.set_defaults(func=_cmd_demo)

    cache = sub.add_parser(
        "cache",
        help="inspect or clear the campaign artifact store")
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument("--cache-dir", default=None,
                       help="artifact store root (default: "
                            "$XDG_CACHE_HOME/r2r/artifacts)")
    cache.set_defaults(func=_cmd_cache)

    run = sub.add_parser("run", help="run a binary in the emulator")
    run.add_argument("target")
    run.add_argument("--stdin", help="stdin bytes (hex or text:...)")
    run.set_defaults(func=_cmd_run)

    disasm = sub.add_parser("disasm",
                            help="reassembleable disassembly to stdout")
    disasm.add_argument("target")
    disasm.add_argument("--mode", default="refined",
                        choices=["refined", "naive"])
    disasm.set_defaults(func=_cmd_disasm)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
