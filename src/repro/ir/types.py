"""IR type system: integers, an opaque pointer, void, functions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class IntType:
    bits: int

    def __str__(self):
        return f"i{self.bits}"

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def sign_bit(self) -> int:
        return 1 << (self.bits - 1)


@dataclass(frozen=True)
class PointerType:
    def __str__(self):
        return "ptr"


@dataclass(frozen=True)
class VoidType:
    def __str__(self):
        return "void"


@dataclass(frozen=True)
class FunctionType:
    ret: object
    params: Tuple[object, ...] = ()

    def __str__(self):
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret} ({params})"


I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
PTR = PointerType()
VOID = VoidType()


def int_type(bits: int) -> IntType:
    return {1: I1, 8: I8, 16: I16, 32: I32, 64: I64}.get(bits,
                                                         IntType(bits))
