"""IR value base classes with use-def tracking."""

from __future__ import annotations


from repro.ir.types import IntType


class Value:
    """Anything that can appear as an operand."""

    def __init__(self, vtype, name: str = ""):
        self.type = vtype
        self.name = name
        self.uses: list["object"] = []  # user instructions (with dups)

    def add_use(self, user):
        self.uses.append(user)

    def remove_use(self, user):
        # one occurrence per call; operands may repeat a value
        try:
            self.uses.remove(user)
        except ValueError:
            pass

    @property
    def users(self) -> list:
        """Distinct user instructions (operands may repeat a value)."""
        seen: list = []
        for user in self.uses:
            if not any(user is existing for existing in seen):
                seen.append(user)
        return seen

    def replace_all_uses_with(self, replacement: "Value"):
        for user in list(self.uses):
            user.replace_operand(self, replacement)

    def short_name(self) -> str:
        return f"%{self.name}" if self.name else "%?"

    def __str__(self):
        return self.short_name()


class Constant(Value):
    """Integer constant."""

    def __init__(self, vtype: IntType, value: int):
        super().__init__(vtype)
        limit = 1 << vtype.bits
        value %= limit
        if value >= limit // 2:
            value -= limit
        self.value = value

    @property
    def unsigned(self) -> int:
        return self.value % (1 << self.type.bits)

    def short_name(self) -> str:
        return str(self.value)

    def __repr__(self):
        return f"Constant({self.type} {self.value})"

    def __str__(self):
        return str(self.value)


class Undef(Value):
    """Explicitly undefined value (used by out-of-SSA edge cases)."""

    def short_name(self) -> str:
        return "undef"


class Argument(Value):
    """Function parameter."""

    def __init__(self, vtype, name: str, index: int):
        super().__init__(vtype, name)
        self.index = index
