"""Convenience builder for IR construction."""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, CondBr, ICmp, IntToPtr, Load, Phi, PtrToInt,
    Ret, Select, SExt, Store, Switch, Trunc, Unreachable, ZExt)
from repro.ir.module import BasicBlock
from repro.ir.types import I64, IntType
from repro.ir.values import Constant, Value


class IRBuilder:
    """Appends instructions at an insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block

    def set_block(self, block: BasicBlock):
        self.block = block

    def _emit(self, instruction):
        self.block.append(instruction)
        return instruction

    # -- constants ----------------------------------------------------------

    @staticmethod
    def const(vtype: IntType, value: int) -> Constant:
        return Constant(vtype, value)

    def i64(self, value: int) -> Constant:
        return Constant(I64, value)

    # -- arithmetic -----------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, name="") -> BinOp:
        return self._emit(BinOp(op, lhs, rhs, name))

    def add(self, lhs, rhs, name=""):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binop("mul", lhs, rhs, name)

    def and_(self, lhs, rhs, name=""):
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs, rhs, name=""):
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs, rhs, name=""):
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs, rhs, name=""):
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs, rhs, name=""):
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs, rhs, name=""):
        return self.binop("ashr", lhs, rhs, name)

    def not_(self, value, name=""):
        return self.xor(value, Constant(value.type, -1), name)

    def icmp(self, pred: str, lhs, rhs, name="") -> ICmp:
        return self._emit(ICmp(pred, lhs, rhs, name))

    def select(self, cond, if_true, if_false, name="") -> Select:
        return self._emit(Select(cond, if_true, if_false, name))

    # -- casts ----------------------------------------------------------------

    def zext(self, value, to_type, name="") -> Value:
        if value.type == to_type:
            return value
        return self._emit(ZExt(value, to_type, name))

    def sext(self, value, to_type, name="") -> Value:
        if value.type == to_type:
            return value
        return self._emit(SExt(value, to_type, name))

    def trunc(self, value, to_type, name="") -> Value:
        if value.type == to_type:
            return value
        return self._emit(Trunc(value, to_type, name))

    def inttoptr(self, value, name="") -> IntToPtr:
        return self._emit(IntToPtr(value, name))

    def ptrtoint(self, value, name="") -> PtrToInt:
        return self._emit(PtrToInt(value, name))

    # -- memory ---------------------------------------------------------------

    def alloca(self, allocated_type, name="") -> Alloca:
        return self._emit(Alloca(allocated_type, name))

    def load(self, vtype, pointer, name="") -> Load:
        return self._emit(Load(vtype, pointer, name))

    def store(self, value, pointer) -> Store:
        return self._emit(Store(value, pointer))

    # -- control flow ---------------------------------------------------------

    def br(self, target: BasicBlock) -> Br:
        return self._emit(Br(target))

    def condbr(self, cond, if_true, if_false) -> CondBr:
        return self._emit(CondBr(cond, if_true, if_false))

    def switch(self, value, default) -> Switch:
        return self._emit(Switch(value, default))

    def ret(self, value=None) -> Ret:
        return self._emit(Ret(value))

    def unreachable(self) -> Unreachable:
        return self._emit(Unreachable())

    def phi(self, vtype, name="") -> Phi:
        phi = Phi(vtype, name)
        self.block.insert(self.block.non_phi_index(), phi)
        return phi

    def call(self, vtype, callee: str, args=(), name="",
             readonly: bool = False) -> Call:
        return self._emit(Call(vtype, callee, args, name,
                               readonly=readonly))
