"""IR interpreter.

Executes a lifted function against a guest memory image and I/O state,
mirroring the CPU emulator's observable behaviour — the differential
oracle for lifter correctness (binary-under-emulator vs
lifted-IR-under-interpreter must match).
"""

from __future__ import annotations

from typing import Optional

from repro.emu.machine import CRASH, EXIT, HALT, MAX_STEPS, RunResult
from repro.emu.memory import Memory
from repro.emu.syscalls import IOState
from repro.errors import IRError, MemoryFault
from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, CondBr, ICmp, IntToPtr, Load, Phi, PtrToInt,
    Ret, Select, SExt, Store, Switch, Trunc, Unreachable, ZExt)
from repro.ir.module import Function
from repro.ir.values import Constant, Undef

_MASK64 = (1 << 64) - 1


class _Exit(Exception):
    def __init__(self, code):
        self.code = code


class _Abort(Exception):
    pass


class _Halt(Exception):
    pass


def _signed(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


class Interpreter:
    """Executes one IR function."""

    def __init__(self, memory: Optional[Memory] = None,
                 stdin: bytes = b""):
        self.memory = memory if memory is not None else Memory()
        self.io = IOState(stdin)
        self._allocas: dict[int, int] = {}
        self._alloca_mem: dict[int, int] = {}
        self._next_alloca = 0x1000_0000_0000  # synthetic alloca space

    # -- public ------------------------------------------------------------

    def run(self, function: Function, args=(),
            max_steps: int = 1_000_000) -> RunResult:
        env: dict[int, int] = {}
        for argument, value in zip(function.args, args):
            env[id(argument)] = value & _MASK64
        block = function.entry
        previous = None
        steps = 0
        reason, code, detail = MAX_STEPS, None, ""
        try:
            while steps < max_steps:
                next_block = None
                for instruction in block.instructions:
                    steps += 1
                    result = self._step(instruction, env, previous, block)
                    if isinstance(result, tuple) and result and \
                            result[0] == "branch":
                        next_block = result[1]
                        break
                    if isinstance(result, tuple) and result and \
                            result[0] == "return":
                        return RunResult(EXIT, exit_code=0,
                                         stdout=bytes(self.io.stdout),
                                         stderr=bytes(self.io.stderr),
                                         steps=steps)
                if next_block is None:
                    raise IRError(f"block {block.name} fell through")
                previous, block = block, next_block
        except _Exit as exc:
            reason, code = EXIT, exc.code
        except _Halt:
            reason = HALT
        except _Abort:
            reason, code = EXIT, 134  # SIGABRT-flavoured exit
            detail = "abort"
        except MemoryFault as exc:
            reason, detail = CRASH, str(exc)
        return RunResult(reason, exit_code=code,
                         stdout=bytes(self.io.stdout),
                         stderr=bytes(self.io.stderr),
                         steps=steps, crash_detail=detail)

    # -- evaluation -----------------------------------------------------------

    def _value(self, value, env):
        if isinstance(value, Constant):
            return value.unsigned
        if isinstance(value, Undef):
            return 0
        key = id(value)
        if key not in env:
            raise IRError(f"use of unevaluated value {value.short_name()}")
        return env[key]

    def _step(self, i, env, previous, block):
        if isinstance(i, Phi):
            if previous is None:
                raise IRError("phi in entry block")
            value = i.incoming_for(previous)
            if value is None:
                raise IRError(f"phi missing incoming for {previous.name}")
            env[id(i)] = self._value(value, env)
            return None
        if isinstance(i, BinOp):
            env[id(i)] = self._binop(i, env)
            return None
        if isinstance(i, ICmp):
            env[id(i)] = 1 if self._icmp(i, env) else 0
            return None
        if isinstance(i, ZExt):
            env[id(i)] = self._value(i.value, env) & i.value.type.mask
            return None
        if isinstance(i, SExt):
            value = _signed(self._value(i.value, env), i.value.type.bits)
            env[id(i)] = value & i.type.mask
            return None
        if isinstance(i, Trunc):
            env[id(i)] = self._value(i.value, env) & i.type.mask
            return None
        if isinstance(i, (IntToPtr, PtrToInt)):
            env[id(i)] = self._value(i.value, env) & _MASK64
            return None
        if isinstance(i, Alloca):
            address = self._next_alloca
            self._next_alloca += 16
            self.memory.map(address, 16, "rw")
            env[id(i)] = address
            return None
        if isinstance(i, Load):
            address = self._value(i.pointer, env)
            width = i.type.bits // 8
            data = self.memory.read(address, width)
            env[id(i)] = int.from_bytes(data, "little")
            return None
        if isinstance(i, Store):
            address = self._value(i.pointer, env)
            width = i.value.type.bits // 8
            value = self._value(i.value, env) & ((1 << (width * 8)) - 1)
            self.memory.write(address, value.to_bytes(width, "little"))
            return None
        if isinstance(i, Select):
            cond, if_true, if_false = i.operands
            chosen = if_true if self._value(cond, env) else if_false
            env[id(i)] = self._value(chosen, env)
            return None
        if isinstance(i, Call):
            env[id(i)] = self._call(i, env)
            return None
        if isinstance(i, Br):
            return ("branch", i.target)
        if isinstance(i, CondBr):
            taken = i.if_true if self._value(i.cond, env) else i.if_false
            return ("branch", taken)
        if isinstance(i, Switch):
            value = self._value(i.value, env)
            for constant, target in i.cases:
                if constant.unsigned == value:
                    return ("branch", target)
            return ("branch", i.default)
        if isinstance(i, Ret):
            return ("return",)
        if isinstance(i, Unreachable):
            raise IRError("executed unreachable")
        raise IRError(f"cannot interpret {i.opcode}")

    def _binop(self, i: BinOp, env) -> int:
        bits = i.type.bits
        mask = i.type.mask
        a = self._value(i.lhs, env)
        b = self._value(i.rhs, env)
        op = i.op
        if op == "add":
            return (a + b) & mask
        if op == "sub":
            return (a - b) & mask
        if op == "mul":
            return (a * b) & mask
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return (a << (b % bits)) & mask if b < bits else 0
        if op == "lshr":
            return a >> b if b < bits else 0
        if op == "ashr":
            if b >= bits:
                b = bits - 1
            return (_signed(a, bits) >> b) & mask
        if op == "udiv":
            return (a // b) & mask if b else 0
        if op == "urem":
            return (a % b) & mask if b else 0
        raise IRError(f"unknown binop {op}")

    def _icmp(self, i: ICmp, env) -> bool:
        bits = i.lhs.type.bits
        a = self._value(i.lhs, env)
        b = self._value(i.rhs, env)
        sa, sb = _signed(a, bits), _signed(b, bits)
        return {
            "eq": a == b, "ne": a != b,
            "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b,
            "slt": sa < sb, "sle": sa <= sb, "sgt": sa > sb,
            "sge": sa >= sb,
        }[i.pred]

    # -- intrinsics -----------------------------------------------------------

    def _call(self, i: Call, env) -> int:
        name = i.callee
        if name == "syscall":
            return self._syscall([self._value(a, env) for a in i.operands])
        if name == "abort":
            raise _Abort()
        if name == "halt":
            raise _Halt()
        raise IRError(f"unknown callee @{name}")

    def _syscall(self, args) -> int:
        number, rdi, rsi, rdx = (list(args) + [0] * 4)[:4]
        if number == 0:  # read
            data = self.io.stdin[self.io.stdin_pos:self.io.stdin_pos + rdx]
            if data:
                self.memory.write(rsi, data)
            self.io.stdin_pos += len(data)
            return len(data)
        if number == 1:  # write
            data = self.memory.read(rsi, rdx) if rdx else b""
            if rdi == 1:
                self.io.stdout += data
            elif rdi == 2:
                self.io.stderr += data
            else:
                return (-9) & _MASK64
            return len(data)
        if number in (60, 231):
            raise _Exit(rdi & 0xFF)
        return (-38) & _MASK64  # ENOSYS
