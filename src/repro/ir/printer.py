"""Textual rendering of the IR (LLVM-flavoured)."""

from __future__ import annotations

from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, CondBr, ICmp, Load, Phi, Ret, Select, Store,
    Switch, Trunc, Unreachable, ZExt, SExt, IntToPtr, PtrToInt)
from repro.ir.module import BasicBlock, Function, IRModule


def print_module(module: IRModule) -> str:
    parts = [f"; module {module.name}"]
    for function in module.functions:
        parts.append(print_function(function))
    return "\n\n".join(parts)


def print_function(function: Function) -> str:
    function.renumber()
    args = ", ".join(f"{a.type} %{a.name}" for a in function.args)
    ret = function.type.ret if hasattr(function.type, "ret") else "void"
    lines = [f"define {ret} @{function.name}({args}) {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for instruction in block.instructions:
            lines.append(f"  {_render(instruction)}")
    lines.append("}")
    return "\n".join(lines)


def _value(value) -> str:
    if isinstance(value, BasicBlock):
        return f"label %{value.name}"
    return value.short_name()


def _render(i) -> str:
    if isinstance(i, BinOp):
        return (f"{i.short_name()} = {i.op} {i.type} "
                f"{_value(i.lhs)}, {_value(i.rhs)}")
    if isinstance(i, ICmp):
        return (f"{i.short_name()} = icmp {i.pred} {i.lhs.type} "
                f"{_value(i.lhs)}, {_value(i.rhs)}")
    if isinstance(i, (ZExt, SExt, Trunc)):
        return (f"{i.short_name()} = {i.opcode} {i.value.type} "
                f"{_value(i.value)} to {i.type}")
    if isinstance(i, (IntToPtr, PtrToInt)):
        return (f"{i.short_name()} = {i.opcode} {_value(i.value)} "
                f"to {i.type}")
    if isinstance(i, Alloca):
        return f"{i.short_name()} = alloca {i.allocated_type}"
    if isinstance(i, Load):
        return f"{i.short_name()} = load {i.type}, ptr {_value(i.pointer)}"
    if isinstance(i, Store):
        return (f"store {i.value.type} {_value(i.value)}, "
                f"ptr {_value(i.pointer)}")
    if isinstance(i, Select):
        cond, t, f = i.operands
        return (f"{i.short_name()} = select i1 {_value(cond)}, "
                f"{t.type} {_value(t)}, {f.type} {_value(f)}")
    if isinstance(i, Phi):
        arms = ", ".join(f"[ {_value(v)}, %{b.name} ]"
                         for v, b in i.incoming())
        return f"{i.short_name()} = phi {i.type} {arms}"
    if isinstance(i, Call):
        args = ", ".join(f"{a.type} {_value(a)}" for a in i.operands)
        prefix = f"{i.short_name()} = " if str(i.type) != "void" else ""
        return f"{prefix}call {i.type} @{i.callee}({args})"
    if isinstance(i, Br):
        return f"br label %{i.target.name}"
    if isinstance(i, CondBr):
        return (f"br i1 {_value(i.cond)}, label %{i.if_true.name}, "
                f"label %{i.if_false.name}")
    if isinstance(i, Switch):
        cases = ", ".join(f"{c.type} {c.value} -> %{b.name}"
                          for c, b in i.cases)
        return (f"switch {i.value.type} {_value(i.value)}, "
                f"default %{i.default.name} [{cases}]")
    if isinstance(i, Ret):
        if i.operands:
            return f"ret {i.operands[0].type} {_value(i.operands[0])}"
        return "ret void"
    if isinstance(i, Unreachable):
        return "unreachable"
    return f"; unknown {i.opcode}"
