"""IR structural and SSA-dominance verifier."""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.instructions import Instruction, Phi
from repro.ir.module import BasicBlock, Function, IRModule
from repro.ir.values import Argument, Constant, Undef


def verify(target) -> None:
    """Verify a module or function; raises :class:`IRError` on failure."""
    if isinstance(target, IRModule):
        for function in target.functions:
            _verify_function(function)
        return
    _verify_function(target)


def _verify_function(function: Function):
    if not function.blocks:
        raise IRError(f"{function.name}: no basic blocks")
    block_set = set(map(id, function.blocks))

    for block in function.blocks:
        if not block.instructions:
            raise IRError(f"{function.name}/{block.name}: empty block")
        terminator = block.terminator
        if terminator is None:
            raise IRError(
                f"{function.name}/{block.name}: missing terminator")
        for index, instruction in enumerate(block.instructions):
            if instruction.is_terminator and \
                    instruction is not block.instructions[-1]:
                raise IRError(
                    f"{function.name}/{block.name}: terminator in the "
                    f"middle of the block")
            if isinstance(instruction, Phi) and \
                    index >= block.non_phi_index() and \
                    not isinstance(block.instructions[index], Phi):
                raise IRError(
                    f"{function.name}/{block.name}: phi after non-phi")
            if instruction.parent is not block:
                raise IRError(
                    f"{function.name}/{block.name}: bad parent link on "
                    f"{instruction.opcode}")
        for successor in block.successors():
            if id(successor) not in block_set:
                raise IRError(
                    f"{function.name}/{block.name}: successor "
                    f"{successor.name} not in function")

    _verify_phis(function)
    _verify_dominance(function)


def _verify_phis(function: Function):
    predecessors = {
        id(block): block.predecessors() for block in function.blocks}
    for block in function.blocks:
        preds = predecessors[id(block)]
        for phi in block.phis():
            incoming = phi.incoming_blocks
            if len(incoming) != len(preds):
                raise IRError(
                    f"{function.name}/{block.name}: phi has "
                    f"{len(incoming)} incoming, block has "
                    f"{len(preds)} predecessor(s)")
            for pred in preds:
                if phi.incoming_for(pred) is None:
                    raise IRError(
                        f"{function.name}/{block.name}: phi missing "
                        f"incoming for {pred.name}")


def _dom_tree(function: Function) -> dict:
    """Immediate-dominator map via iterative dataflow (Cooper et al.)."""
    order: list[BasicBlock] = []
    seen = set()

    def dfs(block):
        if id(block) in seen:
            return
        seen.add(id(block))
        for successor in block.successors():
            dfs(successor)
        order.append(block)

    dfs(function.entry)
    order.reverse()  # reverse postorder
    index = {id(b): i for i, b in enumerate(order)}
    idom: dict[int, BasicBlock] = {id(function.entry): function.entry}

    def intersect(a, b):
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            preds = [p for p in block.predecessors() if id(p) in idom]
            if not preds:
                continue
            new_idom = preds[0]
            for pred in preds[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(id(block)) is not new_idom:
                idom[id(block)] = new_idom
                changed = True
    return idom


def dominators(function: Function) -> dict:
    """Public dominance query: {id(block): set of dominator block ids}."""
    idom = _dom_tree(function)
    result: dict[int, set] = {}
    for block in function.blocks:
        if id(block) not in idom:
            result[id(block)] = set()  # unreachable
            continue
        doms = {id(block)}
        current = block
        while idom[id(current)] is not current:
            current = idom[id(current)]
            doms.add(id(current))
        result[id(block)] = doms
    return result


def _verify_dominance(function: Function):
    doms = dominators(function)
    positions = {}
    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            positions[id(instruction)] = (block, index)

    for block in function.blocks:
        if not doms[id(block)]:
            continue  # unreachable block: skip SSA checks
        for index, instruction in enumerate(block.instructions):
            if isinstance(instruction, Phi):
                for value, pred in instruction.incoming():
                    _check_reaches(function, value, pred,
                                   len(pred.instructions), positions,
                                   doms, instruction)
                continue
            for value in instruction.operands:
                _check_reaches(function, value, block, index, positions,
                               doms, instruction)


def _check_reaches(function, value, use_block, use_index, positions,
                   doms, user):
    if isinstance(value, (Constant, Argument, Undef, BasicBlock)):
        return
    if not isinstance(value, Instruction):
        return
    location = positions.get(id(value))
    if location is None:
        raise IRError(
            f"{function.name}: use of detached value in "
            f"{user.opcode} ({use_block.name})")
    def_block, def_index = location
    if def_block is use_block:
        if def_index >= use_index:
            raise IRError(
                f"{function.name}/{use_block.name}: {user.opcode} uses "
                f"value before its definition")
        return
    if id(def_block) not in doms[id(use_block)]:
        raise IRError(
            f"{function.name}/{use_block.name}: definition in "
            f"{def_block.name} does not dominate use in {use_block.name}")
