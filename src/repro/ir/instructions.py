"""IR instruction set."""

from __future__ import annotations

from typing import Optional

from repro.errors import IRError
from repro.ir.types import I1, I64, PTR, VOID
from repro.ir.values import Constant, Value

BINOPS = {"add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr",
          "udiv", "urem"}
ICMP_PREDS = {"eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle",
              "sgt", "sge"}


class Instruction(Value):
    """Base instruction: a Value with operands and a parent block.

    ``no_merge`` marks intentionally redundant computations (the
    hardening pass's duplicated checksums); optimization passes that
    unify equal expressions must leave them alone.
    """

    opcode = "instruction"

    def __init__(self, vtype, operands=(), name: str = ""):
        super().__init__(vtype, name)
        self.parent = None  # BasicBlock
        self.no_merge = False
        self._operands: list[Value] = []
        for operand in operands:
            self._add_operand(operand)

    # -- operand management -------------------------------------------------

    @property
    def operands(self) -> tuple:
        return tuple(self._operands)

    def _add_operand(self, operand: Value):
        if not isinstance(operand, Value):
            raise IRError(f"operand {operand!r} is not a Value")
        self._operands.append(operand)
        operand.add_use(self)

    def set_operand(self, index: int, operand: Value):
        old = self._operands[index]
        old.remove_use(self)
        self._operands[index] = operand
        operand.add_use(self)

    def replace_operand(self, old: Value, new: Value):
        for index, operand in enumerate(self._operands):
            if operand is old:
                self.set_operand(index, new)

    def drop_operands(self):
        for operand in self._operands:
            operand.remove_use(self)
        self._operands = []

    # -- classification ------------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, CondBr, Switch, Ret, Unreachable))

    def successors(self) -> list:
        return []

    def has_side_effects(self) -> bool:
        return isinstance(self, (Store, Call, Ret, Br, CondBr, Switch,
                                 Unreachable))

    def erase(self):
        """Remove from parent block and drop operand uses."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.drop_operands()


class BinOp(Instruction):
    def __init__(self, op: str, lhs: Value, rhs: Value, name=""):
        if op not in BINOPS:
            raise IRError(f"unknown binop {op!r}")
        if lhs.type != rhs.type:
            raise IRError(f"binop type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, (lhs, rhs), name)
        self.op = op

    opcode = "binop"

    @property
    def lhs(self):
        return self._operands[0]

    @property
    def rhs(self):
        return self._operands[1]


class ICmp(Instruction):
    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name=""):
        if pred not in ICMP_PREDS:
            raise IRError(f"unknown icmp predicate {pred!r}")
        if lhs.type != rhs.type:
            raise IRError(f"icmp type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(I1, (lhs, rhs), name)
        self.pred = pred

    @property
    def lhs(self):
        return self._operands[0]

    @property
    def rhs(self):
        return self._operands[1]


class _Cast(Instruction):
    def __init__(self, value: Value, to_type, name=""):
        super().__init__(to_type, (value,), name)

    @property
    def value(self):
        return self._operands[0]


class ZExt(_Cast):
    opcode = "zext"


class SExt(_Cast):
    opcode = "sext"


class Trunc(_Cast):
    opcode = "trunc"


class IntToPtr(_Cast):
    opcode = "inttoptr"

    def __init__(self, value: Value, name=""):
        super().__init__(value, PTR, name)


class PtrToInt(_Cast):
    opcode = "ptrtoint"

    def __init__(self, value: Value, name=""):
        super().__init__(value, I64, name)


class Alloca(Instruction):
    opcode = "alloca"

    def __init__(self, allocated_type, name=""):
        super().__init__(PTR, (), name)
        self.allocated_type = allocated_type


class Load(Instruction):
    opcode = "load"

    def __init__(self, vtype, pointer: Value, name=""):
        super().__init__(vtype, (pointer,), name)

    @property
    def pointer(self):
        return self._operands[0]


class Store(Instruction):
    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        super().__init__(VOID, (value, pointer))

    @property
    def value(self):
        return self._operands[0]

    @property
    def pointer(self):
        return self._operands[1]


class Select(Instruction):
    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value,
                 name=""):
        if if_true.type != if_false.type:
            raise IRError("select arm type mismatch")
        super().__init__(if_true.type, (cond, if_true, if_false), name)


class Phi(Instruction):
    """SSA phi; incoming blocks tracked alongside operand values."""

    opcode = "phi"

    def __init__(self, vtype, name=""):
        super().__init__(vtype, (), name)
        self.incoming_blocks: list = []

    def add_incoming(self, value: Value, block):
        self._add_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> list[tuple[Value, object]]:
        return list(zip(self._operands, self.incoming_blocks))

    def incoming_for(self, block) -> Optional[Value]:
        for value, pred in self.incoming():
            if pred is block:
                return value
        return None

    def replace_incoming_block(self, old, new):
        self.incoming_blocks = [new if b is old else b
                                for b in self.incoming_blocks]

    def remove_incoming(self, block):
        for index in reversed(range(len(self.incoming_blocks))):
            if self.incoming_blocks[index] is block:
                operand = self._operands[index]
                operand.remove_use(self)
                del self._operands[index]
                del self.incoming_blocks[index]


class Call(Instruction):
    """Direct call to an intrinsic or function by name.

    ``readonly`` declares that the callee neither writes memory nor
    observes prior writes, so memory-sensitive passes (CSE's load
    epoch) may look straight through it.  Readonly calls still count
    as side-effecting for DCE: they are ordering markers (the JIT's
    flag/register intrinsics) that must survive even when unused.
    """

    opcode = "call"

    def __init__(self, vtype, callee: str, args=(), name="",
                 readonly: bool = False):
        super().__init__(vtype, tuple(args), name)
        self.callee = callee
        self.readonly = readonly


class Br(Instruction):
    opcode = "br"

    def __init__(self, target):
        super().__init__(VOID, ())
        self.target = target

    def successors(self):
        return [self.target]

    def replace_successor(self, old, new):
        if self.target is old:
            self.target = new


class CondBr(Instruction):
    opcode = "condbr"

    def __init__(self, cond: Value, if_true, if_false):
        if cond.type != I1:
            raise IRError("condbr condition must be i1")
        super().__init__(VOID, (cond,))
        self.if_true = if_true
        self.if_false = if_false

    @property
    def cond(self):
        return self._operands[0]

    def successors(self):
        return [self.if_true, self.if_false]

    def replace_successor(self, old, new):
        if self.if_true is old:
            self.if_true = new
        if self.if_false is old:
            self.if_false = new


class Switch(Instruction):
    """``switch value, default [case -> block, ...]``."""

    opcode = "switch"

    def __init__(self, value: Value, default):
        super().__init__(VOID, (value,))
        self.default = default
        self.cases: list[tuple[Constant, object]] = []

    @property
    def value(self):
        return self._operands[0]

    def add_case(self, constant: Constant, block):
        self.cases.append((constant, block))

    def successors(self):
        return [self.default] + [block for _, block in self.cases]

    def replace_successor(self, old, new):
        if self.default is old:
            self.default = new
        self.cases = [(c, new if b is old else b) for c, b in self.cases]


class Ret(Instruction):
    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, (value,) if value is not None else ())


class Unreachable(Instruction):
    opcode = "unreachable"

    def __init__(self):
        super().__init__(VOID, ())
