"""SSA compiler IR (the reproduction's LLVM-IR substitute).

A typed SSA IR with the module/function/basic-block/instruction
hierarchy the paper highlights as the reason to lift binaries: explicit
use-def chains, a builder, a verifier, a textual printer, an interpreter
(used for differential testing against the CPU emulator), and a pass
manager with the standard cleanup passes (mem2reg, DCE, constant
folding, CFG simplification).

The hybrid countermeasure of Section V-B is implemented as a pass over
this IR, exactly as the paper implements it as an LLVM optimization
pass.
"""

from repro.ir.types import (
    IntType, PointerType, VoidType, FunctionType,
    I1, I8, I16, I32, I64, PTR, VOID,
)
from repro.ir.values import Value, Constant, Argument, Undef
from repro.ir.module import IRModule, Function, BasicBlock
from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, CondBr, ICmp, IntToPtr, Load, Phi,
    PtrToInt, Ret, Select, SExt, Store, Switch, Trunc, Unreachable, ZExt,
    Instruction,
)
from repro.ir.builder import IRBuilder
from repro.ir.verifier import verify
from repro.ir.printer import print_module, print_function
from repro.ir.interp import Interpreter

__all__ = [
    "IntType", "PointerType", "VoidType", "FunctionType",
    "I1", "I8", "I16", "I32", "I64", "PTR", "VOID",
    "Value", "Constant", "Argument", "Undef",
    "IRModule", "Function", "BasicBlock",
    "Alloca", "BinOp", "Br", "Call", "CondBr", "ICmp", "IntToPtr",
    "Load", "Phi", "PtrToInt", "Ret", "Select", "SExt", "Store",
    "Switch", "Trunc", "Unreachable", "ZExt", "Instruction",
    "IRBuilder", "verify", "print_module", "print_function",
    "Interpreter",
]
