"""IR containers: module, function, basic block."""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.errors import IRError
from repro.ir.instructions import Instruction, Phi
from repro.ir.types import FunctionType
from repro.ir.values import Argument, Value


class BasicBlock(Value):
    """A label + straight-line instruction list ending in a terminator."""

    def __init__(self, name: str = ""):
        super().__init__("label", name)
        self.parent: Optional[Function] = None
        self.instructions: list[Instruction] = []
        # guest provenance metadata (set by the lifter, propagated by
        # transforms): the original address/extent this block lifts,
        # and whether the block is countermeasure code *derived* from
        # that guest block rather than a translation of it
        self.guest_address: Optional[int] = None
        self.guest_size: int = 0
        self.guest_derived: bool = False

    def set_guest_origin(self, address: Optional[int], size: int = 0,
                         derived: bool = False) -> None:
        """Attach (or propagate) guest provenance metadata."""
        self.guest_address = address
        self.guest_size = size
        self.guest_derived = derived

    def copy_guest_origin(self, other: "BasicBlock",
                          derived: bool = True) -> None:
        """Inherit another block's guest origin (for inserted blocks)."""
        self.set_guest_origin(other.guest_address, other.guest_size,
                              derived=derived or other.guest_derived)

    # -- structure -----------------------------------------------------------

    def append(self, instruction: Instruction) -> Instruction:
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        instruction.parent = self
        self.instructions.insert(index, instruction)
        return instruction

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> list["BasicBlock"]:
        terminator = self.terminator
        return terminator.successors() if terminator else []

    def predecessors(self) -> list["BasicBlock"]:
        if self.parent is None:
            return []
        return [block for block in self.parent.blocks
                if self in block.successors()]

    def phis(self) -> list[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def non_phi_index(self) -> int:
        for index, instruction in enumerate(self.instructions):
            if not isinstance(instruction, Phi):
                return index
        return len(self.instructions)

    def short_name(self) -> str:
        return f"%{self.name}"

    def __repr__(self):
        return f"BasicBlock({self.name}, {len(self.instructions)} insns)"


class Function(Value):
    """A function: arguments + ordered basic blocks."""

    def __init__(self, name: str, ftype: FunctionType,
                 arg_names: Iterable[str] = ()):
        super().__init__(ftype, name)
        self.blocks: list[BasicBlock] = []
        names = list(arg_names)
        self.args = [
            Argument(param, names[i] if i < len(names) else f"arg{i}", i)
            for i, param in enumerate(ftype.params)
        ]
        self._name_counter = itertools.count()

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "",
                  after: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(name or self.fresh_name("bb"))
        block.parent = self
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def remove_block(self, block: BasicBlock):
        for instruction in list(block.instructions):
            instruction.drop_operands()
        self.blocks.remove(block)
        block.parent = None

    def fresh_name(self, prefix: str = "v") -> str:
        return f"{prefix}{next(self._name_counter)}"

    def block_by_name(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name!r}")

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def renumber(self):
        """Assign sequential names to unnamed values (pre-printing)."""
        counter = itertools.count()
        for block in self.blocks:
            if not block.name:
                block.name = f"bb{next(counter)}"
        for instruction in self.instructions():
            if instruction.type != "label" and \
                    str(instruction.type) != "void" and \
                    not instruction.name:
                instruction.name = f"t{next(counter)}"


class IRModule:
    """A translation unit: functions + named intrinsic declarations."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: list[Function] = []
        self.aux: dict = {}

    def add_function(self, function: Function) -> Function:
        self.functions.append(function)
        return function

    def function(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function named {name!r}")
