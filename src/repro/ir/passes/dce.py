"""Dead code elimination: drop unused, side-effect-free instructions."""

from __future__ import annotations

from repro.ir.instructions import Load
from repro.ir.module import Function


def dce(function: Function, *, remove_dead_loads: bool = True) -> bool:
    """Iteratively remove values nobody uses."""
    changed = False
    progress = True
    while progress:
        progress = False
        for block in function.blocks:
            for instruction in reversed(list(block.instructions)):
                if instruction.is_terminator:
                    continue
                if instruction.has_side_effects():
                    continue
                if isinstance(instruction, Load) and not remove_dead_loads:
                    continue
                if instruction.uses:
                    continue
                instruction.erase()
                progress = True
                changed = True
    return changed
