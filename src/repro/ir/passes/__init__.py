"""IR optimization passes and the pass manager."""

from repro.ir.passes.pass_manager import PassManager
from repro.ir.passes.mem2reg import mem2reg
from repro.ir.passes.dce import dce
from repro.ir.passes.constfold import constant_fold
from repro.ir.passes.simplifycfg import simplify_cfg
from repro.ir.passes.instcount import instruction_histogram
from repro.ir.passes.cse import cse

__all__ = ["PassManager", "mem2reg", "dce", "constant_fold",
           "simplify_cfg", "instruction_histogram", "cse"]
