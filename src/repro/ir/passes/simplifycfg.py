"""CFG cleanup: unreachable blocks, constant branches, block merging."""

from __future__ import annotations

from repro.ir.instructions import Br, CondBr
from repro.ir.module import Function
from repro.ir.values import Constant


def simplify_cfg(function: Function) -> bool:
    changed = False
    changed |= _fold_constant_branches(function)
    changed |= _remove_unreachable(function)
    changed |= _merge_straight_lines(function)
    return changed


def _fold_constant_branches(function: Function) -> bool:
    changed = False
    for block in function.blocks:
        terminator = block.terminator
        if isinstance(terminator, CondBr) and \
                isinstance(terminator.cond, Constant):
            taken = (terminator.if_true if terminator.cond.unsigned
                     else terminator.if_false)
            dropped = (terminator.if_false if terminator.cond.unsigned
                       else terminator.if_true)
            terminator.erase()
            block.append(Br(taken))
            if dropped is not taken:
                for phi in dropped.phis():
                    phi.remove_incoming(block)
            changed = True
    return changed


def _remove_unreachable(function: Function) -> bool:
    reachable = set()
    stack = [function.entry]
    while stack:
        block = stack.pop()
        if id(block) in reachable:
            continue
        reachable.add(id(block))
        stack.extend(block.successors())
    dead = [b for b in function.blocks if id(b) not in reachable]
    for block in dead:
        for successor in block.successors():
            if id(successor) in reachable:
                for phi in successor.phis():
                    phi.remove_incoming(block)
        function.remove_block(block)
    return bool(dead)


def _merge_straight_lines(function: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for block in list(function.blocks):
            terminator = block.terminator
            if not isinstance(terminator, Br):
                continue
            successor = terminator.target
            if successor is block or successor is function.entry:
                continue
            if len(successor.predecessors()) != 1:
                continue
            if successor.phis():
                for phi in successor.phis():
                    value = phi.incoming_for(block)
                    phi.replace_all_uses_with(value)
                    phi.erase()
            terminator.erase()
            # merging adjacent guest blocks extends the survivor's
            # guest extent, keeping block-level provenance contiguous
            if block.guest_address is not None and \
                    successor.guest_address is not None and \
                    not (block.guest_derived or
                         successor.guest_derived) and \
                    block.guest_address + block.guest_size == \
                    successor.guest_address:
                block.guest_size += successor.guest_size
            for instruction in list(successor.instructions):
                successor.instructions.remove(instruction)
                block.append(instruction)
            # successors of the merged block may hold phi references
            for next_block in block.successors():
                for phi in next_block.phis():
                    phi.replace_incoming_block(successor, block)
            function.remove_block(successor)
            progress = True
            changed = True
    return changed
