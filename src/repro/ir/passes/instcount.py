"""Instruction histograms (the Table IV metric)."""

from __future__ import annotations

from collections import Counter

from repro.ir.instructions import BinOp, ICmp
from repro.ir.module import Function


def instruction_histogram(function: Function) -> Counter:
    """Count instructions by concrete opcode (binops by operator)."""
    histogram: Counter = Counter()
    for instruction in function.instructions():
        if isinstance(instruction, BinOp):
            histogram[instruction.op] += 1
        elif isinstance(instruction, ICmp):
            histogram["icmp"] += 1
        else:
            histogram[instruction.opcode] += 1
    return histogram


def histogram_delta(before: Counter, after: Counter) -> Counter:
    """after - before, keeping negative entries."""
    delta: Counter = Counter()
    for key in set(before) | set(after):
        diff = after.get(key, 0) - before.get(key, 0)
        if diff:
            delta[key] = diff
    return delta
