"""Sequential pass manager with verification between passes."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.ir.module import Function, IRModule
from repro.ir.verifier import verify

FunctionPass = Callable[[Function], bool]


class PassManager:
    """Runs function passes in order; optionally verifies after each."""

    def __init__(self, passes: Sequence[tuple[str, FunctionPass]] = (),
                 verify_each: bool = True):
        self.passes: list[tuple[str, FunctionPass]] = list(passes)
        self.verify_each = verify_each
        self.log: list[tuple[str, str, bool]] = []

    def add(self, name: str, function_pass: FunctionPass):
        self.passes.append((name, function_pass))
        return self

    def run(self, target: IRModule | Function) -> bool:
        functions = (target.functions if isinstance(target, IRModule)
                     else [target])
        changed_any = False
        for function in functions:
            for name, function_pass in self.passes:
                changed = bool(function_pass(function))
                self.log.append((function.name, name, changed))
                changed_any |= changed
                if self.verify_each:
                    verify(function)
        return changed_any


def standard_cleanup() -> PassManager:
    """The default lift-side pipeline: mem2reg + folding + DCE + CFG."""
    from repro.ir.passes.constfold import constant_fold
    from repro.ir.passes.dce import dce
    from repro.ir.passes.mem2reg import mem2reg
    from repro.ir.passes.simplifycfg import simplify_cfg
    return PassManager([
        ("mem2reg", mem2reg),
        ("simplifycfg", simplify_cfg),
        ("constfold", constant_fold),
        ("dce", dce),
        ("simplifycfg", simplify_cfg),
        ("dce", dce),
    ])
