"""Promote non-escaping allocas to SSA registers.

Classic SSA construction: phi placement on iterated dominance frontiers
followed by a dominator-tree renaming walk.  This is the pass that turns
the lifter's explicit guest-state slots (registers, flags) into clean
SSA values the branch-hardening pass can work with.
"""

from __future__ import annotations

from repro.ir.instructions import Alloca, Load, Phi, Store
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Undef
from repro.ir.verifier import _dom_tree


def _promotable(alloca: Alloca) -> bool:
    for user in alloca.users:
        if isinstance(user, Load):
            continue
        if isinstance(user, Store) and user.pointer is alloca and \
                user.value is not alloca:
            continue
        return False
    return True


def mem2reg(function: Function) -> bool:
    allocas = [i for i in function.entry.instructions
               if isinstance(i, Alloca) and _promotable(i)]
    if not allocas:
        return False

    idom = _dom_tree(function)
    reachable = set(idom)
    children: dict[int, list[BasicBlock]] = {}
    for block in function.blocks:
        if id(block) not in idom:
            continue
        parent = idom[id(block)]
        if parent is not block:
            children.setdefault(id(parent), []).append(block)

    frontiers = _dominance_frontiers(function, idom)

    # --- phi placement ---------------------------------------------------
    phi_sites: dict[int, dict[int, Phi]] = {id(a): {} for a in allocas}
    for alloca in allocas:
        work = [user.parent for user in alloca.users
                if isinstance(user, Store)]
        placed: set[int] = set()
        while work:
            block = work.pop()
            for frontier_block in frontiers.get(id(block), ()):
                if id(frontier_block) in placed or \
                        id(frontier_block) not in reachable:
                    continue
                placed.add(id(frontier_block))
                phi = Phi(alloca.allocated_type,
                          function.fresh_name(alloca.name or "m2r"))
                frontier_block.insert(0, phi)
                phi_sites[id(alloca)][id(frontier_block)] = phi
                work.append(frontier_block)

    phi_owner = {
        id(phi): alloca
        for alloca in allocas
        for phi in phi_sites[id(alloca)].values()
    }

    # --- renaming walk over the dominator tree ------------------------------
    def rename(block: BasicBlock, incoming: dict):
        incoming = dict(incoming)
        for instruction in list(block.instructions):
            if isinstance(instruction, Phi) and \
                    id(instruction) in phi_owner:
                incoming[id(phi_owner[id(instruction)])] = instruction
            elif isinstance(instruction, Load) and \
                    isinstance(instruction.pointer, Alloca) and \
                    id(instruction.pointer) in incoming_keys:
                value = incoming.get(id(instruction.pointer))
                if value is None:
                    value = Undef(instruction.type)
                instruction.replace_all_uses_with(value)
                instruction.erase()
            elif isinstance(instruction, Store) and \
                    isinstance(instruction.pointer, Alloca) and \
                    id(instruction.pointer) in incoming_keys:
                incoming[id(instruction.pointer)] = instruction.value
                instruction.erase()
        for successor in block.successors():
            for phi in successor.phis():
                alloca = phi_owner.get(id(phi))
                if alloca is None:
                    continue
                value = incoming.get(id(alloca))
                if value is None:
                    value = Undef(phi.type)
                phi.add_incoming(value, block)
        for child in children.get(id(block), ()):
            rename(child, incoming)

    incoming_keys = {id(a) for a in allocas}
    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, len(function.blocks) * 4 + 1000))
    try:
        rename(function.entry, {})
    finally:
        sys.setrecursionlimit(old_limit)

    for alloca in allocas:
        alloca.erase()
    return True


def _dominance_frontiers(function: Function, idom) -> dict:
    frontiers: dict[int, list[BasicBlock]] = {}
    for block in function.blocks:
        if id(block) not in idom:
            continue
        preds = [p for p in block.predecessors() if id(p) in idom]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner = pred
            while runner is not idom[id(block)]:
                frontiers.setdefault(id(runner), [])
                if block not in frontiers[id(runner)]:
                    frontiers[id(runner)].append(block)
                runner = idom[id(runner)]
    return frontiers
