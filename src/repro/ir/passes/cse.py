"""Common subexpression elimination (block-local value numbering).

Redundancy-based fault countermeasures are *intentional* common
subexpressions: the branch-hardening pass computes the edge checksum
twice and re-evaluates the comparison precisely so that one fault
cannot corrupt both copies.  A standard CSE pass would merge them and
silently undo the protection — the reason the paper's LLVM
implementation must mark its duplicates volatile.

Instructions carrying ``no_merge=True`` are therefore never unified
(unless ``respect_no_merge=False``, which exists for the ablation that
demonstrates the protection collapsing).
"""

from __future__ import annotations

from repro.ir.instructions import (
    BinOp, Call, ICmp, Load, SExt, Store, Trunc, ZExt)
from repro.ir.module import Function
from repro.ir.values import Constant, Value

_COMMUTATIVE = {"add", "mul", "and", "or", "xor"}


def _operand_key(value: Value):
    """Constants compare by value, everything else by identity."""
    if isinstance(value, Constant):
        return ("const", str(value.type), value.value)
    return ("val", id(value))


def _key(instruction, memory_epoch: int):
    if isinstance(instruction, BinOp):
        lhs = _operand_key(instruction.lhs)
        rhs = _operand_key(instruction.rhs)
        if instruction.op in _COMMUTATIVE and rhs < lhs:
            lhs, rhs = rhs, lhs
        return ("binop", instruction.op, lhs, rhs,
                str(instruction.type))
    if isinstance(instruction, ICmp):
        return ("icmp", instruction.pred,
                _operand_key(instruction.lhs),
                _operand_key(instruction.rhs))
    if isinstance(instruction, (ZExt, SExt, Trunc)):
        return (instruction.opcode, _operand_key(instruction.value),
                str(instruction.type))
    if isinstance(instruction, Load):
        # loads are only redundant within one memory epoch
        return ("load", _operand_key(instruction.pointer),
                str(instruction.type), memory_epoch)
    return None


def cse(function: Function, respect_no_merge: bool = True) -> bool:
    """Eliminate block-local redundant computations."""
    changed = False
    for block in function.blocks:
        available: dict = {}
        memory_epoch = 0
        for instruction in list(block.instructions):
            if isinstance(instruction, Store) or (
                    isinstance(instruction, Call)
                    and not getattr(instruction, "readonly", False)):
                memory_epoch += 1
            key = _key(instruction, memory_epoch)
            if key is None:
                continue
            if respect_no_merge and getattr(instruction, "no_merge",
                                            False):
                continue
            existing = available.get(key)
            if existing is not None:
                instruction.replace_all_uses_with(existing)
                instruction.erase()
                changed = True
            else:
                available[key] = instruction
    return changed
