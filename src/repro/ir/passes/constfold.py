"""Constant folding for binops, icmps, casts and selects."""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.instructions import (
    BinOp, ICmp, Select, SExt, Trunc, ZExt)
from repro.ir.module import Function
from repro.ir.values import Constant


def _signed(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _fold_binop(i: BinOp) -> int:
    bits = i.type.bits
    mask = i.type.mask
    a = i.lhs.unsigned
    b = i.rhs.unsigned
    op = i.op
    if op == "add":
        return (a + b) & mask
    if op == "sub":
        return (a - b) & mask
    if op == "mul":
        return (a * b) & mask
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << b) & mask if b < bits else 0
    if op == "lshr":
        return a >> b if b < bits else 0
    if op == "ashr":
        shift = min(b, bits - 1)
        return (_signed(a, bits) >> shift) & mask
    if op == "udiv":
        return (a // b) & mask if b else 0
    if op == "urem":
        return (a % b) & mask if b else 0
    raise IRError(f"cannot fold {op}")


def _fold_icmp(i: ICmp) -> bool:
    bits = i.lhs.type.bits
    a, b = i.lhs.unsigned, i.rhs.unsigned
    sa, sb = _signed(a, bits), _signed(b, bits)
    return {
        "eq": a == b, "ne": a != b,
        "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b,
        "slt": sa < sb, "sle": sa <= sb, "sgt": sa > sb, "sge": sa >= sb,
    }[i.pred]


def _algebraic(i: BinOp):
    """Identity simplifications (``xor x,x -> 0`` and friends).

    Besides shrinking code, folding ``xor x, x`` removes a
    single-instruction zeroing idiom that an instruction-skip fault
    could otherwise corrupt.
    """
    lhs, rhs = i.lhs, i.rhs
    same = lhs is rhs
    rhs_zero = isinstance(rhs, Constant) and rhs.unsigned == 0
    rhs_one = isinstance(rhs, Constant) and rhs.unsigned == 1
    if i.op in ("xor", "sub") and same:
        return Constant(i.type, 0)
    if i.op in ("and", "or") and same:
        return lhs
    if i.op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr") and \
            rhs_zero:
        return lhs
    if i.op == "and" and rhs_zero:
        return Constant(i.type, 0)
    if i.op == "mul" and rhs_one:
        return lhs
    if i.op == "mul" and rhs_zero:
        return Constant(i.type, 0)
    return None


def constant_fold(function: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for block in function.blocks:
            for instruction in list(block.instructions):
                replacement = None
                if isinstance(instruction, BinOp) and \
                        isinstance(instruction.lhs, Constant) and \
                        isinstance(instruction.rhs, Constant):
                    replacement = Constant(instruction.type,
                                           _fold_binop(instruction))
                elif isinstance(instruction, BinOp):
                    replacement = _algebraic(instruction)
                elif isinstance(instruction, ICmp) and \
                        isinstance(instruction.lhs, Constant) and \
                        isinstance(instruction.rhs, Constant):
                    replacement = Constant(instruction.type,
                                           1 if _fold_icmp(instruction)
                                           else 0)
                elif isinstance(instruction, (ZExt, Trunc)) and \
                        isinstance(instruction.value, Constant):
                    replacement = Constant(
                        instruction.type,
                        instruction.value.unsigned & instruction.type.mask)
                elif isinstance(instruction, SExt) and \
                        isinstance(instruction.value, Constant):
                    replacement = Constant(instruction.type,
                                           instruction.value.value)
                elif isinstance(instruction, Select) and \
                        isinstance(instruction.operands[0], Constant):
                    cond, if_true, if_false = instruction.operands
                    chosen = if_true if cond.unsigned else if_false
                    if isinstance(chosen, Constant):
                        replacement = chosen
                if replacement is not None:
                    instruction.replace_all_uses_with(replacement)
                    instruction.erase()
                    progress = True
                    changed = True
    return changed
