"""Instruction encoder: :class:`~repro.isa.insn.Instruction` -> bytes.

Implements genuine x86-64 machine encodings (REX prefixes, ModRM, SIB,
displacements, immediates) for the supported subset.  Symbolic operands
(:class:`~repro.isa.operands.Label`) must be resolved before encoding;
the assembler guarantees this.

Encoding-form selection is deterministic so that instruction lengths can
be computed in the assembler's first pass:

* relative branches always use the rel32 forms,
* ALU immediates use the imm8 form only when ``Imm.size == 1`` or the
  value was literal and fits a signed byte (the assembler canonicalizes
  this into ``Imm.size``),
* ``mov r64, imm`` uses ``C7 /0 id`` for values fitting a signed 32-bit
  immediate and the ``B8+rd io`` (movabs) form otherwise or when
  ``Imm.size == 8`` is forced (used for address materialization, which
  gives the symbolizer real work to do).
"""

from __future__ import annotations

import struct

from repro.errors import EncodingError
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm, Label, Mem, Reg

REX_W = 0x8
REX_R = 0x4
REX_X = 0x2
REX_B = 0x1

_ALU_BASE = {
    Mnemonic.ADD: 0x00,
    Mnemonic.OR: 0x08,
    Mnemonic.AND: 0x20,
    Mnemonic.SUB: 0x28,
    Mnemonic.XOR: 0x30,
    Mnemonic.CMP: 0x38,
}
_ALU_EXT = {
    Mnemonic.ADD: 0,
    Mnemonic.OR: 1,
    Mnemonic.AND: 4,
    Mnemonic.SUB: 5,
    Mnemonic.XOR: 6,
    Mnemonic.CMP: 7,
}
_SHIFT_EXT = {Mnemonic.SHL: 4, Mnemonic.SHR: 5, Mnemonic.SAR: 7}


def _check_resolved(operand):
    if isinstance(operand, Label):
        raise EncodingError(f"unresolved symbolic operand {operand}")
    if isinstance(operand, Mem) and isinstance(operand.disp, Label):
        raise EncodingError(f"unresolved displacement in {operand}")


def _pack_imm(value: int, size: int) -> bytes:
    """Pack a signed/unsigned immediate of ``size`` bytes."""
    limit = 1 << (size * 8)
    if not (-(limit // 2) <= value < limit):
        raise EncodingError(f"immediate {value:#x} does not fit {size} bytes")
    return (value % limit).to_bytes(size, "little")


def _disp_mode(disp: int, base_code: int) -> tuple[int, bytes]:
    """Choose ModRM ``mod`` bits and displacement bytes for a base reg."""
    if disp == 0 and (base_code & 7) != 5:
        return 0, b""
    if -128 <= disp <= 127:
        return 1, struct.pack("<b", disp)
    return 2, struct.pack("<i", disp)


def _mem_modrm(reg_field: int, mem: Mem) -> tuple[int, bytes]:
    """Encode ModRM(+SIB+disp) for a memory operand.

    Returns ``(rex_bits, encoded_bytes)`` where ``rex_bits`` carries the
    R/X/B extension flags required by the operand.
    """
    rex = REX_R if reg_field >= 8 else 0
    disp = mem.disp
    if mem.is_rip_relative:
        modrm = ((reg_field & 7) << 3) | 0b101
        return rex, bytes([modrm]) + struct.pack("<i", disp)
    base, index = mem.base, mem.index
    needs_sib = (
        index is not None or base is None or (base.code & 7) == 4)
    if not needs_sib:
        if base.code >= 8:
            rex |= REX_B
        mod, disp_bytes = _disp_mode(disp, base.code)
        modrm = (mod << 6) | ((reg_field & 7) << 3) | (base.code & 7)
        return rex, bytes([modrm]) + disp_bytes
    scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[mem.scale]
    if index is not None:
        if index.code >= 8:
            rex |= REX_X
        index_bits = index.code & 7
    else:
        index_bits = 0b100
    if base is None:
        sib = (scale_bits << 6) | (index_bits << 3) | 0b101
        modrm = ((reg_field & 7) << 3) | 0b100
        return rex, bytes([modrm, sib]) + struct.pack("<i", disp)
    if base.code >= 8:
        rex |= REX_B
    mod, disp_bytes = _disp_mode(disp, base.code)
    sib = (scale_bits << 6) | (index_bits << 3) | (base.code & 7)
    modrm = (mod << 6) | ((reg_field & 7) << 3) | 0b100
    return rex, bytes([modrm, sib]) + disp_bytes


def _rm_modrm(reg_field: int, rm) -> tuple[int, bytes]:
    """ModRM for a register-or-memory operand."""
    if isinstance(rm, Reg):
        rex = REX_R if reg_field >= 8 else 0
        if rm.register.code >= 8:
            rex |= REX_B
        modrm = (0b11 << 6) | ((reg_field & 7) << 3) | (rm.register.code & 7)
        return rex, bytes([modrm])
    return _mem_modrm(reg_field, rm)


def _needs_rex_presence(*operands) -> bool:
    for op in operands:
        if isinstance(op, Reg) and op.register.needs_rex_presence:
            return True
    return False


def _assemble(opcode: bytes, rex: int, tail: bytes,
              force_rex: bool = False) -> bytes:
    if rex or force_rex:
        return bytes([0x40 | rex]) + opcode + tail
    return opcode + tail


def _op_width(insn: Instruction) -> int:
    """Common operand width in bytes (1, 4 or 8) for sized operands."""
    sizes = {
        op.size for op in insn.operands
        if isinstance(op, (Reg, Mem))
    }
    if not sizes:
        return 8
    if len(sizes) > 1 and insn.mnemonic not in (Mnemonic.MOVZX,):
        raise EncodingError(f"operand size mismatch in '{insn}'")
    return max(sizes)


def _imm_fits8(imm: Imm) -> bool:
    if imm.size == 1:
        return True
    if imm.size == 0:
        return -128 <= imm.value <= 127
    return False


def encode(insn: Instruction) -> bytes:
    """Encode ``insn`` to machine code bytes.

    Raises :class:`~repro.errors.EncodingError` for unsupported forms or
    unresolved symbolic operands.
    """
    for operand in insn.operands:
        _check_resolved(operand)
    handler = _HANDLERS.get(insn.mnemonic)
    if handler is None:
        raise EncodingError(f"unsupported mnemonic {insn.mnemonic}")
    return handler(insn)


# --------------------------------------------------------------------------
# per-mnemonic handlers
# --------------------------------------------------------------------------

def _enc_alu(insn: Instruction) -> bytes:
    base = _ALU_BASE[insn.mnemonic]
    ext = _ALU_EXT[insn.mnemonic]
    if len(insn.operands) != 2:
        raise EncodingError(f"'{insn}' needs two operands")
    dst, src = insn.operands
    width = _op_width(insn)
    wbit = REX_W if width == 8 else 0
    force_rex = _needs_rex_presence(dst, src)
    if isinstance(src, Reg):
        # rm, reg form
        opcode = base + (1 if width != 1 else 0)
        rex, modrm = _rm_modrm(src.register.code, dst)
        return _assemble(bytes([opcode]), rex | wbit, modrm, force_rex)
    if isinstance(src, Mem) and isinstance(dst, Reg):
        opcode = base + (3 if width != 1 else 2)
        rex, modrm = _rm_modrm(dst.register.code, src)
        return _assemble(bytes([opcode]), rex | wbit, modrm, force_rex)
    if isinstance(src, Imm):
        rex, modrm = _rm_modrm(ext, dst)
        if width == 1:
            return _assemble(bytes([0x80]), rex, modrm
                             + _pack_imm(src.value, 1), force_rex)
        if _imm_fits8(src):
            return _assemble(bytes([0x83]), rex | wbit,
                             modrm + _pack_imm(src.value, 1), force_rex)
        return _assemble(bytes([0x81]), rex | wbit,
                         modrm + _pack_imm(src.value, 4), force_rex)
    raise EncodingError(f"unsupported operand combination in '{insn}'")


def _enc_test(insn: Instruction) -> bytes:
    dst, src = insn.operands
    width = _op_width(insn)
    wbit = REX_W if width == 8 else 0
    force_rex = _needs_rex_presence(dst, src)
    if isinstance(src, Reg):
        opcode = 0x85 if width != 1 else 0x84
        rex, modrm = _rm_modrm(src.register.code, dst)
        return _assemble(bytes([opcode]), rex | wbit, modrm, force_rex)
    if isinstance(src, Imm):
        rex, modrm = _rm_modrm(0, dst)
        if width == 1:
            return _assemble(bytes([0xF6]), rex,
                             modrm + _pack_imm(src.value, 1), force_rex)
        return _assemble(bytes([0xF7]), rex | wbit,
                         modrm + _pack_imm(src.value, 4), force_rex)
    raise EncodingError(f"unsupported operand combination in '{insn}'")


def _enc_mov(insn: Instruction) -> bytes:
    dst, src = insn.operands
    width = _op_width(insn)
    wbit = REX_W if width == 8 else 0
    force_rex = _needs_rex_presence(dst, src)
    if isinstance(src, Reg):
        opcode = 0x89 if width != 1 else 0x88
        rex, modrm = _rm_modrm(src.register.code, dst)
        return _assemble(bytes([opcode]), rex | wbit, modrm, force_rex)
    if isinstance(src, Mem) and isinstance(dst, Reg):
        opcode = 0x8B if width != 1 else 0x8A
        rex, modrm = _rm_modrm(dst.register.code, src)
        return _assemble(bytes([opcode]), rex | wbit, modrm, force_rex)
    if isinstance(src, Imm):
        if width == 1:
            rex, modrm = _rm_modrm(0, dst)
            return _assemble(bytes([0xC6]), rex,
                             modrm + _pack_imm(src.value, 1), force_rex)
        fits32 = -(1 << 31) <= src.value < (1 << 31)
        if isinstance(dst, Reg) and (src.size == 8 or
                                     (width == 8 and not fits32)):
            # movabs r64, imm64
            rex = REX_W | (REX_B if dst.register.code >= 8 else 0)
            opcode = bytes([0xB8 + (dst.register.code & 7)])
            return _assemble(opcode, rex, _pack_imm(src.value, 8))
        if isinstance(dst, Reg) and width == 4:
            rex = REX_B if dst.register.code >= 8 else 0
            opcode = bytes([0xB8 + (dst.register.code & 7)])
            return _assemble(opcode, rex, _pack_imm(src.value, 4), force_rex)
        rex, modrm = _rm_modrm(0, dst)
        return _assemble(bytes([0xC7]), rex | wbit,
                         modrm + _pack_imm(src.value, 4), force_rex)
    raise EncodingError(f"unsupported operand combination in '{insn}'")


def _enc_movzx(insn: Instruction) -> bytes:
    dst, src = insn.operands
    if not isinstance(dst, Reg) or dst.size == 1:
        raise EncodingError(f"movzx destination must be r32/r64 in '{insn}'")
    if not isinstance(src, (Reg, Mem)) or src.size != 1:
        raise EncodingError(f"movzx source must be 8-bit in '{insn}'")
    wbit = REX_W if dst.size == 8 else 0
    rex, modrm = _rm_modrm(dst.register.code, src)
    force_rex = _needs_rex_presence(src)
    return _assemble(bytes([0x0F, 0xB6]), rex | wbit, modrm, force_rex)


def _enc_lea(insn: Instruction) -> bytes:
    dst, src = insn.operands
    if not isinstance(dst, Reg) or not isinstance(src, Mem):
        raise EncodingError(f"lea expects reg, mem in '{insn}'")
    wbit = REX_W if dst.size == 8 else 0
    rex, modrm = _rm_modrm(dst.register.code, src)
    return _assemble(bytes([0x8D]), rex | wbit, modrm)


def _enc_imul(insn: Instruction) -> bytes:
    dst, src = insn.operands
    if not isinstance(dst, Reg) or dst.size == 1:
        raise EncodingError(f"imul destination must be r32/r64 in '{insn}'")
    wbit = REX_W if dst.size == 8 else 0
    rex, modrm = _rm_modrm(dst.register.code, src)
    return _assemble(bytes([0x0F, 0xAF]), rex | wbit, modrm)


def _enc_unary_f7(ext: int):
    def handler(insn: Instruction) -> bytes:
        (dst,) = insn.operands
        width = _op_width(insn)
        wbit = REX_W if width == 8 else 0
        rex, modrm = _rm_modrm(ext, dst)
        opcode = 0xF7 if width != 1 else 0xF6
        return _assemble(bytes([opcode]), rex | wbit, modrm,
                         _needs_rex_presence(dst))
    return handler


def _enc_incdec(ext: int):
    def handler(insn: Instruction) -> bytes:
        (dst,) = insn.operands
        width = _op_width(insn)
        wbit = REX_W if width == 8 else 0
        rex, modrm = _rm_modrm(ext, dst)
        opcode = 0xFF if width != 1 else 0xFE
        return _assemble(bytes([opcode]), rex | wbit, modrm,
                         _needs_rex_presence(dst))
    return handler


def _enc_shift(insn: Instruction) -> bytes:
    dst, amount = insn.operands
    ext = _SHIFT_EXT[insn.mnemonic]
    width = _op_width(Instruction(insn.mnemonic, (dst,)))
    wbit = REX_W if width == 8 else 0
    rex, modrm = _rm_modrm(ext, dst)
    force_rex = _needs_rex_presence(dst)
    if isinstance(amount, Imm):
        opcode = 0xC1 if width != 1 else 0xC0
        return _assemble(bytes([opcode]), rex | wbit,
                         modrm + _pack_imm(amount.value, 1), force_rex)
    if isinstance(amount, Reg) and amount.register.name == "cl":
        opcode = 0xD3 if width != 1 else 0xD2
        return _assemble(bytes([opcode]), rex | wbit, modrm, force_rex)
    raise EncodingError(f"shift amount must be imm8 or cl in '{insn}'")


def _enc_push(insn: Instruction) -> bytes:
    (src,) = insn.operands
    if isinstance(src, Reg):
        if src.size != 8:
            raise EncodingError("push takes a 64-bit register")
        rex = REX_B if src.register.code >= 8 else 0
        return _assemble(bytes([0x50 + (src.register.code & 7)]), rex, b"")
    if isinstance(src, Imm):
        if _imm_fits8(src):
            return bytes([0x6A]) + _pack_imm(src.value, 1)
        return bytes([0x68]) + _pack_imm(src.value, 4)
    if isinstance(src, Mem):
        rex, modrm = _rm_modrm(6, src)
        return _assemble(bytes([0xFF]), rex, modrm)
    raise EncodingError(f"unsupported push operand in '{insn}'")


def _enc_pop(insn: Instruction) -> bytes:
    (dst,) = insn.operands
    if isinstance(dst, Reg):
        if dst.size != 8:
            raise EncodingError("pop takes a 64-bit register")
        rex = REX_B if dst.register.code >= 8 else 0
        return _assemble(bytes([0x58 + (dst.register.code & 7)]), rex, b"")
    if isinstance(dst, Mem):
        rex, modrm = _rm_modrm(0, dst)
        return _assemble(bytes([0x8F]), rex, modrm)
    raise EncodingError(f"unsupported pop operand in '{insn}'")


def _enc_jmp(insn: Instruction) -> bytes:
    (target,) = insn.operands
    if isinstance(target, Imm):
        return bytes([0xE9]) + _pack_imm(target.value, 4)
    rex, modrm = _rm_modrm(4, target)
    return _assemble(bytes([0xFF]), rex, modrm)


def _enc_jcc(insn: Instruction) -> bytes:
    (target,) = insn.operands
    if not isinstance(target, Imm):
        raise EncodingError("conditional jumps are direct-only")
    return bytes([0x0F, 0x80 + insn.cond.value]) + _pack_imm(target.value, 4)


def _enc_call(insn: Instruction) -> bytes:
    (target,) = insn.operands
    if isinstance(target, Imm):
        return bytes([0xE8]) + _pack_imm(target.value, 4)
    rex, modrm = _rm_modrm(2, target)
    return _assemble(bytes([0xFF]), rex, modrm)


def _enc_setcc(insn: Instruction) -> bytes:
    (dst,) = insn.operands
    if not isinstance(dst, (Reg, Mem)) or dst.size != 1:
        raise EncodingError(f"setcc needs an 8-bit destination in '{insn}'")
    rex, modrm = _rm_modrm(0, dst)
    return _assemble(bytes([0x0F, 0x90 + insn.cond.value]), rex, modrm,
                     _needs_rex_presence(dst))


def _enc_cmovcc(insn: Instruction) -> bytes:
    dst, src = insn.operands
    if not isinstance(dst, Reg) or dst.size == 1:
        raise EncodingError(f"cmovcc destination must be r32/r64 in '{insn}'")
    wbit = REX_W if dst.size == 8 else 0
    rex, modrm = _rm_modrm(dst.register.code, src)
    return _assemble(bytes([0x0F, 0x40 + insn.cond.value]), rex | wbit, modrm)


def _fixed(code: bytes):
    def handler(insn: Instruction) -> bytes:
        if insn.operands:
            raise EncodingError(f"'{insn.name}' takes no operands")
        return code
    return handler


_HANDLERS = {
    Mnemonic.ADD: _enc_alu,
    Mnemonic.OR: _enc_alu,
    Mnemonic.AND: _enc_alu,
    Mnemonic.SUB: _enc_alu,
    Mnemonic.XOR: _enc_alu,
    Mnemonic.CMP: _enc_alu,
    Mnemonic.TEST: _enc_test,
    Mnemonic.MOV: _enc_mov,
    Mnemonic.MOVZX: _enc_movzx,
    Mnemonic.LEA: _enc_lea,
    Mnemonic.IMUL: _enc_imul,
    Mnemonic.NOT: _enc_unary_f7(2),
    Mnemonic.NEG: _enc_unary_f7(3),
    Mnemonic.INC: _enc_incdec(0),
    Mnemonic.DEC: _enc_incdec(1),
    Mnemonic.SHL: _enc_shift,
    Mnemonic.SHR: _enc_shift,
    Mnemonic.SAR: _enc_shift,
    Mnemonic.PUSH: _enc_push,
    Mnemonic.POP: _enc_pop,
    Mnemonic.PUSHFQ: _fixed(bytes([0x9C])),
    Mnemonic.POPFQ: _fixed(bytes([0x9D])),
    Mnemonic.JMP: _enc_jmp,
    Mnemonic.JCC: _enc_jcc,
    Mnemonic.CALL: _enc_call,
    Mnemonic.RET: _fixed(bytes([0xC3])),
    Mnemonic.SETCC: _enc_setcc,
    Mnemonic.CMOVCC: _enc_cmovcc,
    Mnemonic.NOP: _fixed(bytes([0x90])),
    Mnemonic.SYSCALL: _fixed(bytes([0x0F, 0x05])),
    Mnemonic.HLT: _fixed(bytes([0xF4])),
    Mnemonic.INT3: _fixed(bytes([0xCC])),
    Mnemonic.UD2: _fixed(bytes([0x0F, 0x0B])),
}


def encoded_length(insn: Instruction) -> int:
    """Length in bytes of the encoding of ``insn``.

    Symbolic operands are assumed to take their canonical wide forms
    (rel32 / disp32 / imm32 / imm64-movabs), matching what the assembler
    emits after resolution, so the result is stable across passes.
    """
    resolved = _resolve_placeholder(insn)
    return len(encode(resolved))


def _resolve_placeholder(insn: Instruction) -> Instruction:
    """Replace symbolic operands with size-stable dummies."""
    new_ops = []
    for op in insn.operands:
        if isinstance(op, Label):
            if insn.mnemonic in (Mnemonic.JMP, Mnemonic.JCC, Mnemonic.CALL):
                new_ops.append(Imm(0x1000, 4))
            elif insn.mnemonic is Mnemonic.MOV:
                # address materialization -> movabs imm64
                new_ops.append(Imm(0, 8))
            else:
                new_ops.append(Imm(0x7FFFFF0, 4))  # imm32 address reference
        elif isinstance(op, Mem) and isinstance(op.disp, Label):
            new_ops.append(Mem(op.base, op.index, op.scale, 0x7FFFFF0,
                               op.size))
        else:
            new_ops.append(op)
    return insn.with_operands(*new_ops)
