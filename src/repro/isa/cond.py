"""Condition codes shared by ``j<cc>``, ``set<cc>`` and ``cmov<cc>``.

The 4-bit ``code`` is the hardware condition encoding appended to the
opcode bases (``0F 80+cc`` for jumps, ``0F 90+cc`` for setcc).
"""

from __future__ import annotations

import enum


class Cond(enum.Enum):
    """x86 condition code with its hardware encoding."""

    O = 0x0     # overflow
    NO = 0x1    # not overflow
    B = 0x2     # below (CF=1)
    AE = 0x3    # above or equal (CF=0)
    E = 0x4     # equal (ZF=1)
    NE = 0x5    # not equal (ZF=0)
    BE = 0x6    # below or equal (CF=1 or ZF=1)
    A = 0x7     # above (CF=0 and ZF=0)
    S = 0x8     # sign (SF=1)
    NS = 0x9    # not sign (SF=0)
    P = 0xA     # parity (PF=1)
    NP = 0xB    # not parity (PF=0)
    L = 0xC     # less (SF!=OF)
    GE = 0xD    # greater or equal (SF=OF)
    LE = 0xE    # less or equal (ZF=1 or SF!=OF)
    G = 0xF     # greater (ZF=0 and SF=OF)

    @property
    def inverted(self) -> "Cond":
        """The complementary condition (flip the low encoding bit)."""
        return Cond(self.value ^ 1)

    @property
    def suffix(self) -> str:
        """Assembly suffix, e.g. ``"ne"`` for :attr:`Cond.NE`."""
        return self.name.lower()

    def evaluate(self, flags: "object") -> bool:
        """Evaluate the condition against a flags provider.

        ``flags`` must expose boolean attributes ``cf``, ``zf``, ``sf``,
        ``of``, ``pf`` (the emulator's flags object satisfies this).
        """
        base = self.value & ~1
        if base == 0x0:
            result = flags.of
        elif base == 0x2:
            result = flags.cf
        elif base == 0x4:
            result = flags.zf
        elif base == 0x6:
            result = flags.cf or flags.zf
        elif base == 0x8:
            result = flags.sf
        elif base == 0xA:
            result = flags.pf
        elif base == 0xC:
            result = flags.sf != flags.of
        else:  # 0xE
            result = flags.zf or (flags.sf != flags.of)
        if self.value & 1:
            result = not result
        return result


_BY_SUFFIX = {cond.suffix: cond for cond in Cond}
# Common aliases accepted by assemblers.
_BY_SUFFIX.update(
    {
        "z": Cond.E,
        "nz": Cond.NE,
        "c": Cond.B,
        "nc": Cond.AE,
        "nae": Cond.B,
        "nb": Cond.AE,
        "na": Cond.BE,
        "nbe": Cond.A,
        "pe": Cond.P,
        "po": Cond.NP,
        "nge": Cond.L,
        "nl": Cond.GE,
        "ng": Cond.LE,
        "nle": Cond.G,
    }
)


def cond_from_suffix(suffix: str) -> Cond:
    """Parse an assembly condition suffix (``"e"``, ``"nz"``, ...)."""
    try:
        return _BY_SUFFIX[suffix.lower()]
    except KeyError:
        raise KeyError(f"unknown condition suffix: {suffix!r}") from None
