"""Operand model for the x86-64 subset.

Four operand kinds:

* :class:`Reg` — a register view,
* :class:`Imm` — an immediate (also used for branch displacements once
  resolved),
* :class:`Mem` — a memory reference ``[base + index*scale + disp]`` with
  an explicit access ``size``; ``base`` may be the RIP pseudo-register
  for RIP-relative addressing,
* :class:`Label` — a not-yet-resolved symbolic reference; the assembler
  and the GTIRB layer replace these with concrete values before
  encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.isa.registers import RIP, Register


@dataclass(frozen=True)
class Reg:
    """Register operand."""

    register: Register

    @property
    def size(self) -> int:
        return self.register.size

    def __str__(self):
        return self.register.name


@dataclass(frozen=True)
class Imm:
    """Immediate operand.

    ``value`` is the signed Python integer; ``size`` the encoded width
    in bytes (chosen by the encoder when zero).
    """

    value: int
    size: int = 0

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class Label:
    """Symbolic operand, resolved by the assembler/rewriter.

    ``addend`` supports ``sym+4`` style references.  When used as a
    branch target it resolves to a relative displacement; when used as
    an immediate or displacement it resolves through a relocation.
    """

    name: str
    addend: int = 0

    def __str__(self):
        if self.addend:
            sign = "+" if self.addend >= 0 else "-"
            return f"{self.name}{sign}{abs(self.addend)}"
        return self.name


@dataclass(frozen=True)
class Mem:
    """Memory operand ``size ptr [base + index*scale + disp]``.

    ``disp`` may be an int or a :class:`Label` (resolved before
    encoding).  RIP-relative references use ``base=RIP`` and carry the
    target in ``disp`` (int offset after resolution).
    """

    base: Optional[Register] = None
    index: Optional[Register] = None
    scale: int = 1
    disp: Union[int, Label] = 0
    size: int = 8

    def __post_init__(self):
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")
        if self.index is not None and self.index.name == "rsp":
            raise ValueError("rsp cannot be an index register")

    @property
    def is_rip_relative(self) -> bool:
        return self.base is RIP

    def __str__(self):
        size_name = {1: "byte", 2: "word", 4: "dword", 8: "qword"}[self.size]
        parts = []
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            part = self.index.name
            if self.scale != 1:
                part += f"*{self.scale}"
            parts.append(part)
        disp = self.disp
        if isinstance(disp, Label):
            parts.append(str(disp))
        elif disp or not parts:
            parts.append(str(disp))
        body = ""
        for i, part in enumerate(parts):
            if i and not part.startswith("-"):
                body += "+"
            body += part
        return f"{size_name} ptr [{body}]"


Operand = Union[Reg, Imm, Mem, Label]


def op_size(operand: Operand) -> int:
    """Width in bytes of an operand (0 when unsized/symbolic)."""
    if isinstance(operand, (Reg, Mem)):
        return operand.size
    if isinstance(operand, Imm):
        return operand.size
    return 0
