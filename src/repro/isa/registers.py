"""General-purpose register file of the x86-64 subset.

Sixteen GPRs with 1-, 4-, and 8-byte views (16-bit views are not part of
the subset; the assembler and decoder reject them).  The classic
high-byte registers (``ah``..``bh``) are likewise excluded: encodings
4-7 in 8-bit context are only accepted when a REX prefix is present, in
which case they denote ``spl``/``bpl``/``sil``/``dil`` — matching real
hardware behaviour for REX-prefixed code.
"""

from __future__ import annotations

from dataclasses import dataclass


_GPR64 = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]
_GPR32 = [
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
]
_GPR8 = [
    "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
    "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
]


@dataclass(frozen=True)
class Register:
    """A named architectural register view.

    ``code`` is the 4-bit hardware encoding (the high bit goes into a
    REX extension bit), ``size`` is the view width in bytes.
    """

    name: str
    code: int
    size: int

    def __repr__(self):
        return f"Register({self.name})"

    def __str__(self):
        return self.name

    @property
    def needs_rex_bit(self) -> bool:
        """True when the register requires REX.B/R/X (codes 8-15)."""
        return self.code >= 8

    @property
    def needs_rex_presence(self) -> bool:
        """True for spl/bpl/sil/dil, which need *a* REX prefix to exist."""
        return self.size == 1 and 4 <= self.code <= 7


RIP = Register("rip", 16, 8)
"""Pseudo-register used as the base of RIP-relative memory operands."""


def _build_registry() -> dict[str, Register]:
    registry: dict[str, Register] = {}
    for names, size in ((_GPR64, 8), (_GPR32, 4), (_GPR8, 1)):
        for code, name in enumerate(names):
            registry[name] = Register(name, code, size)
    registry["rip"] = RIP
    return registry


_REGISTRY = _build_registry()
_BY_CODE = {
    (r.code, r.size): r for r in _REGISTRY.values() if r is not RIP
}


def reg(name: str) -> Register:
    """Look up a register by its assembly name (e.g. ``"rax"``)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(f"unknown register name: {name!r}") from None


def gpr64(code: int) -> Register:
    """Return the 64-bit GPR with hardware encoding ``code`` (0-15)."""
    return _BY_CODE[(code, 8)]


def by_code(code: int, size: int) -> Register:
    """Return the register view for hardware ``code`` at ``size`` bytes."""
    try:
        return _BY_CODE[(code, size)]
    except KeyError:
        raise KeyError(f"no register with code={code} size={size}") from None


def sub_register(register: Register, size: int) -> Register:
    """Return the ``size``-byte view of ``register``'s GPR."""
    return by_code(register.code, size)


def parent_gpr(register: Register) -> Register:
    """Return the full 64-bit register containing ``register``."""
    if register is RIP:
        return RIP
    return by_code(register.code, 8)


def all_gpr64() -> list[Register]:
    """All sixteen 64-bit GPRs in encoding order."""
    return [gpr64(code) for code in range(16)]


def is_register_name(name: str) -> bool:
    """True when ``name`` denotes a register in this subset."""
    return name.lower() in _REGISTRY
