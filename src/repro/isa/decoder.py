"""Instruction decoder: bytes -> :class:`~repro.isa.insn.Instruction`.

The decoder is deliberately tolerant of encodings our encoder never
emits (rel8 jumps, ``B0+rd`` byte moves, shift-by-one forms, ...): a
single-bit-flip fault can turn one valid encoding into another, and the
emulator must execute whatever the mutated bytes mean — exactly like
hardware.  Bytes that fall outside the supported subset raise
:class:`~repro.errors.DecodingError`, which the emulator surfaces as an
invalid-opcode crash.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import DecodingError
from repro.isa.cond import Cond
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import RIP, by_code

_GRP1 = {0: Mnemonic.ADD, 1: Mnemonic.OR, 4: Mnemonic.AND,
         5: Mnemonic.SUB, 6: Mnemonic.XOR, 7: Mnemonic.CMP}
_SHIFT = {4: Mnemonic.SHL, 5: Mnemonic.SHR, 7: Mnemonic.SAR}
_ALU_BY_BASE = {0x00: Mnemonic.ADD, 0x08: Mnemonic.OR, 0x20: Mnemonic.AND,
                0x28: Mnemonic.SUB, 0x30: Mnemonic.XOR, 0x38: Mnemonic.CMP}


@dataclass
class _Cursor:
    """Byte cursor over the instruction stream."""

    data: bytes
    pos: int

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise DecodingError("truncated instruction")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def i8(self) -> int:
        return struct.unpack("<b", bytes([self.u8()]))[0]

    def i32(self) -> int:
        raw = self.take(4)
        return struct.unpack("<i", raw)[0]

    def u64(self) -> int:
        raw = self.take(8)
        return struct.unpack("<Q", raw)[0]

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise DecodingError("truncated instruction")
        raw = self.data[self.pos:self.pos + count]
        self.pos += count
        return raw


class _Rex:
    """Decoded REX prefix state."""

    def __init__(self, byte: int | None):
        self.present = byte is not None
        byte = byte or 0
        self.w = bool(byte & 0x8)
        self.r = bool(byte & 0x4)
        self.x = bool(byte & 0x2)
        self.b = bool(byte & 0x1)


def _reg_for(code: int, size: int, rex: _Rex) -> Reg:
    """Map a ModRM register code to a register view.

    In 8-bit context codes 4-7 without REX denote the legacy high-byte
    registers, which are outside the subset.
    """
    if size == 1 and not rex.present and 4 <= code <= 7:
        raise DecodingError("legacy high-byte register not supported")
    return Reg(by_code(code, size))


def _decode_modrm(cur: _Cursor, rex: _Rex, size: int):
    """Decode ModRM (+SIB +disp).  Returns ``(reg_field, rm_operand)``."""
    modrm = cur.u8()
    mod = modrm >> 6
    reg_field = ((modrm >> 3) & 7) | (8 if rex.r else 0)
    rm_bits = modrm & 7
    if mod == 0b11:
        rm_code = rm_bits | (8 if rex.b else 0)
        return reg_field, _reg_for(rm_code, size, rex)
    if rm_bits == 0b101 and mod == 0b00:
        # RIP-relative
        disp = cur.i32()
        return reg_field, Mem(base=RIP, disp=disp, size=size)
    index = None
    scale = 1
    if rm_bits == 0b100:
        sib = cur.u8()
        scale = 1 << (sib >> 6)
        index_bits = (sib >> 3) & 7
        base_bits = sib & 7
        if not (index_bits == 0b100 and not rex.x):
            index_code = index_bits | (8 if rex.x else 0)
            index = by_code(index_code, 8)
            if index.name == "rsp":
                raise DecodingError("rsp used as index register")
        if base_bits == 0b101 and mod == 0b00:
            disp = cur.i32()
            return reg_field, Mem(base=None, index=index, scale=scale,
                                  disp=disp, size=size)
        base = by_code(base_bits | (8 if rex.b else 0), 8)
    else:
        base = by_code(rm_bits | (8 if rex.b else 0), 8)
    if mod == 0b01:
        disp = cur.i8()
    elif mod == 0b10:
        disp = cur.i32()
    else:
        disp = 0
    return reg_field, Mem(base=base, index=index, scale=scale, disp=disp,
                          size=size)


def decode(data: bytes, offset: int = 0, address: int = 0) -> Instruction:
    """Decode one instruction from ``data[offset:]``.

    ``address`` is the virtual address of the instruction, recorded on
    the result and used for ``branch_target()`` computations.
    """
    cur = _Cursor(data, offset)
    rex_byte = None
    byte = cur.u8()
    if 0x40 <= byte <= 0x4F:
        rex_byte = byte
        byte = cur.u8()
    rex = _Rex(rex_byte)
    size = 8 if rex.w else 4

    mnemonic = None
    operands: tuple = ()
    cond = None

    if byte in (0x66, 0x67, 0xF0, 0xF2, 0xF3, 0x2E, 0x3E):
        raise DecodingError(f"unsupported prefix {byte:#x}")

    alu_base = byte & 0xF8
    alu_low = byte & 0x07
    if alu_base in _ALU_BY_BASE and alu_low <= 0x05:
        mnemonic = _ALU_BY_BASE[alu_base]
        if alu_low in (0, 1):  # rm, reg
            opsize = 1 if alu_low == 0 else size
            reg_field, rm = _decode_modrm(cur, rex, opsize)
            operands = (rm, _reg_for(reg_field, opsize, rex))
        elif alu_low in (2, 3):  # reg, rm
            opsize = 1 if alu_low == 2 else size
            reg_field, rm = _decode_modrm(cur, rex, opsize)
            operands = (_reg_for(reg_field, opsize, rex), rm)
        elif alu_low == 4:  # al, imm8
            operands = (_reg_for(0, 1, rex), Imm(cur.i8(), 1))
        else:  # eax/rax, imm32
            operands = (_reg_for(0, size, rex), Imm(cur.i32(), 4))
    elif 0x50 <= byte <= 0x57:
        mnemonic = Mnemonic.PUSH
        operands = (Reg(by_code((byte - 0x50) | (8 if rex.b else 0), 8)),)
    elif 0x58 <= byte <= 0x5F:
        mnemonic = Mnemonic.POP
        operands = (Reg(by_code((byte - 0x58) | (8 if rex.b else 0), 8)),)
    elif byte == 0x68:
        mnemonic = Mnemonic.PUSH
        operands = (Imm(cur.i32(), 4),)
    elif byte == 0x6A:
        mnemonic = Mnemonic.PUSH
        operands = (Imm(cur.i8(), 1),)
    elif 0x70 <= byte <= 0x7F:
        mnemonic = Mnemonic.JCC
        cond = Cond(byte - 0x70)
        operands = (Imm(cur.i8(), 1),)
    elif byte in (0x80, 0x81, 0x83):
        opsize = 1 if byte == 0x80 else size
        reg_field, rm = _decode_modrm(cur, rex, opsize)
        mnemonic = _GRP1.get(reg_field & 7)
        if mnemonic is None:
            raise DecodingError(f"unsupported group-1 extension {reg_field}")
        if byte == 0x81:
            imm = Imm(cur.i32(), 4)
        else:
            imm = Imm(cur.i8(), 1)
        operands = (rm, imm)
    elif byte in (0x84, 0x85):
        mnemonic = Mnemonic.TEST
        opsize = 1 if byte == 0x84 else size
        reg_field, rm = _decode_modrm(cur, rex, opsize)
        operands = (rm, _reg_for(reg_field, opsize, rex))
    elif byte in (0x88, 0x89):
        mnemonic = Mnemonic.MOV
        opsize = 1 if byte == 0x88 else size
        reg_field, rm = _decode_modrm(cur, rex, opsize)
        operands = (rm, _reg_for(reg_field, opsize, rex))
    elif byte in (0x8A, 0x8B):
        mnemonic = Mnemonic.MOV
        opsize = 1 if byte == 0x8A else size
        reg_field, rm = _decode_modrm(cur, rex, opsize)
        operands = (_reg_for(reg_field, opsize, rex), rm)
    elif byte == 0x8D:
        mnemonic = Mnemonic.LEA
        reg_field, rm = _decode_modrm(cur, rex, size)
        if not isinstance(rm, Mem):
            raise DecodingError("lea requires a memory operand")
        operands = (_reg_for(reg_field, size, rex), rm)
    elif byte == 0x8F:
        mnemonic = Mnemonic.POP
        reg_field, rm = _decode_modrm(cur, rex, 8)
        if (reg_field & 7) != 0:
            raise DecodingError("unsupported 8F extension")
        operands = (rm,)
    elif byte == 0x90:
        mnemonic = Mnemonic.NOP
    elif byte == 0x9C:
        mnemonic = Mnemonic.PUSHFQ
    elif byte == 0x9D:
        mnemonic = Mnemonic.POPFQ
    elif 0xB0 <= byte <= 0xB7:
        mnemonic = Mnemonic.MOV
        operands = (_reg_for((byte - 0xB0) | (8 if rex.b else 0), 1, rex),
                    Imm(cur.i8(), 1))
    elif 0xB8 <= byte <= 0xBF:
        mnemonic = Mnemonic.MOV
        dst = Reg(by_code((byte - 0xB8) | (8 if rex.b else 0), size))
        if rex.w:
            value = cur.u64()
            if value >= 1 << 63:
                value -= 1 << 64
            operands = (dst, Imm(value, 8))
        else:
            operands = (dst, Imm(cur.i32(), 4))
    elif byte in (0xC0, 0xC1):
        opsize = 1 if byte == 0xC0 else size
        reg_field, rm = _decode_modrm(cur, rex, opsize)
        mnemonic = _SHIFT.get(reg_field & 7)
        if mnemonic is None:
            raise DecodingError(f"unsupported shift extension {reg_field}")
        operands = (rm, Imm(cur.u8(), 1))
    elif byte == 0xC3:
        mnemonic = Mnemonic.RET
    elif byte in (0xC6, 0xC7):
        mnemonic = Mnemonic.MOV
        opsize = 1 if byte == 0xC6 else size
        reg_field, rm = _decode_modrm(cur, rex, opsize)
        if (reg_field & 7) != 0:
            raise DecodingError("unsupported C6/C7 extension")
        if byte == 0xC6:
            operands = (rm, Imm(cur.i8(), 1))
        else:
            operands = (rm, Imm(cur.i32(), 4))
    elif byte == 0xCC:
        mnemonic = Mnemonic.INT3
    elif byte in (0xD0, 0xD1):
        opsize = 1 if byte == 0xD0 else size
        reg_field, rm = _decode_modrm(cur, rex, opsize)
        mnemonic = _SHIFT.get(reg_field & 7)
        if mnemonic is None:
            raise DecodingError(f"unsupported shift extension {reg_field}")
        operands = (rm, Imm(1, 1))
    elif byte in (0xD2, 0xD3):
        opsize = 1 if byte == 0xD2 else size
        reg_field, rm = _decode_modrm(cur, rex, opsize)
        mnemonic = _SHIFT.get(reg_field & 7)
        if mnemonic is None:
            raise DecodingError(f"unsupported shift extension {reg_field}")
        operands = (rm, _reg_for(1, 1, rex))
    elif byte == 0xE8:
        mnemonic = Mnemonic.CALL
        operands = (Imm(cur.i32(), 4),)
    elif byte == 0xE9:
        mnemonic = Mnemonic.JMP
        operands = (Imm(cur.i32(), 4),)
    elif byte == 0xEB:
        mnemonic = Mnemonic.JMP
        operands = (Imm(cur.i8(), 1),)
    elif byte == 0xF4:
        mnemonic = Mnemonic.HLT
    elif byte in (0xF6, 0xF7):
        opsize = 1 if byte == 0xF6 else size
        reg_field, rm = _decode_modrm(cur, rex, opsize)
        ext = reg_field & 7
        if ext == 0:
            mnemonic = Mnemonic.TEST
            if byte == 0xF6:
                operands = (rm, Imm(cur.i8(), 1))
            else:
                operands = (rm, Imm(cur.i32(), 4))
        elif ext == 2:
            mnemonic = Mnemonic.NOT
            operands = (rm,)
        elif ext == 3:
            mnemonic = Mnemonic.NEG
            operands = (rm,)
        else:
            raise DecodingError(f"unsupported F6/F7 extension {ext}")
    elif byte == 0xFE:
        reg_field, rm = _decode_modrm(cur, rex, 1)
        ext = reg_field & 7
        if ext == 0:
            mnemonic = Mnemonic.INC
        elif ext == 1:
            mnemonic = Mnemonic.DEC
        else:
            raise DecodingError(f"unsupported FE extension {ext}")
        operands = (rm,)
    elif byte == 0xFF:
        reg_field, rm = _decode_modrm(cur, rex, size)
        ext = reg_field & 7
        if ext == 0:
            mnemonic = Mnemonic.INC
            operands = (rm,)
        elif ext == 1:
            mnemonic = Mnemonic.DEC
            operands = (rm,)
        elif ext == 2:
            mnemonic = Mnemonic.CALL
            operands = (_with_size(rm, 8),)
        elif ext == 4:
            mnemonic = Mnemonic.JMP
            operands = (_with_size(rm, 8),)
        elif ext == 6:
            mnemonic = Mnemonic.PUSH
            operands = (_with_size(rm, 8),)
        else:
            raise DecodingError(f"unsupported FF extension {ext}")
    elif byte == 0x0F:
        second = cur.u8()
        if second == 0x05:
            mnemonic = Mnemonic.SYSCALL
        elif second == 0x0B:
            mnemonic = Mnemonic.UD2
        elif 0x40 <= second <= 0x4F:
            mnemonic = Mnemonic.CMOVCC
            cond = Cond(second - 0x40)
            reg_field, rm = _decode_modrm(cur, rex, size)
            operands = (_reg_for(reg_field, size, rex), rm)
        elif 0x80 <= second <= 0x8F:
            mnemonic = Mnemonic.JCC
            cond = Cond(second - 0x80)
            operands = (Imm(cur.i32(), 4),)
        elif 0x90 <= second <= 0x9F:
            mnemonic = Mnemonic.SETCC
            cond = Cond(second - 0x90)
            reg_field, rm = _decode_modrm(cur, rex, 1)
            operands = (rm,)
        elif second == 0xAF:
            mnemonic = Mnemonic.IMUL
            reg_field, rm = _decode_modrm(cur, rex, size)
            operands = (_reg_for(reg_field, size, rex), rm)
        elif second == 0xB6:
            mnemonic = Mnemonic.MOVZX
            reg_field, rm = _decode_modrm(cur, rex, 1)
            operands = (_reg_for(reg_field, size, rex), rm)
        else:
            raise DecodingError(f"unsupported 0F opcode {second:#x}")
    else:
        raise DecodingError(f"unsupported opcode {byte:#x}")

    length = cur.pos - offset
    return Instruction(
        mnemonic,
        operands,
        cond=cond,
        address=address,
        length=length,
        raw=bytes(data[offset:cur.pos]),
    )


def _with_size(rm, size: int):
    """Re-size a decoded r/m operand (indirect call/jmp/push are 64-bit)."""
    if isinstance(rm, Reg):
        return Reg(by_code(rm.register.code, size))
    return Mem(rm.base, rm.index, rm.scale, rm.disp, size)


def decode_all(data: bytes, address: int = 0):
    """Linear sweep decode of a byte buffer; yields instructions."""
    offset = 0
    while offset < len(data):
        instruction = decode(data, offset, address + offset)
        yield instruction
        offset += instruction.length
