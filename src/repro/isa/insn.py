"""Instruction model of the x86-64 subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.isa.cond import Cond
from repro.isa.operands import Imm, Operand


class Mnemonic(enum.Enum):
    """Supported mnemonics.

    ``JCC``/``SETCC``/``CMOVCC`` are families; the concrete condition
    lives in :attr:`Instruction.cond`.
    """

    MOV = "mov"
    MOVZX = "movzx"
    LEA = "lea"
    ADD = "add"
    SUB = "sub"
    XOR = "xor"
    AND = "and"
    OR = "or"
    CMP = "cmp"
    TEST = "test"
    IMUL = "imul"
    INC = "inc"
    DEC = "dec"
    NEG = "neg"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    PUSH = "push"
    POP = "pop"
    PUSHFQ = "pushfq"
    POPFQ = "popfq"
    JMP = "jmp"
    JCC = "jcc"
    CALL = "call"
    RET = "ret"
    SETCC = "setcc"
    CMOVCC = "cmovcc"
    NOP = "nop"
    SYSCALL = "syscall"
    HLT = "hlt"
    INT3 = "int3"
    UD2 = "ud2"

    def __str__(self):
        return self.value


# Mnemonics that terminate or redirect control flow.
CONTROL_FLOW = {Mnemonic.JMP, Mnemonic.JCC, Mnemonic.CALL, Mnemonic.RET,
                Mnemonic.HLT, Mnemonic.UD2, Mnemonic.INT3}

# Mnemonics that write the arithmetic flags.
FLAG_WRITERS = {Mnemonic.ADD, Mnemonic.SUB, Mnemonic.XOR, Mnemonic.AND,
                Mnemonic.OR, Mnemonic.CMP, Mnemonic.TEST, Mnemonic.IMUL,
                Mnemonic.INC, Mnemonic.DEC, Mnemonic.NEG, Mnemonic.SHL,
                Mnemonic.SHR, Mnemonic.SAR, Mnemonic.POPFQ}

# Mnemonics that read the arithmetic flags.
FLAG_READERS = {Mnemonic.JCC, Mnemonic.SETCC, Mnemonic.CMOVCC,
                Mnemonic.PUSHFQ}


@dataclass(frozen=True)
class Instruction:
    """A decoded or to-be-encoded instruction.

    ``address`` and ``length`` are populated by the decoder (and by the
    assembler after layout); they are advisory for encoding.
    """

    mnemonic: Mnemonic
    operands: Tuple[Operand, ...] = ()
    cond: Optional[Cond] = None
    address: Optional[int] = None
    length: Optional[int] = None
    raw: bytes = field(default=b"", compare=False)

    def __post_init__(self):
        needs_cond = self.mnemonic in (
            Mnemonic.JCC, Mnemonic.SETCC, Mnemonic.CMOVCC)
        if needs_cond and self.cond is None:
            raise ValueError(f"{self.mnemonic} requires a condition code")
        if not needs_cond and self.cond is not None:
            raise ValueError(f"{self.mnemonic} does not take a condition")

    # -- convenience accessors -------------------------------------------

    @property
    def name(self) -> str:
        """Concrete assembly mnemonic, e.g. ``"jne"`` or ``"setb"``."""
        if self.mnemonic is Mnemonic.JCC:
            return "j" + self.cond.suffix
        if self.mnemonic is Mnemonic.SETCC:
            return "set" + self.cond.suffix
        if self.mnemonic is Mnemonic.CMOVCC:
            return "cmov" + self.cond.suffix
        return self.mnemonic.value

    @property
    def is_control_flow(self) -> bool:
        return self.mnemonic in CONTROL_FLOW

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in (Mnemonic.JMP, Mnemonic.JCC)

    @property
    def is_conditional(self) -> bool:
        return self.mnemonic is Mnemonic.JCC

    @property
    def writes_flags(self) -> bool:
        return self.mnemonic in FLAG_WRITERS

    @property
    def reads_flags(self) -> bool:
        return self.mnemonic in FLAG_READERS

    @property
    def end_address(self) -> Optional[int]:
        if self.address is None or self.length is None:
            return None
        return self.address + self.length

    def with_operands(self, *operands: Operand) -> "Instruction":
        """Copy of this instruction with replaced operands."""
        return replace(self, operands=tuple(operands))

    def branch_target(self) -> Optional[int]:
        """Absolute target address for direct branches/calls.

        Requires a resolved (decoded) instruction: relative displacement
        operands are interpreted against ``address + length``.
        """
        if self.mnemonic not in (Mnemonic.JMP, Mnemonic.JCC, Mnemonic.CALL):
            return None
        if not self.operands or not isinstance(self.operands[0], Imm):
            return None
        if self.end_address is None:
            return None
        return self.end_address + self.operands[0].value

    def __str__(self):
        if not self.operands:
            return self.name
        rendered = ", ".join(str(op) for op in self.operands)
        return f"{self.name} {rendered}"


def insn(mnemonic: Mnemonic, *operands: Operand,
         cond: Optional[Cond] = None) -> Instruction:
    """Terse constructor used throughout the code base."""
    return Instruction(mnemonic, tuple(operands), cond=cond)
