"""Semantic metadata about instructions: registers/flags read and written.

Used by the analysis layer (liveness, reaching definitions, register
value analysis) and by the patcher when deciding whether a protection
pattern must preserve RFLAGS across the patch point.

Registers are normalized to their 64-bit parents, since sub-register
writes in our subset either leave the upper bits (8-bit) or zero them
(32-bit) — for liveness purposes a write to ``eax`` is a write to
``rax`` (it clobbers the full register value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import RIP, Register, parent_gpr, reg

RSP = reg("rsp")
RCX = reg("rcx")
RAX = reg("rax")
RDI = reg("rdi")
RSI = reg("rsi")
RDX = reg("rdx")
R11 = reg("r11")


@dataclass(frozen=True)
class Effects:
    """Register and flag effects of one instruction."""

    reads: FrozenSet[Register] = frozenset()
    writes: FrozenSet[Register] = frozenset()
    reads_flags: bool = False
    writes_flags: bool = False
    reads_memory: bool = False
    writes_memory: bool = False


def _mem_regs(mem: Mem) -> set[Register]:
    regs = set()
    if mem.base is not None and mem.base is not RIP:
        regs.add(parent_gpr(mem.base))
    if mem.index is not None:
        regs.add(parent_gpr(mem.index))
    return regs


def effects(insn: Instruction) -> Effects:
    """Compute the :class:`Effects` of ``insn``."""
    reads: set[Register] = set()
    writes: set[Register] = set()
    reads_memory = False
    writes_memory = False
    m = insn.mnemonic
    ops = insn.operands

    def use(operand, *, as_dest=False, read_dest=True):
        nonlocal reads_memory, writes_memory
        if isinstance(operand, Reg):
            register = parent_gpr(operand.register)
            if as_dest:
                writes.add(register)
                if read_dest:
                    reads.add(register)
            else:
                reads.add(register)
        elif isinstance(operand, Mem):
            reads.update(_mem_regs(operand))
            if as_dest:
                writes_memory = True
                if read_dest:
                    reads_memory = True
            else:
                reads_memory = True

    if m in (Mnemonic.MOV, Mnemonic.MOVZX):
        use(ops[0], as_dest=True, read_dest=False)
        use(ops[1])
    elif m is Mnemonic.LEA:
        use(ops[0], as_dest=True, read_dest=False)
        reads.update(_mem_regs(ops[1]))
    elif m in (Mnemonic.ADD, Mnemonic.SUB, Mnemonic.XOR, Mnemonic.AND,
               Mnemonic.OR, Mnemonic.IMUL):
        use(ops[0], as_dest=True)
        use(ops[1])
    elif m in (Mnemonic.CMP, Mnemonic.TEST):
        use(ops[0])
        use(ops[1])
    elif m in (Mnemonic.INC, Mnemonic.DEC, Mnemonic.NEG, Mnemonic.NOT):
        use(ops[0], as_dest=True)
    elif m in (Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR):
        use(ops[0], as_dest=True)
        use(ops[1])
    elif m is Mnemonic.PUSH:
        use(ops[0])
        reads.add(RSP)
        writes.add(RSP)
        writes_memory = True
    elif m is Mnemonic.POP:
        use(ops[0], as_dest=True, read_dest=False)
        reads.add(RSP)
        writes.add(RSP)
        reads_memory = True
    elif m in (Mnemonic.PUSHFQ, Mnemonic.POPFQ):
        reads.add(RSP)
        writes.add(RSP)
        if m is Mnemonic.PUSHFQ:
            writes_memory = True
        else:
            reads_memory = True
    elif m in (Mnemonic.JMP, Mnemonic.CALL):
        if ops and not isinstance(ops[0], Imm):
            use(ops[0])
        if m is Mnemonic.CALL:
            reads.add(RSP)
            writes.add(RSP)
            writes_memory = True
    elif m is Mnemonic.RET:
        reads.add(RSP)
        writes.add(RSP)
        reads_memory = True
    elif m is Mnemonic.SETCC:
        use(ops[0], as_dest=True, read_dest=False)
    elif m is Mnemonic.CMOVCC:
        use(ops[0], as_dest=True)
        use(ops[1])
    elif m is Mnemonic.SYSCALL:
        # Linux x86-64: number in rax, args rdi/rsi/rdx; rax result,
        # rcx/r11 clobbered.
        reads.update({RAX, RDI, RSI, RDX})
        writes.update({RAX, RCX, R11})
        reads_memory = True
        writes_memory = True
    # JCC / NOP / HLT / INT3 / UD2 have no register effects.

    return Effects(
        reads=frozenset(reads),
        writes=frozenset(writes),
        reads_flags=insn.reads_flags,
        writes_flags=insn.writes_flags,
        reads_memory=reads_memory,
        writes_memory=writes_memory,
    )
