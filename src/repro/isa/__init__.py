"""x86-64 subset ISA: registers, instructions, encoder, decoder.

This package substitutes for the hardware ISA + capstone/keystone in the
paper's toolchain.  It implements *real* x86-64 machine encodings
(REX prefixes, ModRM/SIB bytes, displacements, immediates) for the
subset of instructions the case studies and countermeasure patterns
need, so that single-bit-flip faults on instruction bytes behave the way
they would on silicon: a flipped bit either re-decodes into a different
valid instruction or raises an invalid-opcode fault.
"""

from repro.isa.registers import (
    Register,
    RIP,
    reg,
    gpr64,
    sub_register,
    parent_gpr,
)
from repro.isa.cond import Cond
from repro.isa.operands import Imm, Mem, Reg, Label, Operand
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.encoder import encode
from repro.isa.decoder import decode

__all__ = [
    "Register",
    "RIP",
    "reg",
    "gpr64",
    "sub_register",
    "parent_gpr",
    "Cond",
    "Imm",
    "Mem",
    "Reg",
    "Label",
    "Operand",
    "Instruction",
    "Mnemonic",
    "encode",
    "decode",
]
