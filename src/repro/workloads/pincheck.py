"""The pincheck case study.

"A simple pin-check program that receives an input password and checks
the correctness of the inserted password" (Section V-C).  A byte-wise
compare loop guards the ACCESS GRANTED path; the faulter's goal is to
reach that path with a wrong pin.
"""

from __future__ import annotations

from repro.workloads.base import Workload

GRANT_MARKER = b"ACCESS GRANTED"
DENY_MARKER = b"ACCESS DENIED"


def source(pin: str = "1234") -> str:
    """Assembly source for a pincheck accepting ``pin``."""
    pin_len = len(pin)
    return f"""
# pincheck: compare stdin pin against the expected value
.equ PIN_LEN, {pin_len}
.equ GRANT_LEN, {len(GRANT_MARKER) + 1}
.equ DENY_LEN, {len(DENY_MARKER) + 1}

.section .text
.global _start
_start:
    xor rax, rax              # SYS_read
    xor rdi, rdi              # fd 0 (stdin)
    lea rsi, [rel pin_buf]
    mov rdx, PIN_LEN
    syscall
    cmp rax, PIN_LEN          # short read -> deny
    jne deny
    xor rcx, rcx              # index
check_loop:
    cmp rcx, PIN_LEN
    je grant
    lea rsi, [rel pin_buf]
    mov al, byte ptr [rsi+rcx]
    lea rdi, [rel expected_pin]
    cmp al, byte ptr [rdi+rcx]
    jne deny
    inc rcx
    jmp check_loop
grant:
    mov rax, 1                # SYS_write
    mov rdi, 1
    lea rsi, [rel msg_grant]
    mov rdx, GRANT_LEN
    syscall
    mov rax, 60               # SYS_exit
    xor rdi, rdi
    syscall
deny:
    mov rax, 1
    mov rdi, 1
    lea rsi, [rel msg_deny]
    mov rdx, DENY_LEN
    syscall
    mov rax, 60
    mov rdi, 1
    syscall

.section .data
expected_pin: .ascii "{pin}"
msg_grant:    .asciz "{GRANT_MARKER.decode()}\\n"
msg_deny:     .asciz "{DENY_MARKER.decode()}\\n"

.section .bss
pin_buf: .zero 16
"""


def rich_source(pin: str = "1234") -> str:
    """A realistically sized pincheck: banner, attempt logging, the
    compare-loop auth core, and secure buffer scrubbing — the shape the
    paper's evaluation binaries have (the auth core is a small fraction
    of the program text)."""
    pin_len = len(pin)
    return f"""
# pincheck service: banner + logging + auth core + scrubbing
.equ PIN_LEN, {pin_len}
.equ BUF_LEN, 16

.section .text
.global _start
_start:
    mov rdi, 1                    # banner to stdout
    lea rsi, [rel banner1]
    mov rdx, banner1_len
    call write_all
    mov rdi, 1
    lea rsi, [rel banner2]
    mov rdx, banner2_len
    call write_all
    mov rdi, 2                    # audit line to stderr
    lea rsi, [rel log_attempt]
    mov rdx, log_attempt_len
    call write_all
    xor rax, rax                  # SYS_read the candidate pin
    xor rdi, rdi
    lea rsi, [rel pin_buf]
    mov rdx, PIN_LEN
    syscall
    cmp rax, PIN_LEN              # short read -> deny
    jne deny
    lea rsi, [rel pin_buf]        # printable-digit sanitation pass
    xor rdx, rdx                  # (distinct counter register: a skipped
sanitize:                         #  init then holds PIN_LEN and merely
    cmp rdx, PIN_LEN              #  skips sanitation, not the auth core)
    je sanitized
    mov al, byte ptr [rsi+rdx]
    cmp al, '0'
    jb deny
    cmp al, '9'
    ja deny
    inc rdx
    jmp sanitize
sanitized:
    xor rcx, rcx                  # the auth core: byte-wise compare
check_loop:
    cmp rcx, PIN_LEN
    je grant
    lea rsi, [rel pin_buf]
    mov al, byte ptr [rsi+rcx]
    lea rdi, [rel expected_pin]
    cmp al, byte ptr [rdi+rcx]
    jne deny
    inc rcx
    jmp check_loop
grant:
    mov rdi, 2
    lea rsi, [rel log_grant]
    mov rdx, log_grant_len
    call write_all
    mov rdi, 1
    lea rsi, [rel msg_grant]
    mov rdx, msg_grant_len
    call write_all
    call scrub
    mov rax, 60
    xor rdi, rdi
    syscall
deny:
    mov rdi, 2
    lea rsi, [rel log_deny]
    mov rdx, log_deny_len
    call write_all
    mov rdi, 1
    lea rsi, [rel msg_deny]
    mov rdx, msg_deny_len
    call write_all
    call scrub
    mov rax, 60
    mov rdi, 1
    syscall

write_all:                        # write(rdi=fd, rsi=buf, rdx=len)
    mov rax, 1
    syscall
    ret

scrub:                            # zero the candidate buffer
    lea rsi, [rel pin_buf]
    xor rcx, rcx
scrub_loop:
    cmp rcx, BUF_LEN
    je scrub_done
    mov byte ptr [rsi+rcx], 0
    inc rcx
    jmp scrub_loop
scrub_done:
    ret

.section .data
expected_pin: .ascii "{pin}"
banner1:      .ascii "PIN VERIFICATION SERVICE v1.2\\n"
.equ banner1_len, 30
banner2:      .ascii "enter pin:\\n"
.equ banner2_len, 11
log_attempt:  .ascii "[audit] auth attempt\\n"
.equ log_attempt_len, 21
log_grant:    .ascii "[audit] result=grant\\n"
.equ log_grant_len, 21
log_deny:     .ascii "[audit] result=deny\\n"
.equ log_deny_len, 20
msg_grant:    .asciz "{GRANT_MARKER.decode()}\\n"
.equ msg_grant_len, {len(GRANT_MARKER) + 1}
msg_deny:     .asciz "{DENY_MARKER.decode()}\\n"
.equ msg_deny_len, {len(DENY_MARKER) + 1}

.section .bss
pin_buf: .zero 16
"""


def workload(pin: str = "1234", wrong_pin: str | None = None,
             rich: bool = False) -> Workload:
    """Build the pincheck workload with good/bad campaign inputs.

    ``rich=True`` selects the realistically sized program used by the
    Table V benchmarks; the default minimal variant keeps unit-test
    fault campaigns fast.
    """
    if wrong_pin is None:
        # same length, differs in every position
        wrong_pin = "".join(chr(((ord(c) - ord("0") + 5) % 10) + ord("0"))
                            for c in pin)
    if len(wrong_pin) != len(pin):
        raise ValueError("wrong_pin must have the same length as pin")
    return Workload(
        name="pincheck" if not rich else "pincheck-rich",
        source=rich_source(pin) if rich else source(pin),
        good_input=pin.encode(),
        bad_input=wrong_pin.encode(),
        grant_marker=GRANT_MARKER,
        description="pin compare loop guarding a privileged path",
    )


def build(pin: str = "1234", rich: bool = False):
    """Assembled executable for the default pincheck."""
    return workload(pin, rich=rich).build()
