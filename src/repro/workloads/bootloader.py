"""The secure-bootloader case study.

"A secure bootloader in which the hash of the content of a memory
location is calculated and compared with an expected hash value"
(Section V-C).  The loader reads a firmware image from its input
channel, hashes it with FNV-1a/64 and boots only on a digest match.
The faulter's goal is to boot a tampered image.
"""

from __future__ import annotations

from repro.workloads.base import Workload

BOOT_MARKER = b"BOOT OK"
FAIL_MARKER = b"BOOT FAIL"

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3


def fnv1a64(data: bytes) -> int:
    """Reference FNV-1a/64 (must match the guest implementation)."""
    digest = FNV_OFFSET
    for byte in data:
        digest ^= byte
        digest = (digest * FNV_PRIME) & ((1 << 64) - 1)
    return digest


def default_firmware(size: int = 16) -> bytes:
    """A deterministic pseudo-firmware image."""
    return bytes((7 * i + 13) & 0xFF for i in range(size))


def source(firmware: bytes) -> str:
    """Assembly source for a bootloader expecting ``firmware``."""
    expected = fnv1a64(firmware)
    size = len(firmware)
    return f"""
# secure bootloader: hash the loaded image, boot only on digest match
.equ IMG_LEN, {size}
.equ OK_LEN, {len(BOOT_MARKER) + 1}
.equ FAIL_LEN, {len(FAIL_MARKER) + 1}

.section .text
.global _start
_start:
    xor rax, rax              # SYS_read: receive the image
    xor rdi, rdi
    lea rsi, [rel image_buf]
    mov rdx, IMG_LEN
    syscall
    cmp rax, IMG_LEN
    jne boot_fail
    lea rsi, [rel image_buf]  # FNV-1a over the image
    movabs rbx, {FNV_OFFSET:#x}
    movabs r8, {FNV_PRIME:#x}
    xor rcx, rcx
hash_loop:
    cmp rcx, IMG_LEN
    je hash_done
    movzx rax, byte ptr [rsi+rcx]
    xor rbx, rax
    imul rbx, r8
    inc rcx
    jmp hash_loop
hash_done:
    mov rdx, qword ptr [expected_hash]
    cmp rbx, rdx
    jne boot_fail
    mov rax, 1                # digest ok: announce boot
    mov rdi, 1
    lea rsi, [rel msg_ok]
    mov rdx, OK_LEN
    syscall
    mov rax, qword ptr [fw_entry]   # simulated hand-off to firmware
    mov rdi, 0
    mov rax, 60
    syscall
boot_fail:
    mov rax, 1
    mov rdi, 1
    lea rsi, [rel msg_fail]
    mov rdx, FAIL_LEN
    syscall
    mov rax, 60
    mov rdi, 1
    syscall

.section .data
expected_hash: .quad {expected:#x}
fw_entry:      .quad image_buf        # pointer (symbolization food)
decoy_value:   .quad 0x401003         # looks like a .text address but is data
msg_ok:        .asciz "{BOOT_MARKER.decode()}\\n"
msg_fail:      .asciz "{FAIL_MARKER.decode()}\\n"

.section .bss
image_buf: .zero {max(size, 8)}
"""


MAGIC = b"FW"


def _tamper(firmware: bytes) -> bytes:
    """Corrupt two separate payload bytes.

    A single-bit tamper would be compensable by flipping one bit of the
    loader's FNV offset constant (``(h^1)^(b^1) == h^b``), which a
    single-bit instruction fault can do — a genuine differential attack
    our faulter discovers.  Representative wrong firmware differs in
    more than one bit.
    """
    tampered = bytearray(firmware)
    tampered[-1] ^= 0x01
    tampered[len(tampered) // 2] ^= 0x10
    return bytes(tampered)


def rich_source(firmware: bytes) -> str:
    """A realistically sized bootloader: banner, image header check,
    FNV-1a digest verification, and a hex dump of the computed digest
    on the failure path."""
    expected = fnv1a64(firmware)
    size = len(firmware)
    return f"""
# secure bootloader: header check + digest verification + diagnostics
.equ IMG_LEN, {size}

.section .text
.global _start
_start:
    mov rdi, 1
    lea rsi, [rel banner]
    mov rdx, banner_len
    call write_all
    xor rax, rax                  # receive the image
    xor rdi, rdi
    lea rsi, [rel image_buf]
    mov rdx, IMG_LEN
    syscall
    cmp rax, IMG_LEN
    jne boot_fail
    lea rsi, [rel image_buf]      # header magic check
    mov al, byte ptr [rsi]
    cmp al, '{MAGIC.decode()[0]}'
    jne bad_header
    mov al, byte ptr [rsi+1]
    cmp al, '{MAGIC.decode()[1]}'
    jne bad_header
    lea rsi, [rel image_buf]      # FNV-1a/64 over the whole image
    movabs rbx, {FNV_OFFSET:#x}
    movabs r8, {FNV_PRIME:#x}
    xor rcx, rcx
hash_loop:
    cmp rcx, IMG_LEN
    je hash_done
    movzx rax, byte ptr [rsi+rcx]
    xor rbx, rax
    imul rbx, r8
    inc rcx
    jmp hash_loop
hash_done:
    mov rdx, qword ptr [expected_hash]
    cmp rbx, rdx
    jne digest_mismatch
    mov rdi, 1                    # digest ok: announce and hand off
    lea rsi, [rel msg_ok]
    mov rdx, msg_ok_len
    call write_all
    mov rax, qword ptr [fw_entry]   # simulated jump-to-firmware
    mov rax, 60
    xor rdi, rdi
    syscall
bad_header:
    mov rdi, 2
    lea rsi, [rel msg_header]
    mov rdx, msg_header_len
    call write_all
    jmp boot_fail
digest_mismatch:
    call dump_digest              # diagnostic: computed digest in hex
    jmp boot_fail
boot_fail:
    mov rdi, 1
    lea rsi, [rel msg_fail]
    mov rdx, msg_fail_len
    call write_all
    mov rax, 60
    mov rdi, 1
    syscall

write_all:                        # write(rdi=fd, rsi=buf, rdx=len)
    mov rax, 1
    syscall
    ret

dump_digest:                      # render rbx as 16 hex chars + NL
    lea rsi, [rel hex_buf]
    xor rcx, rcx
hex_loop:
    cmp rcx, 16
    je hex_done
    mov rax, rbx
    shr rax, 60                   # top nibble
    cmp rax, 10
    jb hex_digit
    add rax, 'a'-10
    jmp hex_store
hex_digit:
    add rax, '0'
hex_store:
    mov byte ptr [rsi+rcx], al
    shl rbx, 4
    inc rcx
    jmp hex_loop
hex_done:
    mov byte ptr [rsi+16], 10     # newline
    mov rdi, 2
    lea rsi, [rel hex_prefix]
    mov rdx, hex_prefix_len
    call write_all
    mov rdi, 2
    lea rsi, [rel hex_buf]
    mov rdx, 17
    call write_all
    ret

.section .data
expected_hash: .quad {expected:#x}
fw_entry:      .quad image_buf
decoy_value:   .quad 0x401003          # address-looking constant (data)
banner:        .ascii "SECURE BOOT v2.1\\n"
.equ banner_len, 17
hex_prefix:    .ascii "[diag] digest="
.equ hex_prefix_len, 14
msg_header:    .ascii "[diag] bad image header\\n"
.equ msg_header_len, 25
msg_ok:        .asciz "{BOOT_MARKER.decode()}\\n"
.equ msg_ok_len, {len(BOOT_MARKER) + 1}
msg_fail:      .asciz "{FAIL_MARKER.decode()}\\n"
.equ msg_fail_len, {len(FAIL_MARKER) + 1}

.section .bss
image_buf: .zero {max(size, 8)}
hex_buf:   .zero 24
"""


def workload(size: int = 16, rich: bool = False) -> Workload:
    """Bootloader workload: good input boots, tampered image fails.

    ``rich=True`` selects the realistically sized loader (header check,
    hex diagnostics) used by the Table V benchmarks.
    """
    if rich:
        firmware = MAGIC + default_firmware(max(size - len(MAGIC), 8))
        tampered = _tamper(firmware)
        return Workload(
            name="secure-bootloader-rich",
            source=rich_source(firmware),
            good_input=firmware,
            bad_input=tampered,
            grant_marker=BOOT_MARKER,
            description="firmware digest check guarding boot hand-off",
            extra={"firmware": firmware},
        )
    firmware = default_firmware(size)
    tampered = _tamper(firmware)
    return Workload(
        name="secure-bootloader",
        source=source(firmware),
        good_input=firmware,
        bad_input=tampered,
        grant_marker=BOOT_MARKER,
        description="firmware digest check guarding boot hand-off",
        extra={"firmware": firmware},
    )


def build(size: int = 16, rich: bool = False):
    """Assembled executable for the default bootloader."""
    return workload(size, rich=rich).build()
