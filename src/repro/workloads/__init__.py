"""Case-study guest programs (Section V-C of the paper).

Each workload bundles the assembly source, the linked executable, the
"good"/"bad" inputs for the faulter, and the stdout marker that
identifies the privileged (attacker-desired) behaviour.
"""

from repro.workloads.base import Workload
from repro.workloads import pincheck, bootloader, corpus

__all__ = ["Workload", "pincheck", "bootloader", "corpus"]
