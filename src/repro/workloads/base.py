"""Common workload container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm import assemble
from repro.binfmt.image import Executable


@dataclass
class Workload:
    """A guest program plus the faulter's campaign inputs.

    ``good_input`` drives the authorized behaviour, ``bad_input`` the
    rejected one; ``grant_marker`` is the stdout substring that only the
    authorized path prints (the paper's "unwanted behaviour" detector
    when it shows up under a bad input).
    """

    name: str
    source: str
    good_input: bytes
    bad_input: bytes
    grant_marker: bytes
    description: str = ""
    extra: dict = field(default_factory=dict)

    def build(self) -> Executable:
        """Assemble and link the workload."""
        return assemble(self.source)
