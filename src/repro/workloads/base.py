"""Common workload container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.asm import assemble
from repro.binfmt.image import Executable


@dataclass
class Workload:
    """A guest program plus the faulter's campaign inputs.

    ``good_input`` drives the authorized behaviour, ``bad_input`` the
    rejected one; ``grant_marker`` is the stdout substring that only
    the authorized path prints (the paper's "unwanted behaviour"
    detector when it shows up under a bad input).  Workloads whose
    grant path is not marker-detectable set ``oracle`` instead — any
    :class:`~repro.faulter.oracle.Oracle` overrides the marker check
    (e.g. the corpus ``exitgate`` workload grants only through its
    exit status).
    """

    name: str
    source: str
    good_input: bytes
    bad_input: bytes
    grant_marker: bytes
    description: str = ""
    extra: dict = field(default_factory=dict)
    oracle: object = None

    def build(self) -> Executable:
        """Assemble and link the workload."""
        return assemble(self.source)

    def target(self, name: Optional[str] = None,
               exe: Optional[Executable] = None):
        """Session :class:`~repro.api.Target` for this workload.

        Bundles the built executable with the workload's campaign
        inputs and its oracle (``oracle`` when set, else the marker
        check on ``grant_marker``) — the one-call entry into
        ``campaign``/``harden``/``evaluate``.  Pass ``exe`` to reuse
        an already-built image instead of assembling again.
        """
        from repro.api import Target

        oracle = (self.oracle if self.oracle is not None
                  else self.grant_marker)
        return Target(exe if exe is not None else self.build(),
                      self.good_input, self.bad_input, oracle,
                      name=name if name is not None else self.name)
