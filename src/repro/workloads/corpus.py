"""Small guest programs used by unit and property tests.

Besides the bare corpus programs (no campaign oracle), the module
bundles one campaign-able workload — :func:`workload`, a two-byte
token gate — so evaluation tests and ``r2r compare`` can exercise the
differential loop on a third, minimal target next to pincheck and the
bootloader.
"""

from __future__ import annotations

from repro.asm import assemble
from repro.workloads.base import Workload

EXIT42 = """
.text
.global _start
_start:
    mov rax, 60
    mov rdi, 42
    syscall
"""

ECHO4 = """
# read 4 bytes from stdin and write them back
.text
.global _start
_start:
    xor rax, rax
    xor rdi, rdi
    lea rsi, [rel buf]
    mov rdx, 4
    syscall
    mov rax, 1
    mov rdi, 1
    lea rsi, [rel buf]
    mov rdx, 4
    syscall
    mov rax, 60
    xor rdi, rdi
    syscall
.bss
buf: .zero 8
"""

ARITH = """
# exit code = (3*7 + 100 - 16) / 2 computed with shifts = 52
.text
.global _start
_start:
    mov rax, 3
    mov rbx, 7
    imul rax, rbx          # 21
    add rax, 100           # 121
    sub rax, 17            # 104
    shr rax, 1             # 52
    mov rdi, rax
    mov rax, 60
    syscall
"""

INFINITE_LOOP = """
.text
.global _start
_start:
    jmp _start
"""

STACK_OPS = """
# exercises push/pop/pushfq/popfq; exits 7 when flags survive the stack
.text
.global _start
_start:
    mov rax, 5
    cmp rax, 5            # ZF=1
    pushfq
    mov rbx, 1
    add rbx, 2            # clobbers flags (ZF=0)
    popfq
    jne wrong             # ZF must be 1 again
    push 7
    pop rdi
    mov rax, 60
    syscall
wrong:
    mov rdi, 1
    mov rax, 60
    syscall
"""

CALL_RET = """
# calls a helper twice; exit code 8
.text
.global _start
_start:
    mov rdi, 0
    call bump
    call bump
    mov rax, 60
    syscall
bump:
    add rdi, 4
    ret
"""

INDIRECT = """
# indirect call through a function-pointer table in .data; exit 9
.text
.global _start
_start:
    mov rax, qword ptr [table]
    call rax
    mov rax, 60
    syscall
set9:
    mov rdi, 9
    ret
.data
table: .quad set9
"""

MEMWRITES = """
# writes a pattern into .bss then sums it; exit code 30
.text
.global _start
_start:
    lea rsi, [rel buf]
    xor rcx, rcx
fill:
    cmp rcx, 5
    je sum
    mov rax, rcx
    shl rax, 1            # 2*i
    mov byte ptr [rsi+rcx], al
    inc rcx
    jmp fill
sum:
    xor rdi, rdi
    xor rcx, rcx
add_loop:
    cmp rcx, 5
    je done
    movzx rax, byte ptr [rsi+rcx]
    add rdi, rax
    inc rcx
    jmp add_loop
done:
    add rdi, 10           # 0+2+4+6+8 + 10 = 30
    mov rax, 60
    syscall
.bss
buf: .zero 8
"""

SETCC_CMOV = """
# setcc/cmovcc coverage; exit code 1
.text
.global _start
_start:
    mov rax, 3
    cmp rax, 5
    setb cl               # cl = 1 (3 < 5)
    movzx rdi, cl
    mov rbx, 99
    cmova rdi, rbx        # not taken (3 !> 5)
    mov rax, 60
    syscall
"""

SHIFTS_BY_CL = """
# variable shift counts through cl; exit code 40
.text
.global _start
_start:
    mov rbx, 5
    mov rcx, 3
    shl rbx, cl           # 40
    mov rdi, rbx
    mov rax, 60
    syscall
"""

UNARY_OPS = """
# neg/not/test coverage; exit 10
.text
.global _start
_start:
    mov rbx, -10
    neg rbx               # 10
    mov rcx, 0
    not rcx               # all ones
    test rcx, rcx
    js keep               # negative -> taken
    mov rbx, 0
keep:
    mov rdi, rbx
    mov rax, 60
    syscall
"""

PUSH_MEM = """
# push/pop with memory operands; exit 21
.text
.global _start
_start:
    push qword ptr [rel value]
    pop rdi
    mov rax, 60
    syscall
.data
value: .quad 21
"""

JUMP_TABLE = """
# indirect jmp through a register; exit 5
.text
.global _start
_start:
    mov rax, qword ptr [rel slot]
    jmp rax
dead:
    mov rdi, 1
    mov rax, 60
    syscall
alive:
    mov rdi, 5
    mov rax, 60
    syscall
.data
slot: .quad alive
"""

BYTE_LOOP = """
# 8-bit arithmetic wraps correctly; exit ((200+100) & 0xff) = 44
.text
.global _start
_start:
    mov bl, 200
    add bl, 100
    movzx rdi, bl
    mov rax, 60
    syscall
"""

ALL = {
    "exit42": EXIT42,
    "echo4": ECHO4,
    "arith": ARITH,
    "infinite_loop": INFINITE_LOOP,
    "stack_ops": STACK_OPS,
    "call_ret": CALL_RET,
    "indirect": INDIRECT,
    "memwrites": MEMWRITES,
    "setcc_cmov": SETCC_CMOV,
    "shifts_by_cl": SHIFTS_BY_CL,
    "unary_ops": UNARY_OPS,
    "push_mem": PUSH_MEM,
    "jump_table": JUMP_TABLE,
    "byte_loop": BYTE_LOOP,
}


def build(name: str):
    """Assemble one of the corpus programs by name."""
    return assemble(ALL[name])


# ---------------------------------------------------------------------------
# campaign-able corpus workload (token gate)
# ---------------------------------------------------------------------------

GATE_MARKER = b"UNLOCKED"

GATECHECK = f"""
# gatecheck: two-byte token guards the privileged UNLOCKED path
.equ TOK_LEN, 2
.equ OPEN_LEN, {len(GATE_MARKER) + 1}
.equ LOCK_LEN, 7

.section .text
.global _start
_start:
    xor rax, rax              # SYS_read the candidate token
    xor rdi, rdi
    lea rsi, [rel tok_buf]
    mov rdx, TOK_LEN
    syscall
    cmp rax, TOK_LEN          # short read -> locked
    jne lock
    lea rsi, [rel tok_buf]
    mov al, byte ptr [rsi]
    cmp al, 'G'
    jne lock
    mov al, byte ptr [rsi+1]
    cmp al, 'O'
    jne lock
    mov rax, 1                # SYS_write the grant marker
    mov rdi, 1
    lea rsi, [rel msg_open]
    mov rdx, OPEN_LEN
    syscall
    mov rax, 60
    xor rdi, rdi
    syscall
lock:
    mov rax, 1
    mov rdi, 1
    lea rsi, [rel msg_lock]
    mov rdx, LOCK_LEN
    syscall
    mov rax, 60
    mov rdi, 1
    syscall

.section .data
msg_open: .asciz "{GATE_MARKER.decode()}\\n"
msg_lock: .asciz "LOCKED\\n"

.section .bss
tok_buf: .zero 8
"""


def workload() -> Workload:
    """The token-gate workload with good/bad campaign inputs."""
    return Workload(
        name="gatecheck",
        source=GATECHECK,
        good_input=b"GO",
        bad_input=b"NO",
        grant_marker=GATE_MARKER,
        description="two-byte token compare guarding a privileged "
                    "path",
    )


# ---------------------------------------------------------------------------
# campaign-able corpus workload (silent exit-status gate)
# ---------------------------------------------------------------------------

EXIT_GRANT_CODE = 0
EXIT_DENY_CODE = 7

EXITGATE = f"""
# exitgate: the two-byte token unlocks exit({EXIT_GRANT_CODE});
# anything else exits {EXIT_DENY_CODE}.  Both paths are silent, so
# the grant is observable only through the exit status — the
# workload exists to drive campaigns with an ExitCodeOracle instead
# of the stdout-marker check.
.equ TOK_LEN, 2

.section .text
.global _start
_start:
    xor rax, rax              # SYS_read the candidate token
    xor rdi, rdi
    lea rsi, [rel tok_buf]
    mov rdx, TOK_LEN
    syscall
    cmp rax, TOK_LEN          # short read -> deny
    jne deny
    lea rsi, [rel tok_buf]
    mov al, byte ptr [rsi]
    cmp al, 'G'
    jne deny
    mov al, byte ptr [rsi+1]
    cmp al, 'O'
    jne deny
    mov rax, 60               # grant: exit {EXIT_GRANT_CODE}, silent
    mov rdi, {EXIT_GRANT_CODE}
    syscall
deny:
    mov rax, 60               # deny: exit {EXIT_DENY_CODE}, silent
    mov rdi, {EXIT_DENY_CODE}
    syscall

.section .bss
tok_buf: .zero 8
"""


def exitgate_workload() -> Workload:
    """The silent token gate, granting only through its exit status.

    There is no marker to watch — ``oracle`` is an
    :class:`~repro.faulter.oracle.ExitCodeOracle` on the grant exit
    code, which is exactly the scenario the pluggable-oracle redesign
    exists for.
    """
    from repro.faulter.oracle import ExitCodeOracle

    return Workload(
        name="exitgate",
        source=EXITGATE,
        good_input=b"GO",
        bad_input=b"NO",
        grant_marker=b"",
        oracle=ExitCodeOracle(EXIT_GRANT_CODE),
        description="silent two-byte token gate whose grant path is "
                    "detectable only by exit status",
    )
