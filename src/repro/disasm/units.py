"""Per-function rewrite units over a recovered module.

The :class:`RewritePlan` is the shared currency between the disassembler
and everything above it: hardening approaches consume a stream of
:class:`RewriteUnit`\\ s instead of re-walking ``.text`` themselves, and
the campaign engine chunks fault spaces per unit.  Function recovery
(:mod:`repro.disasm.functions`) provides the primary boundaries; blocks
it does not own — linear-sweep islands on stripped inputs — fall back to
contiguous ``sweep`` units, and undecodable regions become ``opaque``
units that are preserved byte-for-byte rather than treated as fatal.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.binfmt.image import Executable
from repro.disasm.functions import find_functions
from repro.disasm.recover import disassemble
from repro.gtirb.ir import Module

ORIGIN_FUNCTION = "function"
ORIGIN_SWEEP = "sweep"
ORIGIN_DATA = "data"


@dataclass(frozen=True)
class RewriteUnit:
    """One independently rewritable region of code (or preserved data).

    ``opaque`` units hold bytes the recovery could not prove are
    instructions; rewriters must copy them unchanged and never
    instrument inside them.
    """

    name: str
    start: int
    end: int
    blocks: tuple = ()
    opaque: bool = False
    origin: str = ORIGIN_FUNCTION

    @property
    def size(self) -> int:
        return self.end - self.start

    def instruction_count(self) -> int:
        return sum(len(b.entries) for b in self.blocks if b.is_code)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "opaque": self.opaque,
            "origin": self.origin,
            "instructions": self.instruction_count(),
        }


@dataclass
class RewritePlan:
    """Address-ordered rewrite units covering the text section.

    Function blocks may interleave, so lookup goes through *extents* —
    maximal contiguous address ranges each owned by one unit.
    """

    units: list[RewriteUnit] = field(default_factory=list)
    extents: list[tuple[int, int, RewriteUnit]] = field(default_factory=list)

    def __post_init__(self):
        self.extents.sort(key=lambda e: e[0])
        self._starts = [e[0] for e in self.extents]

    def unit_at(self, address: int):
        """The unit owning ``address``, or ``None`` outside the plan."""
        index = bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        start, end, unit = self.extents[index]
        return unit if start <= address < end else None

    def slice(self, start: int, end: int):
        """Split ``[start, end)`` at unit boundaries.

        Yields ``(s, e, unit_or_None)`` sub-ranges in address order;
        ``None`` marks bytes no unit owns.
        """
        cursor = start
        for ext_start, ext_end, unit in self.extents:
            if ext_end <= cursor or ext_start >= end:
                continue
            if ext_start > cursor:
                yield cursor, ext_start, None
            stop = min(ext_end, end)
            yield max(cursor, ext_start), stop, unit
            cursor = stop
        if cursor < end:
            yield cursor, end, None

    def code_units(self) -> list[RewriteUnit]:
        return [u for u in self.units if not u.opaque]

    def opaque_units(self) -> list[RewriteUnit]:
        return [u for u in self.units if u.opaque]

    def coverage(self) -> int:
        """Total bytes covered by extents."""
        return sum(end - start for start, end, _ in self.extents)

    def to_dict(self) -> dict:
        return {"units": [u.to_dict() for u in self.units]}


def build_plan(module: Module) -> RewritePlan:
    """Derive a :class:`RewritePlan` from a recovered module.

    Recovered functions become units named after their entry symbol;
    code blocks no function owns are grouped into contiguous ``sweep``
    units; data blocks inside ``.text`` (undecodable bytes) become
    ``opaque`` units.
    """
    functions = find_functions(module)
    owner: dict[int, RewriteUnit] = {}
    units: list[RewriteUnit] = []
    for info in functions:
        placed = [b for b in info.blocks if b.address is not None]
        if not placed:
            continue
        unit = RewriteUnit(
            name=info.name,
            start=min(b.address for b in placed),
            end=max(b.address + b.byte_size() for b in placed),
            blocks=tuple(placed),
            origin=ORIGIN_FUNCTION,
        )
        units.append(unit)
        for block in placed:
            owner[block.uid] = unit

    text_blocks = sorted(
        (b for b in module.text().blocks if b.address is not None),
        key=lambda b: b.address)

    # Unowned code blocks: contiguous runs become sweep-derived units.
    run: list = []

    def flush_run():
        if not run:
            return
        unit = RewriteUnit(
            name=f"sweep_{run[0].address:#x}",
            start=run[0].address,
            end=run[-1].address + run[-1].byte_size(),
            blocks=tuple(run),
            origin=ORIGIN_SWEEP,
        )
        units.append(unit)
        for block in run:
            owner[block.uid] = unit
        run.clear()

    for block in text_blocks:
        if block.uid in owner:
            flush_run()
            continue
        if not block.is_code:
            flush_run()
            unit = RewriteUnit(
                name=f"opaque_{block.address:#x}",
                start=block.address,
                end=block.address + block.byte_size(),
                blocks=(block,),
                opaque=True,
                origin=ORIGIN_DATA,
            )
            units.append(unit)
            owner[block.uid] = unit
            continue
        if run and run[-1].address + run[-1].byte_size() != block.address:
            flush_run()
        run.append(block)
    flush_run()

    # Extents: coalesce consecutive same-owner blocks.
    extents: list[tuple[int, int, RewriteUnit]] = []
    for block in text_blocks:
        unit = owner.get(block.uid)
        if unit is None:
            continue
        start = block.address
        end = start + block.byte_size()
        if extents and extents[-1][2] is unit and extents[-1][1] == start:
            extents[-1] = (extents[-1][0], end, unit)
        else:
            extents.append((start, end, unit))

    units.sort(key=lambda u: u.start)
    return RewritePlan(units=units, extents=extents)


def recover_plan(exe: Executable, mode: str = "refined"):
    """Disassemble ``exe`` and build its rewrite plan.

    Returns ``(module, plan)``; works on stripped inputs, where plan
    units come from entry-reachability and sweep recovery instead of
    symbols.
    """
    module = disassemble(exe, mode=mode)
    plan = build_plan(module)
    return module, plan
