"""Function boundary identification over a recovered module.

Roots are the module entry and every direct call target; a function owns
the blocks reachable from its root through branch/fallthrough edges
without crossing into another root.  (The paper notes Rev.ng leans on
code pointers for entry points — indirect call targets found during
symbolization are added as roots too.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gtirb.cfg import build_cfg
from repro.gtirb.ir import CodeBlock, Module, Symbol
from repro.isa.insn import Mnemonic


@dataclass
class FunctionInfo:
    """One recovered function."""

    symbol: Symbol
    entry_block: CodeBlock
    blocks: list[CodeBlock] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.symbol.name

    def instruction_count(self) -> int:
        return sum(len(b.entries) for b in self.blocks)


def find_functions(module: Module) -> list[FunctionInfo]:
    """Partition code blocks into functions."""
    cfg = build_cfg(module)
    text_blocks = module.text().code_blocks()
    if not text_blocks:
        return []

    roots: dict[int, CodeBlock] = {}

    def add_root(block: CodeBlock):
        roots.setdefault(block.uid, block)

    if module.entry is not None and \
            isinstance(module.entry.referent, CodeBlock):
        add_root(module.entry.referent)
    else:
        add_root(text_blocks[0])
    for block in text_blocks:
        for entry in block.entries:
            if entry.insn.mnemonic is not Mnemonic.CALL:
                continue
            expr = entry.sym_operands.get(0)
            if expr is not None and isinstance(expr.symbol.referent,
                                               CodeBlock):
                add_root(expr.symbol.referent)
    # data-held code pointers (e.g. function-pointer tables)
    for section in module.sections:
        if section.name == ".text":
            continue
        for block in section.blocks:
            if block.is_code:
                continue
            for item in block.items:
                if isinstance(item, tuple) and len(item) == 2 and \
                        hasattr(item[0], "symbol"):
                    referent = item[0].symbol.referent
                    if isinstance(referent, CodeBlock):
                        add_root(referent)

    owned: dict[int, int] = {}  # block uid -> root uid
    functions: list[FunctionInfo] = []
    for root in roots.values():
        symbol = _symbol_for_root(module, root)
        info = FunctionInfo(symbol, root)
        functions.append(info)
        stack = [root]
        while stack:
            block = stack.pop()
            if block.uid in owned:
                continue
            if block.uid in roots and block is not root:
                continue
            owned[block.uid] = root.uid
            info.blocks.append(block)
            for edge in cfg.successors(block):
                if edge.kind in ("fallthrough", "branch") and \
                        edge.dst is not None:
                    stack.append(edge.dst)
    for info in functions:
        info.blocks.sort(key=lambda b: (b.address is None,
                                        b.address or b.uid))
    return functions


def _symbol_for_root(module: Module, root: CodeBlock) -> Symbol:
    existing = module.symbols_for(root)
    if existing:
        named = [s for s in existing if not s.name.startswith(".")]
        return (named or existing)[0]
    return module.fresh_symbol("func", root)
