"""Code discovery and block construction (stage 1-2 of Fig. 1)."""

from __future__ import annotations

from repro.binfmt.image import Executable
from repro.disasm.symbolize import symbolize
from repro.errors import DecodingError, RewriteError
from repro.gtirb.ir import CodeBlock, DataBlock, GSection, InsnEntry, Module
from repro.isa.decoder import decode
from repro.isa.insn import Instruction, Mnemonic

_BLOCK_ENDERS = (Mnemonic.JMP, Mnemonic.JCC, Mnemonic.CALL, Mnemonic.RET,
                 Mnemonic.HLT, Mnemonic.UD2, Mnemonic.INT3)


def disassemble(exe: Executable, mode: str = "refined") -> Module:
    """Recover a rewritable :class:`Module` from a linked executable.

    ``mode`` selects the symbolization heuristics (``"refined"`` or
    ``"naive"``, see package docstring).
    """
    text = exe.section(".text")
    instructions = _discover(exe, text)
    leaders = _find_leaders(exe, instructions, text)
    module = Module(name="recovered")

    text_blocks = _build_blocks(exe, text, instructions, leaders)
    module.sections.append(GSection(".text", text_blocks, "rx"))
    for section in exe.sections:
        if section.name == ".text" or "x" in section.flags:
            continue
        if section.nobits:
            block = DataBlock(address=section.addr, zero_fill=True,
                              zero_size=section.mem_size)
        else:
            data = section.data
            if section.mem_size > len(data):
                data = data + bytes(section.mem_size - len(data))
            block = DataBlock(address=section.addr, items=[data])
        module.sections.append(GSection(section.name, [block],
                                        section.flags))

    symbolize(module, exe, mode=mode)
    return module


# ---------------------------------------------------------------------------


def _text_symbols(exe: Executable):
    """Static and dynamic symbols anchored in ``.text``."""
    return [s for s in exe.recovery_symbols() if s.section == ".text"]


def _discover(exe: Executable, text) -> dict[int, Instruction]:
    """Recursive-descent discovery of instructions in ``.text``."""
    roots = [exe.entry]
    roots += [s.value for s in _text_symbols(exe)]
    instructions: dict[int, Instruction] = {}
    worklist = [a for a in roots if text.contains(a)]
    while worklist:
        address = worklist.pop()
        while text.contains(address) and address not in instructions:
            offset = address - text.addr
            try:
                insn = decode(text.data, offset, address)
            except DecodingError:
                break  # leave the rest of this path to the sweep stage
            instructions[address] = insn
            target = insn.branch_target()
            if target is not None and text.contains(target):
                worklist.append(target)
            if insn.mnemonic in (Mnemonic.JMP, Mnemonic.RET, Mnemonic.HLT,
                                 Mnemonic.UD2, Mnemonic.INT3):
                break
            address += insn.length
    return instructions


def _find_leaders(exe: Executable, instructions, text) -> set[int]:
    """Block leader addresses: entry, targets, post-terminator, symbols."""
    leaders = {exe.entry}
    leaders.update(s.value for s in _text_symbols(exe))
    for address, insn in instructions.items():
        target = insn.branch_target()
        if target is not None and text.contains(target):
            leaders.add(target)
        if insn.mnemonic in _BLOCK_ENDERS:
            leaders.add(address + insn.length)
    return {a for a in leaders if a in instructions or a == exe.entry}


def _build_blocks(exe: Executable, text, instructions, leaders):
    """Partition discovered instructions into address-ordered blocks.

    Gaps between discovered runs are linearly swept; bytes that do not
    decode become data-in-text blocks (e.g. alignment padding).
    """
    placed: list[tuple[int, object]] = []
    addresses = sorted(instructions)
    current: list[InsnEntry] = []
    current_start = None
    previous_end = None

    def flush():
        nonlocal current, current_start
        if current:
            placed.append((current_start, CodeBlock(current_start, current)))
        current = []
        current_start = None

    for address in addresses:
        insn = instructions[address]
        if address in leaders or previous_end != address:
            flush()
        if current_start is None:
            current_start = address
        if previous_end is not None and address < previous_end:
            raise RewriteError(
                f"overlapping instructions at {address:#x}")
        current.append(InsnEntry(insn))
        previous_end = address + insn.length
        if insn.mnemonic in _BLOCK_ENDERS:
            flush()
            previous_end_after = previous_end
            previous_end = previous_end_after
    flush()

    # sweep uncovered byte ranges
    covered = sorted(
        (i, i + instructions[i].length) for i in addresses)
    gaps = []
    cursor = text.addr
    for start, end in covered:
        if start > cursor:
            gaps.append((cursor, start))
        cursor = max(cursor, end)
    if cursor < text.addr + len(text.data):
        gaps.append((cursor, text.addr + len(text.data)))
    for start, end in gaps:
        blob = text.data[start - text.addr:end - text.addr]
        swept = _sweep(blob, start)
        placed.extend(swept)

    placed.sort(key=lambda pair: pair[0])
    return [block for _, block in placed]


def _sweep(blob: bytes, address: int):
    """Linear sweep over a gap; undecodable tails become data blocks."""
    placed = []
    entries: list[InsnEntry] = []
    start = address
    offset = 0
    while offset < len(blob):
        try:
            insn = decode(blob, offset, address + offset)
        except DecodingError:
            break
        entries.append(InsnEntry(insn))
        offset += insn.length
        if insn.mnemonic in _BLOCK_ENDERS:
            placed.append((start, CodeBlock(start, entries)))
            entries = []
            start = address + offset
    if entries:
        placed.append((start, CodeBlock(start, entries)))
        start = address + offset
    if offset < len(blob):
        placed.append((address + offset,
                       DataBlock(address + offset, [blob[offset:]])))
    return placed
