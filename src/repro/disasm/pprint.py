"""Pretty-printer: GTIRB module -> reassembleable assembly text.

The output is consumed by ``repro.asm.assemble`` — symbolic expressions
are rendered as labels, so the assembler's relocation machinery rebuilds
every reference against the *new* layout (stage 4 of Fig. 1).
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.gtirb.ir import CodeBlock, DataBlock, InsnEntry, Module, SymExpr
from repro.isa.insn import Mnemonic
from repro.isa.operands import Imm, Mem, Reg

_SIZE_NAMES = {1: "byte", 2: "word", 4: "dword", 8: "qword"}


def pretty_print(module: Module) -> str:
    """Render ``module`` as assembly source."""
    lines = [f"# reassembleable disassembly of {module.name}"]
    if module.entry is None:
        raise RewriteError("module has no entry symbol")
    lines.append(f".entry {module.entry.name}")
    for symbol in module.symbols:
        if symbol.is_global and not symbol.name.startswith("."):
            lines.append(f".global {symbol.name}")

    labels_of = _labels_by_block(module)
    for section in module.sections:
        lines.append("")
        lines.append(f".section {section.name}")
        for block in section.blocks:
            for name in labels_of.get(id(block), []):
                lines.append(f"{name}:")
            if isinstance(block, CodeBlock):
                for entry in block.entries:
                    lines.append(f"    {render_instruction(entry)}")
            else:
                lines.extend(_render_data(block))
    lines.append("")
    return "\n".join(lines)


def _labels_by_block(module: Module) -> dict[int, list[str]]:
    table: dict[int, list[str]] = {}
    for symbol in module.symbols:
        if symbol.referent is not None:
            table.setdefault(id(symbol.referent), []).append(symbol.name)
    for names in table.values():
        names.sort()
    return table


# ---------------------------------------------------------------------------


def render_instruction(entry: InsnEntry) -> str:
    """Assembly text for one instruction, honoring symbolic operands."""
    insn = entry.insn
    name = insn.name
    if insn.mnemonic is Mnemonic.MOV and len(insn.operands) == 2 and \
            isinstance(insn.operands[1], Imm) and \
            insn.operands[1].size == 8 and 1 not in entry.sym_operands:
        name = "movabs"
    if not insn.operands:
        return name
    rendered = []
    for index, operand in enumerate(insn.operands):
        expr = entry.sym_operands.get(index)
        if expr is None:
            rendered.append(_render_plain(operand))
        else:
            rendered.append(_render_symbolic(operand, expr))
    return f"{name} {', '.join(rendered)}"


def _render_plain(operand) -> str:
    if isinstance(operand, Reg):
        return operand.register.name
    if isinstance(operand, Imm):
        return str(operand.value)
    if isinstance(operand, Mem):
        if operand.is_rip_relative:
            raise RewriteError(
                f"cannot print unsymbolized RIP-relative operand {operand}")
        return str(operand)  # Mem.__str__ is parseable Intel syntax
    raise RewriteError(f"cannot print operand {operand!r}")


def _render_symbolic(operand, expr: SymExpr) -> str:
    if expr.kind == "branch":
        return str(expr)
    if expr.kind == "imm":
        return f"offset {expr}"
    if expr.kind == "mem":
        if not isinstance(operand, Mem):
            raise RewriteError(f"mem expression on non-memory {operand!r}")
        size = _SIZE_NAMES[operand.size]
        if operand.is_rip_relative:
            return f"{size} ptr [rel {expr}]"
        return f"{size} ptr [{expr}]"
    raise RewriteError(f"unknown SymExpr kind {expr.kind!r}")


def _render_data(block: DataBlock) -> list[str]:
    lines = []
    if block.zero_fill:
        lines.append(f"    .zero {block.zero_size}")
        return lines
    if block.address is not None and block.address % 8 == 0:
        lines.insert(0, "    .align 8")
    for item in block.items:
        if isinstance(item, bytes):
            for start in range(0, len(item), 12):
                chunk = item[start:start + 12]
                values = ", ".join(f"{b:#04x}" for b in chunk)
                lines.append(f"    .byte {values}")
        else:
            expr, size = item
            directive = {8: ".quad", 4: ".long", 2: ".word",
                         1: ".byte"}[size]
            lines.append(f"    {directive} {expr}")
    return lines
