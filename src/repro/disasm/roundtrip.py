"""Reassembly: module -> assembly -> executable (stage 3-4 glue)."""

from __future__ import annotations

from repro.asm import assemble
from repro.binfmt.image import Executable
from repro.disasm.pprint import pretty_print
from repro.gtirb.ir import Module


def reassemble(module: Module) -> Executable:
    """Pretty-print ``module`` and assemble it into a fresh executable."""
    return assemble(pretty_print(module))


def rewrite(exe: Executable, transform=None, mode: str = "refined"):
    """Disassemble -> optional transform -> reassemble.

    ``transform`` receives the recovered module and may mutate it;
    returns the rewritten executable.
    """
    from repro.disasm.recover import disassemble

    module = disassemble(exe, mode=mode)
    if transform is not None:
        transform(module)
    return reassemble(module)
