"""Ddisasm-style binary recovery: disassembly, symbolization, printing.

``disassemble`` lifts an :class:`~repro.binfmt.image.Executable` into a
:class:`~repro.gtirb.Module`; ``pretty_print`` turns a module back into
assembly text that the repro assembler turns into a working binary —
the "reassembleable disassembly" loop of Section III-B.

Symbolization supports two modes, reproducing the Section III-C
comparison:

* ``naive`` — UROBOROS-style linear scan: any aligned machine word (or
  in-range immediate) whose value lands in a mapped section becomes a
  symbol+addend reference.  Fast, but address-looking constants are
  falsely symbolized and break when the layout shifts.
* ``refined`` — Ddisasm-style: code references must target recovered
  instruction-block leaders, data references must target recognized
  item starts; everything else stays a plain constant.
"""

from repro.disasm.recover import disassemble
from repro.disasm.pprint import pretty_print
from repro.disasm.functions import find_functions
from repro.disasm.roundtrip import reassemble
from repro.disasm.units import (
    RewritePlan, RewriteUnit, build_plan, recover_plan)

__all__ = ["disassemble", "pretty_print", "find_functions", "reassemble",
           "RewritePlan", "RewriteUnit", "build_plan", "recover_plan"]
