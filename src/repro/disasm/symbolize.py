"""Symbolization: turn concrete addresses back into symbolic references.

This is the heart of reassembleable disassembly (Section III-C of the
paper): after linking, every reference is a bare integer, and the
rewriter must decide which integers are *addresses* (to be re-expressed
as symbols that survive layout shifts) and which are plain constants.

Two heuristic sets are implemented:

* ``naive``   — UROBOROS-style: any aligned data word or in-range
  immediate whose integer value falls inside a mapped section becomes
  ``anchor+addend``.  Demonstrably wrong on address-looking constants
  (see the planted ``decoy_value`` in the bootloader workload).
* ``refined`` — Ddisasm-style: a code reference must land on a
  recovered block leader; a data reference must land on a recognized
  item start (an address referenced by code, a symbol, or another
  accepted pointer).  In-range ALU immediates stay constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.binfmt import elfdefs
from repro.binfmt.image import Executable
from repro.gtirb.ir import (
    DataBlock, InsnEntry, Module, SymExpr, Symbol)
from repro.isa.insn import Mnemonic
from repro.isa.operands import Imm, Mem


@dataclass
class _Ref:
    kind: str          # branch | mem | imm
    entry: InsnEntry
    op_index: int
    target: int


def symbolize(module: Module, exe: Executable, mode: str = "refined"):
    """Attach symbolic expressions to ``module`` (mutates it)."""
    if mode not in ("refined", "naive"):
        raise ValueError(f"unknown symbolization mode {mode!r}")

    text_section = module.text()
    code_by_addr = {b.address: b for b in text_section.blocks if b.is_code}
    ranges = exe.address_ranges()

    def in_ranges(value: int) -> bool:
        return any(start <= value < end for start, end in ranges)

    # ---- collect code-side references ---------------------------------
    refs: list[_Ref] = []
    for block in text_section.blocks:
        if not block.is_code:
            continue
        for entry in block.entries:
            refs.extend(_entry_refs(entry, in_ranges, mode))

    # ---- data sections: split points and pointer scan ---------------------
    known_symbols = exe.recovery_symbols()
    anchors: set[int] = set(code_by_addr)
    anchors.update(s.value for s in known_symbols)
    data_sections = [s for s in module.sections if s.name != ".text"]
    raw = {}
    for section in data_sections:
        block = section.blocks[0]
        raw[section.name] = (block.address, None if block.zero_fill
                             else b"".join(block.items),
                             block.byte_size())

    split_points: dict[str, set[int]] = {
        s.name: {raw[s.name][0]} for s in data_sections}
    sym_words: dict[str, dict[int, int]] = {
        s.name: {} for s in data_sections}

    def note_target(value: int):
        for section in data_sections:
            base, _, size = raw[section.name]
            if base <= value < base + size:
                split_points[section.name].add(value)
                return
        # targets in .text are anchored to code blocks, no split needed

    for sym in known_symbols:
        note_target(sym.value)
    for ref in refs:
        note_target(ref.target)
        anchors.add(ref.target)

    # Dynamic relocations are symbolization ground truth: each RELATIVE
    # entry marks a pointer-sized word whose value is an address, even
    # when no heuristic would accept it (stripped PIEs).
    for reloc in exe.relocations:
        if reloc.rtype != elfdefs.R_X86_64_RELATIVE:
            continue
        if reloc.section not in sym_words:
            continue
        base, data, _ = raw[reloc.section]
        if data is None or reloc.offset + 8 > len(data):
            continue
        value = int.from_bytes(
            data[reloc.offset:reloc.offset + 8], "little")
        sym_words[reloc.section][reloc.offset] = value
        anchors.add(value)
        note_target(value)

    # pointer scan to fixpoint: accepted pointers create new anchors
    changed = True
    while changed:
        changed = False
        for section in data_sections:
            base, data, _ = raw[section.name]
            if data is None:
                continue  # NOBITS: nothing to scan
            words = sym_words[section.name]
            for offset in range(0, len(data) - 7, 8):
                if offset in words:
                    continue
                value = int.from_bytes(data[offset:offset + 8], "little")
                if not in_ranges(value):
                    continue
                if mode == "refined" and value not in anchors:
                    continue
                words[offset] = value
                anchors.add(value)
                note_target(value)
                changed = True

    # drop scanned words that a split point would tear apart
    for section in data_sections:
        base, _, _ = raw[section.name]
        words = sym_words[section.name]
        for offset in list(words):
            word_start = base + offset
            if any(word_start < point < word_start + 8
                   for point in split_points[section.name]):
                del words[offset]

    # ---- rebuild data blocks between split points -------------------------
    data_by_addr: dict[int, DataBlock] = {}
    for section in data_sections:
        base, data, size = raw[section.name]
        points = sorted(split_points[section.name] | {base + size})
        blocks = []
        for start, end in zip(points, points[1:]):
            if end <= start:
                continue
            if data is None:
                block = DataBlock(address=start, zero_fill=True,
                                  zero_size=end - start)
            else:
                block = DataBlock(address=start, items=_slice_items(
                    data, base, start, end, sym_words[section.name]))
            blocks.append(block)
            data_by_addr[start] = block
        section.blocks = blocks

    # ---- create symbols and attach expressions ------------------------------
    name_by_addr = {}
    for sym in known_symbols:
        name_by_addr.setdefault(sym.value, sym.name)
    global_names = {s.name for s in known_symbols if s.is_global}
    made: dict[int, Symbol] = {}

    def symbol_for(target: int) -> Symbol | None:
        if target in made:
            return made[target]
        referent = code_by_addr.get(target) or data_by_addr.get(target)
        addend_base = None
        if referent is None:
            if mode == "naive":
                addend_base = _containing(
                    target, code_by_addr, data_by_addr)
                if addend_base is None:
                    return None
                referent_addr, referent = addend_base
            else:
                return None
        name = name_by_addr.get(
            getattr(referent, "address", None) or target,
            f".L_{getattr(referent, 'address', target):x}")
        base_addr = referent.address
        if base_addr in made:
            return made[base_addr]
        symbol = Symbol(name, referent, is_global=name in global_names)
        module.symbols.append(symbol)
        made[base_addr] = symbol
        return symbol

    unresolved = []
    for ref in refs:
        symbol = symbol_for(ref.target)
        if symbol is None:
            unresolved.append(ref)
            continue
        addend = ref.target - symbol.referent.address
        if ref.kind == "branch" and addend != 0:
            unresolved.append(ref)
            continue
        ref.entry.sym_operands[ref.op_index] = SymExpr(
            ref.kind, symbol, addend)

    for section in data_sections:
        base, data, _ = raw[section.name]
        if data is None:
            continue
        words = sym_words[section.name]
        for block in section.blocks:
            new_items = []
            for item in block.items:
                new_items.append(item)
            block.items = [
                _to_symexpr(item, symbol_for) for item in block.items]

    # ---- entry symbol ---------------------------------------------------
    entry_block = code_by_addr.get(exe.entry)
    entry_name = name_by_addr.get(exe.entry)
    if exe.entry in made:
        module.entry = made[exe.entry]
    elif entry_block is not None:
        module.entry = module.add_symbol(entry_name or "_start",
                                         entry_block, is_global=True)
        made[exe.entry] = module.entry
    module.entry.is_global = True

    # name remaining symbol-bearing exe symbols for readability
    for sym in known_symbols:
        if sym.value in made or sym.value not in code_by_addr and \
                sym.value not in data_by_addr:
            continue
        symbol_for(sym.value)

    module.aux["symbolization_mode"] = mode
    module.aux["unresolved_refs"] = [
        (r.kind, r.target) for r in unresolved]
    module.aux["symbolized_words"] = sum(
        len(words) for words in sym_words.values())


def _entry_refs(entry: InsnEntry, in_ranges, mode: str) -> list[_Ref]:
    insn = entry.insn
    refs = []
    if insn.mnemonic in (Mnemonic.JMP, Mnemonic.JCC, Mnemonic.CALL):
        target = insn.branch_target()
        if target is not None:
            refs.append(_Ref("branch", entry, 0, target))
            return refs
    for index, operand in enumerate(insn.operands):
        if isinstance(operand, Mem):
            if operand.is_rip_relative:
                target = insn.end_address + operand.disp
                refs.append(_Ref("mem", entry, index, target))
            elif operand.base is None and operand.index is None and \
                    in_ranges(operand.disp):
                refs.append(_Ref("mem", entry, index, operand.disp))
        elif isinstance(operand, Imm):
            is_movabs = (insn.mnemonic is Mnemonic.MOV and
                         operand.size == 8)
            if is_movabs and in_ranges(operand.value):
                refs.append(_Ref("imm", entry, index, operand.value))
            elif mode == "naive" and operand.size >= 4 and \
                    in_ranges(operand.value):
                # UROBOROS-style: any in-range immediate is a pointer
                refs.append(_Ref("imm", entry, index, operand.value))
    return refs


def _slice_items(data: bytes, base: int, start: int, end: int,
                 words: dict[int, int]) -> list:
    """Cut [start, end) out of a section blob, marking pointer words."""
    items = []
    offset = start - base
    stop = end - base
    while offset < stop:
        if offset in words and offset + 8 <= stop:
            items.append(("symword", words[offset]))
            offset += 8
            continue
        next_word = min(
            (w for w in words if offset < w < stop and w + 8 <= stop),
            default=stop)
        items.append(data[offset:next_word])
        offset = next_word
    return items


def _to_symexpr(item, symbol_for):
    if isinstance(item, tuple) and item[0] == "symword":
        value = item[1]
        symbol = symbol_for(value)
        if symbol is None:
            return value.to_bytes(8, "little")
        addend = value - symbol.referent.address
        return (SymExpr("mem", symbol, addend), 8)
    return item


def _containing(target: int, code_by_addr, data_by_addr):
    """Naive-mode anchor: the block whose range contains ``target``."""
    best = None
    for addr, block in list(code_by_addr.items()) + \
            list(data_by_addr.items()):
        if addr <= target < addr + block.byte_size():
            if best is None or addr > best[0]:
                best = (addr, block)
    return best
