"""Direct module -> assembler-Program emission with provenance tags.

The textual pretty-printer is kept for humans and round-trip tests; the
rewriting loop uses this structured path instead, because the assembler
can then report the final address of every :class:`InsnEntry` — the
mapping the Faulter+Patcher iteration needs to translate fault addresses
back to rewritable entries.
"""

from __future__ import annotations

from repro.asm.source import (
    AlignStmt, DataStmt, InsnStmt, LabelDef, Program, SpaceStmt)
from repro.errors import RewriteError
from repro.gtirb.ir import CodeBlock, Module, SymExpr
from repro.isa.insn import Instruction
from repro.isa.operands import Label, Mem
from repro.isa.registers import RIP


def module_to_program(module: Module) -> Program:
    """Build an assembler Program from ``module`` (tags = InsnEntry)."""
    program = Program()
    if module.entry is None:
        raise RewriteError("module has no entry symbol")
    program.entry = module.entry.name
    for symbol in module.symbols:
        if symbol.is_global and not symbol.name.startswith("."):
            program.globals.add(symbol.name)

    labels: dict[int, list[str]] = {}
    for symbol in module.symbols:
        if symbol.referent is not None:
            labels.setdefault(id(symbol.referent), []).append(symbol.name)

    for section in module.sections:
        items = program.items(section.name)
        for block in section.blocks:
            for name in sorted(labels.get(id(block), [])):
                items.append(LabelDef(name))
            if isinstance(block, CodeBlock):
                for entry in block.entries:
                    items.append(InsnStmt(
                        _symbolic_instruction(entry), tag=entry))
            else:
                items.extend(_data_items(block))
    return program


def _symbolic_instruction(entry) -> Instruction:
    """Replace operands covered by SymExprs with Label operands."""
    if not entry.sym_operands:
        return entry.insn
    new_ops = []
    for index, operand in enumerate(entry.insn.operands):
        expr = entry.sym_operands.get(index)
        if expr is None:
            new_ops.append(operand)
            continue
        label = Label(expr.symbol.name, expr.addend)
        if expr.kind in ("branch", "imm"):
            new_ops.append(label)
        elif expr.kind == "mem":
            if not isinstance(operand, Mem):
                raise RewriteError(
                    f"mem expression on non-memory operand in {entry}")
            base = RIP if operand.is_rip_relative else None
            new_ops.append(Mem(base=base, disp=label, size=operand.size))
        else:
            raise RewriteError(f"unknown SymExpr kind {expr.kind!r}")
    return entry.insn.with_operands(*new_ops)


def _data_items(block) -> list:
    if block.zero_fill:
        return [SpaceStmt(block.zero_size)]
    items: list = []
    if block.address is not None and block.address % 8 == 0:
        items.append(AlignStmt(8))
    stmt = DataStmt([])
    for item in block.items:
        if isinstance(item, bytes):
            stmt.parts.append(item)
        else:
            expr, size = item
            if not isinstance(expr, SymExpr):
                raise RewriteError(f"unexpected data item {item!r}")
            stmt.parts.append((expr.symbol.name, expr.addend, size))
    items.append(stmt)
    return items
