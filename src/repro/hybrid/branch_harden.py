"""Conditional branch hardening (paper Section V-B, Algorithm 1, Fig. 5).

For every conditional branch ``BB1 -> {BB2, BB3}``:

* each basic block gets a compile-time unique ID,
* the edge checksum ``h = UID_dst ^ UID_src`` is computed at run time
  from the *dynamically evaluated* comparison result using the
  branch-free mask construction of Algorithm 1::

      cmp_ext  = zext(cmp_res)          # i1 -> i64
      mask     = cmp_ext - 1            # 0 if taken-true, ~0 if false
      checksum = (~mask & constTdst) | (mask & constFdst)

* the checksum is computed **twice** (D1, D2) into independent values,
  the comparison itself is re-evaluated (C2) and the branch taken on
  C2,
* each destination prepends two nested validation blocks that ``switch``
  on D1 and D2 against the edge's expected value, diverting to a
  fault-response block (``call @abort``) on mismatch.

The UID->constant XORs are emitted as explicit ``xor`` instructions on
constants (not pre-folded), matching the instruction census the paper
reports in Table IV; running the constant-folding pass afterwards elides
them (see the ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.builder import IRBuilder
from repro.ir.instructions import CondBr
from repro.ir.module import BasicBlock, Function, IRModule
from repro.ir.types import I64, VOID
from repro.ir.values import Constant


@dataclass
class HardeningStats:
    """What the pass did (feeds the Table IV / Fig. 5 benches)."""

    branches_hardened: int = 0
    validation_blocks: int = 0
    fault_response_blocks: int = 0
    uids: dict = field(default_factory=dict)  # block name -> uid


class BranchHardening:
    """The hardening pass object (reusable across functions).

    ``branch_filter`` optionally restricts which conditional branches
    are protected (callable ``(block, condbr) -> bool``); the default
    protects every conditional branch, like the paper's holistic
    application.  The selective mode feeds the targeted-vs-holistic
    ablation.
    """

    def __init__(self, uid_seed: int = 0x9E3779B9, branch_filter=None):
        self.uid_seed = uid_seed
        self.branch_filter = branch_filter
        self.stats = HardeningStats()

    # -- UIDs -----------------------------------------------------------------

    def _assign_uids(self, function: Function) -> dict[int, int]:
        """Deterministic, distinct, non-zero UID per basic block.

        UIDs stay below 2^31 so that checksum constants encode as imm32
        on the target (a codegen-size courtesy, not a requirement).
        """
        uids: dict[int, int] = {}
        seen: set[int] = set()
        for index, block in enumerate(function.blocks):
            uid = ((self.uid_seed * (index + 1)) ^ (index << 20)) \
                & 0x7FFF_FFFF
            while uid in seen or uid == 0:
                uid = (uid + 1) & 0x7FFF_FFFF
            seen.add(uid)
            uids[id(block)] = uid
            self.stats.uids[block.name] = uid
        return uids

    # -- pass entry --------------------------------------------------------

    def run(self, target: IRModule | Function) -> bool:
        functions = (target.functions if isinstance(target, IRModule)
                     else [target])
        changed = False
        for function in functions:
            changed |= self._run_function(function)
        return changed

    def _run_function(self, function: Function) -> bool:
        uids = self._assign_uids(function)
        changed = False
        for block in list(function.blocks):
            terminator = block.terminator
            if not isinstance(terminator, CondBr):
                continue
            if self.branch_filter is not None and \
                    not self.branch_filter(block, terminator):
                continue
            self._harden_branch(function, block, terminator, uids)
            changed = True
        return changed

    # -- per-branch rewrite ------------------------------------------------

    def _checksum(self, builder: IRBuilder, cond, uid_src: int,
                  uid_true: int, uid_false: int):
        """One copy of Algorithm 1 (six instructions + two UID xors)."""
        const_true = builder.xor(Constant(I64, uid_true),
                                 Constant(I64, uid_src))
        const_false = builder.xor(Constant(I64, uid_false),
                                  Constant(I64, uid_src))
        cmp_ext = builder.zext(cond, I64)
        mask = builder.sub(cmp_ext, Constant(I64, 1))
        not_mask = builder.not_(mask)
        taken_part = builder.and_(not_mask, const_true)
        fallthrough_part = builder.and_(mask, const_false)
        return builder.or_(taken_part, fallthrough_part)

    def _harden_branch(self, function: Function, block: BasicBlock,
                       terminator: CondBr, uids: dict[int, int]):
        cond = terminator.cond
        true_dst = terminator.if_true
        false_dst = terminator.if_false
        uid_src = uids[id(block)]
        uid_true = uids[id(true_dst)]
        uid_false = uids[id(false_dst)]

        if true_dst is false_dst:
            return  # degenerate branch; nothing to protect

        # build the duplicated checksums before the terminator
        position = block.instructions.index(terminator)
        staging = BasicBlock("staging")  # temporary container
        builder = IRBuilder(staging)
        d1 = self._checksum(builder, cond, uid_src, uid_true, uid_false)
        d2 = self._checksum(builder, cond, uid_src, uid_true, uid_false)
        # re-evaluate the comparison (C2) on a *recloned* computation
        # chain, so C1's operand loads/compares are not shared single
        # points of failure
        c2 = self._clone_chain(builder, cond, depth=8)
        for instruction in staging.instructions:
            instruction.parent = block
            # the whole point is redundancy: CSE must not merge these
            instruction.no_merge = True
        block.instructions[position:position] = staging.instructions

        expected_true = Constant(I64, uid_true ^ uid_src)
        expected_false = Constant(I64, uid_false ^ uid_src)
        # physical layout: false (fall-through) chain directly after the
        # source block, so a skipped `jmp` lands in the right validator
        validated_true = self._validation_chain(
            function, block, true_dst, d1, d2, expected_true, "t",
            after=block)
        validated_false = self._validation_chain(
            function, block, false_dst, d1, d2, expected_false, "f",
            after=block)

        terminator.set_operand(0, c2)
        terminator.replace_successor(true_dst, validated_true)
        terminator.replace_successor(false_dst, validated_false)
        self.stats.branches_hardened += 1

    def _clone_chain(self, builder: IRBuilder, value, depth: int):
        """Clone the instruction DAG producing ``value``.

        Recurses through compares, arithmetic, casts and loads; stops at
        phis, calls, arguments and constants (values whose recomputation
        is either impossible or not meaningful).
        """
        from repro.ir.instructions import (
            BinOp as IRBinOp, ICmp as IRICmp, Load as IRLoad,
            SExt as IRSExt, Trunc as IRTrunc, ZExt as IRZExt)

        if depth <= 0 or not isinstance(
                value, (IRICmp, IRBinOp, IRLoad, IRZExt, IRSExt,
                        IRTrunc)):
            return value

        def clone(operand):
            return self._clone_chain(builder, operand, depth - 1)

        if isinstance(value, IRICmp):
            return builder.icmp(value.pred, clone(value.lhs),
                                clone(value.rhs))
        if isinstance(value, IRBinOp):
            return builder.binop(value.op, clone(value.lhs),
                                 clone(value.rhs))
        if isinstance(value, IRLoad):
            return builder.load(value.type, clone(value.pointer))
        if isinstance(value, IRZExt):
            return builder.zext(clone(value.value), value.type)
        if isinstance(value, IRSExt):
            return builder.sext(clone(value.value), value.type)
        return builder.trunc(clone(value.value), value.type)

    def _validation_chain(self, function: Function, source: BasicBlock,
                          destination: BasicBlock, d1, d2, expected,
                          tag: str, after: BasicBlock) -> BasicBlock:
        """Two nested switch validations + a fault-response block.

        Blocks are placed (in order chk1, chk2, flt_resp) directly after
        ``after``, keeping the fall-through edge physically adjacent.
        """
        base = f"{source.name}_{tag}"
        fault_response = function.add_block(f"flt_resp_{base}",
                                            after=after)
        fault_builder = IRBuilder(fault_response)
        fault_builder.call(VOID, "abort", [])
        fault_builder.unreachable()

        check2 = function.add_block(f"chk2_{base}", after=after)
        builder2 = IRBuilder(check2)
        switch2 = builder2.switch(d2, fault_response)
        switch2.add_case(expected, destination)

        check1 = function.add_block(f"chk1_{base}", after=after)
        builder1 = IRBuilder(check1)
        switch1 = builder1.switch(d1, fault_response)
        switch1.add_case(expected, check2)

        # validation code guards the *source* block's edge: attribute
        # faults landing there back to the source's guest block
        for inserted in (fault_response, check2, check1):
            inserted.copy_guest_origin(source)

        for phi in destination.phis():
            phi.replace_incoming_block(source, check2)

        self.stats.validation_blocks += 2
        self.stats.fault_response_blocks += 1
        return check1


def harden_branches(target: IRModule | Function,
                    uid_seed: int = 0x9E3779B9,
                    branch_filter=None) -> HardeningStats:
    """Run conditional branch hardening; returns pass statistics."""
    hardening = BranchHardening(uid_seed, branch_filter=branch_filter)
    hardening.run(target)
    return hardening.stats


def hardening_report(stats: HardeningStats) -> str:
    lines = [
        "conditional branch hardening:",
        f"  branches hardened     : {stats.branches_hardened}",
        f"  validation blocks     : {stats.validation_blocks}",
        f"  fault-response blocks : {stats.fault_response_blocks}",
    ]
    return "\n".join(lines)
