"""End-to-end Hybrid hardening (Fig. 3, upper path)."""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.binfmt.image import Executable
from repro.emu.machine import run_executable
from repro.errors import ReproError, RewriteError
from repro.faulter.campaign import Faulter
from repro.faulter.report import CampaignReport
from repro.hybrid.branch_harden import HardeningStats, harden_branches
from repro.ir.passes.instcount import instruction_histogram
from repro.ir.passes.pass_manager import standard_cleanup
from repro.ir.verifier import verify
from repro.lift.lifter import Lifter
from repro.lower.pipeline import lower_module
from repro.provenance import ProvenanceMap, with_unit_rollups


@dataclass
class HybridResult:
    """Outcome of the hybrid lift-harden-lower pipeline."""

    hardened: Executable
    lowered_unhardened: Executable
    original_text_size: int
    hardened_text_size: int
    unhardened_lowered_size: int
    hardening: HardeningStats = field(default_factory=HardeningStats)
    ir_histogram_before: Counter = field(default_factory=Counter)
    ir_histogram_after: Counter = field(default_factory=Counter)
    final_reports: dict[str, CampaignReport] = field(default_factory=dict)
    provenance: ProvenanceMap = field(default_factory=lambda:
                                      ProvenanceMap(path="lower"))

    @property
    def overhead_percent(self) -> float:
        """Total code-size overhead vs the original binary (Table V).

        A degenerate empty-``.text`` input has nothing to compare
        against; rollups report 0.0 instead of dividing by zero.
        """
        if self.original_text_size == 0:
            return 0.0
        return 100.0 * (self.hardened_text_size -
                        self.original_text_size) / self.original_text_size

    @property
    def translation_overhead_percent(self) -> float:
        """Overhead from lift+lower alone ("the mere act of lifting...
        adds extra overhead", Section IV-D).  Guarded like
        :attr:`overhead_percent` for empty-``.text`` inputs."""
        if self.original_text_size == 0:
            return 0.0
        return 100.0 * (self.unhardened_lowered_size -
                        self.original_text_size) / self.original_text_size

    def to_dict(self) -> dict:
        """JSON-friendly summary (for CI dashboards / automation)."""
        return {
            "approach": "hybrid",
            "original_text_size": self.original_text_size,
            "hardened_text_size": self.hardened_text_size,
            "overhead_percent": round(self.overhead_percent, 2),
            "translation_overhead_percent": round(
                self.translation_overhead_percent, 2),
            "branches_hardened": self.hardening.branches_hardened,
            "validation_blocks": self.hardening.validation_blocks,
            "ir_delta": dict(self.ir_histogram_after
                             - self.ir_histogram_before),
            "provenance": self.provenance.to_dict(),
            "final_reports": {
                model: report.to_dict()
                for model, report in self.final_reports.items()
            },
        }

    def report(self) -> str:
        lines = [
            "Hybrid hardening report",
            f"  text size: {self.original_text_size}B -> "
            f"{self.hardened_text_size}B ({self.overhead_percent:+.2f}%)",
            f"  of which lift+lower alone: "
            f"{self.translation_overhead_percent:+.2f}%",
            f"  branches hardened: {self.hardening.branches_hardened}",
        ]
        for model, report in self.final_reports.items():
            lines.append(
                f"  final[{model}]: "
                f"{len(report.vulnerable_points())} vulnerable point(s)")
        return "\n".join(lines)


def hybrid_harden(exe: Executable,
                  good_input: bytes,
                  bad_input: bytes,
                  grant_marker,
                  name: str = "target",
                  models: Sequence[str] = (),
                  uid_seed: int = 0x9E3779B9,
                  branch_filter=None,
                  fold_constants: bool = True) -> HybridResult:
    """Lift, harden conditional branches, lower, validate.

    ``grant_marker`` accepts raw marker ``bytes`` or any
    :class:`~repro.faulter.oracle.Oracle` (consumed by the optional
    ``models`` re-fault campaigns; validation compares behaviour).

    ``models`` optionally re-runs fault campaigns against the hardened
    binary (reported in ``final_reports``).  ``fold_constants`` lets the
    cleanup pipeline fold the pass's UID xor instructions into imm32
    constants after the histograms are taken (the Table IV census is
    measured on the unfolded form, as the paper reports it).
    """
    ir_module = Lifter(exe).lift()
    standard_cleanup().run(ir_module)
    function = ir_module.function("entry")
    histogram_before = instruction_histogram(function)

    # size of the lowered-but-unhardened translation (Section IV-D)
    lowered_plain = lower_module(ir_module, exe)

    stats = harden_branches(ir_module, uid_seed,
                            branch_filter=branch_filter)
    verify(ir_module)
    histogram_after = instruction_histogram(function)
    if fold_constants:
        from repro.ir.passes.constfold import constant_fold
        from repro.ir.passes.dce import dce
        constant_fold(function)
        dce(function)
        verify(ir_module)

    hardened, provenance = lower_module(ir_module, exe,
                                        trap_after_jmp=True,
                                        with_provenance=True)
    _carry_dynamic(hardened, exe)
    _carry_dynamic(lowered_plain, exe)
    provenance = _per_unit_provenance(provenance, exe)
    _validate(hardened, exe, good_input, bad_input, grant_marker, name)
    _warn_unguarded_blocks(branch_filter)

    result = HybridResult(
        hardened=hardened,
        lowered_unhardened=lowered_plain,
        original_text_size=exe.code_size(),
        hardened_text_size=hardened.code_size(),
        unhardened_lowered_size=lowered_plain.code_size(),
        hardening=stats,
        ir_histogram_before=histogram_before,
        ir_histogram_after=histogram_after,
        provenance=provenance,
    )
    if models:
        faulter = Faulter(hardened, good_input, bad_input, grant_marker,
                          name=f"{name}-hybrid")
        result.final_reports = {
            m: faulter.run_campaign(m) for m in models}
    return result


class GuidedBranchFilter:
    """Branch filter restricting hardening to faulter-flagged blocks.

    Matches on the lifter's ``guest_address`` block metadata — *not* on
    block names: lifters are free to name blocks however they like, and
    the historical ``g<hex>_...`` name parsing silently disabled all
    hardening when the naming scheme changed.  ``matched``/
    :meth:`unmatched` expose which vulnerable guest blocks the pass
    actually saw, so callers can warn about unguarded ones.
    """

    def __init__(self, vulnerable_blocks):
        self.vulnerable_blocks = frozenset(vulnerable_blocks)
        self.matched: set[int] = set()

    def __call__(self, block, terminator) -> bool:
        address = getattr(block, "guest_address", None)
        if address is None or address not in self.vulnerable_blocks:
            return False
        self.matched.add(address)
        return True

    def unmatched(self) -> frozenset:
        """Vulnerable guest blocks the hardening pass never reached."""
        return self.vulnerable_blocks - self.matched


def faulter_guided_filter(exe: Executable, good_input: bytes,
                          bad_input: bytes, grant_marker: bytes,
                          models: Sequence[str] = ("skip",)):
    """Branch filter protecting only faulter-flagged code (future work).

    The paper's conclusion proposes an iterative countermeasure
    insertion for the Hybrid methodology; this helper runs the faulter
    on the original binary and returns a ``branch_filter`` that hardens
    only branches in guest blocks containing a vulnerable point.
    Vulnerable points that cannot be attributed to a guest block are
    reported via :mod:`warnings` instead of being silently dropped.
    """
    from repro.disasm.recover import disassemble

    faulter = Faulter(exe, good_input, bad_input, grant_marker)
    module = disassemble(exe)
    vulnerable_blocks: set[int] = set()
    for model in models:
        report = faulter.run_campaign(model)
        for point in report.vulnerable_points():
            try:
                _, block, _ = module.find_instruction(point.address)
            except RewriteError:
                warnings.warn(
                    f"vulnerable point {point.address:#x} ({model}) "
                    f"maps to no guest block; it will not guide "
                    f"hardening", stacklevel=2)
                continue
            vulnerable_blocks.add(block.address)

    return GuidedBranchFilter(vulnerable_blocks)


def _warn_unguarded_blocks(branch_filter) -> None:
    """Surface guided-filter blocks the hardening pass never saw."""
    unmatched = getattr(branch_filter, "unmatched", None)
    if not callable(unmatched):
        return
    missing = unmatched()
    if missing:
        rendered = ", ".join(f"{address:#x}"
                             for address in sorted(missing))
        warnings.warn(
            f"faulter-flagged guest block(s) {rendered} were not "
            f"reached by branch hardening (no conditional branch, or "
            f"block not lifted)", stacklevel=2)


def _per_unit_provenance(provenance: ProvenanceMap,
                         exe: Executable) -> ProvenanceMap:
    """Regroup the block-granular map along the original's units."""
    from repro.disasm.units import recover_plan

    _, plan = recover_plan(exe)
    return with_unit_rollups(provenance, plan)


def _carry_dynamic(hardened: Executable, original: Executable) -> None:
    """Carry a PIE original's dynamic tables onto the lowered output.

    Lowering pins data sections at their original addresses but
    regenerates code at a new base, so only entries anchored entirely
    in non-executable sections survive; code-anchored relocations and
    dynamic code symbols are dropped (their layout no longer exists).
    """
    if not original.pie:
        return
    data_sections = {s.name for s in original.sections
                     if not s.executable}

    def data_anchored(reloc) -> bool:
        if reloc.section not in data_sections:
            return False
        return not reloc.anchored or reloc.target_section in data_sections

    hardened.pie = True
    hardened.relocations = [r for r in original.relocations
                            if data_anchored(r)]
    hardened.dynamic_symbols = [s for s in original.dynamic_symbols
                                if s.section in data_sections]


def _validate(hardened, original, good_input, bad_input, marker, name):
    for label, stdin in (("good", good_input), ("bad", bad_input)):
        want = run_executable(original, stdin=stdin)
        got = run_executable(hardened, stdin=stdin)
        if want.behavior() != got.behavior():
            raise ReproError(
                f"{name}: hybrid hardening changed {label}-input "
                f"behaviour: {want} vs {got}")
