"""End-to-end Hybrid hardening (Fig. 3, upper path)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.binfmt.image import Executable
from repro.emu.machine import run_executable
from repro.errors import ReproError
from repro.faulter.campaign import Faulter
from repro.faulter.report import CampaignReport
from repro.hybrid.branch_harden import HardeningStats, harden_branches
from repro.ir.passes.instcount import instruction_histogram
from repro.ir.passes.pass_manager import standard_cleanup
from repro.ir.verifier import verify
from repro.lift.lifter import Lifter
from repro.lower.pipeline import lower_module


@dataclass
class HybridResult:
    """Outcome of the hybrid lift-harden-lower pipeline."""

    hardened: Executable
    lowered_unhardened: Executable
    original_text_size: int
    hardened_text_size: int
    unhardened_lowered_size: int
    hardening: HardeningStats = field(default_factory=HardeningStats)
    ir_histogram_before: Counter = field(default_factory=Counter)
    ir_histogram_after: Counter = field(default_factory=Counter)
    final_reports: dict[str, CampaignReport] = field(default_factory=dict)

    @property
    def overhead_percent(self) -> float:
        """Total code-size overhead vs the original binary (Table V)."""
        return 100.0 * (self.hardened_text_size -
                        self.original_text_size) / self.original_text_size

    @property
    def translation_overhead_percent(self) -> float:
        """Overhead from lift+lower alone ("the mere act of lifting...
        adds extra overhead", Section IV-D)."""
        return 100.0 * (self.unhardened_lowered_size -
                        self.original_text_size) / self.original_text_size

    def to_dict(self) -> dict:
        """JSON-friendly summary (for CI dashboards / automation)."""
        return {
            "approach": "hybrid",
            "original_text_size": self.original_text_size,
            "hardened_text_size": self.hardened_text_size,
            "overhead_percent": round(self.overhead_percent, 2),
            "translation_overhead_percent": round(
                self.translation_overhead_percent, 2),
            "branches_hardened": self.hardening.branches_hardened,
            "validation_blocks": self.hardening.validation_blocks,
            "ir_delta": dict(self.ir_histogram_after
                             - self.ir_histogram_before),
            "final_reports": {
                model: report.to_dict()
                for model, report in self.final_reports.items()
            },
        }

    def report(self) -> str:
        lines = [
            "Hybrid hardening report",
            f"  text size: {self.original_text_size}B -> "
            f"{self.hardened_text_size}B ({self.overhead_percent:+.2f}%)",
            f"  of which lift+lower alone: "
            f"{self.translation_overhead_percent:+.2f}%",
            f"  branches hardened: {self.hardening.branches_hardened}",
        ]
        for model, report in self.final_reports.items():
            lines.append(
                f"  final[{model}]: "
                f"{len(report.vulnerable_points())} vulnerable point(s)")
        return "\n".join(lines)


def hybrid_harden(exe: Executable,
                  good_input: bytes,
                  bad_input: bytes,
                  grant_marker: bytes,
                  name: str = "target",
                  models: Sequence[str] = (),
                  uid_seed: int = 0x9E3779B9,
                  branch_filter=None,
                  fold_constants: bool = True) -> HybridResult:
    """Lift, harden conditional branches, lower, validate.

    ``models`` optionally re-runs fault campaigns against the hardened
    binary (reported in ``final_reports``).  ``fold_constants`` lets the
    cleanup pipeline fold the pass's UID xor instructions into imm32
    constants after the histograms are taken (the Table IV census is
    measured on the unfolded form, as the paper reports it).
    """
    ir_module = Lifter(exe).lift()
    standard_cleanup().run(ir_module)
    function = ir_module.function("entry")
    histogram_before = instruction_histogram(function)

    # size of the lowered-but-unhardened translation (Section IV-D)
    lowered_plain = lower_module(ir_module, exe)

    stats = harden_branches(ir_module, uid_seed,
                            branch_filter=branch_filter)
    verify(ir_module)
    histogram_after = instruction_histogram(function)
    if fold_constants:
        from repro.ir.passes.constfold import constant_fold
        from repro.ir.passes.dce import dce
        constant_fold(function)
        dce(function)
        verify(ir_module)

    hardened = lower_module(ir_module, exe, trap_after_jmp=True)
    _validate(hardened, exe, good_input, bad_input, grant_marker, name)

    result = HybridResult(
        hardened=hardened,
        lowered_unhardened=lowered_plain,
        original_text_size=exe.code_size(),
        hardened_text_size=hardened.code_size(),
        unhardened_lowered_size=lowered_plain.code_size(),
        hardening=stats,
        ir_histogram_before=histogram_before,
        ir_histogram_after=histogram_after,
    )
    if models:
        faulter = Faulter(hardened, good_input, bad_input, grant_marker,
                          name=f"{name}-hybrid")
        result.final_reports = {
            m: faulter.run_campaign(m) for m in models}
    return result


def faulter_guided_filter(exe: Executable, good_input: bytes,
                          bad_input: bytes, grant_marker: bytes,
                          models: Sequence[str] = ("skip",)):
    """Branch filter protecting only faulter-flagged code (future work).

    The paper's conclusion proposes an iterative countermeasure
    insertion for the Hybrid methodology; this helper runs the faulter
    on the original binary and returns a ``branch_filter`` that hardens
    only branches in guest blocks containing a vulnerable point.
    """
    from repro.disasm.recover import disassemble

    faulter = Faulter(exe, good_input, bad_input, grant_marker)
    module = disassemble(exe)
    vulnerable_blocks: set[int] = set()
    for model in models:
        report = faulter.run_campaign(model)
        for point in report.vulnerable_points():
            _, block, _ = module.find_instruction(point.address)
            vulnerable_blocks.add(block.address)

    def branch_filter(block, terminator) -> bool:
        name = block.name
        if not name.startswith("g"):
            return False
        try:
            address = int(name.split("_")[0][1:], 16)
        except ValueError:
            return False
        return address in vulnerable_blocks

    return branch_filter


def _validate(hardened, original, good_input, bad_input, marker, name):
    for label, stdin in (("good", good_input), ("bad", bad_input)):
        want = run_executable(original, stdin=stdin)
        got = run_executable(hardened, stdin=stdin)
        if want.behavior() != got.behavior():
            raise ReproError(
                f"{name}: hybrid hardening changed {label}-input "
                f"behaviour: {want} vs {got}")
