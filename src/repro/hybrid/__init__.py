"""The Hybrid compiler-binary approach (Section IV-C / V-B).

Lift the binary to the SSA IR, run the *conditional branch hardening*
pass (Algorithm 1: per-block UIDs, XOR edge checksums computed twice,
nested validation at both destinations, fault-response blocks), then
lower back to an executable.  A full-duplication pass provides the
paper's 300%-overhead strawman baseline.
"""

from repro.hybrid.branch_harden import (
    BranchHardening, harden_branches, hardening_report)
from repro.hybrid.duplication import duplicate_everything
from repro.hybrid.pipeline import (
    HybridResult, faulter_guided_filter, hybrid_harden)

__all__ = ["BranchHardening", "harden_branches", "hardening_report",
           "duplicate_everything", "hybrid_harden", "HybridResult",
           "faulter_guided_filter"]
