"""Full-duplication strawman (the paper's >=300% baseline).

"Duplicating every instruction, which is the go-to protection scheme
against fault injection, implies at least 300% overhead in code size
(since for each instruction, it will add another copy of the
instruction and a comparison procedure between their results)."

This module implements that scheme honestly at the machine level so the
baseline binary still runs: idempotent instructions are re-executed
into a dead scratch register and compared; non-idempotent ALU updates
are computed twice into two scratch registers, compared, then committed.
Instructions the scheme cannot duplicate (control flow, stack
manipulation, system calls, or sites without enough dead registers) are
left in place and counted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import RegisterLiveness
from repro.gtirb.ir import InsnEntry, Module
from repro.isa.cond import Cond
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Reg
from repro.isa.registers import reg, sub_register
from repro.patcher.patcher import Patcher
from repro.patcher.patterns import PatchBuilder, _operand_regs, _uses_rsp

_DUPLICABLE_IDEMPOTENT = {Mnemonic.MOV, Mnemonic.LEA, Mnemonic.MOVZX,
                          Mnemonic.SETCC, Mnemonic.CMP, Mnemonic.TEST}
_DUPLICABLE_ALU = {Mnemonic.ADD, Mnemonic.SUB, Mnemonic.XOR, Mnemonic.AND,
                   Mnemonic.OR, Mnemonic.IMUL, Mnemonic.INC, Mnemonic.DEC}

RSP = reg("rsp")
RBP = reg("rbp")


@dataclass
class DuplicationStats:
    duplicated: int = 0
    skipped: int = 0

    @property
    def total(self) -> int:
        return self.duplicated + self.skipped


def duplicate_everything(module: Module) -> DuplicationStats:
    """Apply the duplication scheme to every eligible instruction."""
    patcher = Patcher(module)
    stats = DuplicationStats()
    targets = [
        entry
        for block in module.text().code_blocks()
        for entry in list(block.entries)
        if not entry.protected
    ]
    for entry in targets:
        if _duplicate_entry(patcher, entry):
            stats.duplicated += 1
        else:
            stats.skipped += 1
    return stats


def _duplicate_entry(patcher: Patcher, entry: InsnEntry) -> bool:
    insn = entry.insn
    mnemonic = insn.mnemonic
    located = patcher._locate(entry)
    if located is None:
        return False
    section, block, index = located
    if _uses_rsp(entry):
        return False

    liveness = RegisterLiveness(patcher.module)
    dead = liveness.dead_after(block, index)
    dead = frozenset(r for r in dead if r not in (RSP, RBP))
    used = set()
    for operand in insn.operands:
        used |= _operand_regs(operand)
    scratch_candidates = sorted(
        (r for r in dead if r not in used), key=lambda r: r.name)
    flags_live = patcher.flag_liveness().live_after(block, index)
    if flags_live:
        # the verification compare would corrupt live flags
        scratch_candidates = []

    # registers that can be shadowed through a push/pop spill when no
    # dead register is available (any GPR not touched by the insn)
    from repro.isa.registers import all_gpr64
    spillable = [r for r in all_gpr64()
                 if r not in used and r not in (RSP, RBP)]

    builder = PatchBuilder(patcher.module, patcher.ensure_faulthandler(),
                           site=entry)
    built = False
    if mnemonic in _DUPLICABLE_IDEMPOTENT:
        built = _duplicate_idempotent(builder, entry, scratch_candidates,
                                      [] if flags_live else spillable)
    elif mnemonic in _DUPLICABLE_ALU and not flags_live and \
            len(scratch_candidates) >= 2:
        built = _duplicate_alu(builder, entry, scratch_candidates)
    if not built:
        return False
    patcher._splice(section, block, index, builder)
    patcher._invalidate()
    return True


def _duplicate_idempotent(builder: PatchBuilder, entry: InsnEntry,
                          scratch, spillable) -> bool:
    """insn ; insn' (into a shadow register) ; compare ; verify."""
    insn = entry.insn
    builder.copy_original(entry)
    dst = insn.operands[0] if insn.operands else None
    if insn.mnemonic in (Mnemonic.CMP, Mnemonic.TEST):
        builder.copy_original(entry)  # re-execution re-derives the flags
        return True
    shadow_reg = scratch[0] if scratch else None
    spilled = False
    if shadow_reg is None and spillable:
        shadow_reg = spillable[0]
        spilled = True
    if isinstance(dst, Reg) and shadow_reg is not None and \
            len(insn.operands) == 2:
        shadow = Reg(sub_register(shadow_reg, dst.size))
        if spilled:
            builder.insn(Mnemonic.PUSH, Reg(shadow_reg))
        duplicate = InsnEntry(
            Instruction(insn.mnemonic, (shadow, insn.operands[1]),
                        cond=insn.cond),
            dict(entry.sym_operands), protected=True,
            origin=entry.root_site())
        builder.items.append(("insn", duplicate))
        builder.insn(Mnemonic.CMP, dst, shadow)
        ok = builder.module.fresh_symbol("fi_dup_ok", None)
        builder.jump_to(ok, cond=Cond.E)
        builder.call_faulthandler()
        builder.items.append(("label", ok))
        if spilled:
            builder.insn(Mnemonic.POP, Reg(shadow_reg))
        return True
    builder.copy_original(entry)  # plain re-execution
    return True


def _duplicate_alu(builder: PatchBuilder, entry: InsnEntry,
                   scratch) -> bool:
    """Compute twice into scratches, compare, commit."""
    insn = entry.insn
    dst = insn.operands[0] if insn.operands else None
    if not isinstance(dst, Reg) or dst.size != 8:
        builder.copy_original(entry)  # e.g. memory destination: keep
        return True
    s1, s2 = Reg(scratch[0]), Reg(scratch[1])
    syms = dict(entry.sym_operands)
    source = insn.operands[1] if len(insn.operands) > 1 else None

    def shadow_op(shadow: Reg):
        builder.insn(Mnemonic.MOV, shadow, dst)
        if source is not None:
            builder.items.append(("insn", InsnEntry(
                Instruction(insn.mnemonic, (shadow, source)),
                syms, protected=True, origin=entry.root_site())))
        else:
            builder.insn(insn.mnemonic, shadow)

    shadow_op(s1)
    shadow_op(s2)
    builder.insn(Mnemonic.CMP, s1, s2)
    ok = builder.module.fresh_symbol("fi_dup_ok", None)
    builder.jump_to(ok, cond=Cond.E)
    builder.call_faulthandler()
    builder.items.append(("label", ok))
    builder.insn(Mnemonic.MOV, dst, s1)
    return True
