"""Fault effects: what one injected fault does to the machine.

Historically the machine's only injection primitive was a *fetch
intercept*: a callable receiving the decoded instruction and returning
a replacement (or ``None`` for "skip").  That contract can express
encoding glitches but not the state perturbations real campaign tools
evaluate — register corruption, flag upsets, data faults, forced
branches.  The :class:`FaultEffect` protocol generalizes it:

* :class:`FetchEffect` — substitute or drop the fetched instruction
  (subsumes the legacy intercept; skip and encoding corruption live
  here),
* :class:`StateEffect` — mutate CPU registers, flags, memory or the
  PC *around* one dynamic step; the instruction then executes on the
  corrupted state (or not at all, for PC-stage effects).

``Machine.run`` applies at most one effect per dynamic step, exactly
where the old intercept ran, so trace/checkpoint semantics are
unchanged: an effect is a pure function of the machine state at its
step, which is what makes checkpoint replay and cross-process
re-execution bit-identical.

Effects are constructed in-process by fault models
(:meth:`repro.faulter.models.FaultModel.effect`) and never cross a
pickle boundary — the picklable unit stays the ``(model name, detail
tuple)`` pair.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.emu.cpu import branch_target
from repro.isa.decoder import decode
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Mem

# Effect stages (reported by models in docs and diagnostics).
FETCH_STAGE = "fetch"
STATE_STAGE = "state"


class FaultEffect:
    """Protocol: one injected fault applied at one dynamic step."""

    stage = "abstract"

    def apply(self, machine, insn: Instruction) -> Optional[Instruction]:
        """Apply the effect at the faulted step.

        ``insn`` is the instruction decoded at the current PC (under
        multi-fault plans it may differ from the instruction that was
        traced there).  Returns the instruction the machine should
        execute — the original, or a substitute — or ``None`` when the
        effect consumed the step itself, in which case it must leave
        ``machine.cpu.rip`` pointing at the next instruction to fetch.

        May raise :class:`~repro.errors.DecodingError` or
        :class:`~repro.errors.EmulationError`; the machine surfaces
        both as a crash outcome.
        """
        raise NotImplementedError


# ---------------------------------------------------------------------------
# fetch-stage effects
# ---------------------------------------------------------------------------


class FetchEffect(FaultEffect):
    """Substitute or drop the fetched instruction before execution."""

    stage = FETCH_STAGE


class SkipEffect(FetchEffect):
    """The classic glitch: the instruction is fetched, never executed."""

    def apply(self, machine, insn):
        machine.cpu.rip = insn.address + insn.length
        return None


class ReplaceEffect(FetchEffect):
    """Execute a pre-built replacement instruction instead."""

    def __init__(self, replacement: Instruction):
        self.replacement = replacement

    def apply(self, machine, insn):
        return self.replacement


class EncodingBitFlipEffect(FetchEffect):
    """Flip one bit of the fetched encoding and re-decode in place.

    The mutated bytes may form a different valid instruction (possibly
    of a different length, consuming following bytes — as on silicon)
    or an invalid one, which crashes the run.
    """

    def __init__(self, bit: int):
        self.bit = bit

    def apply(self, machine, insn):
        raw = bytearray(machine.memory.fetch(insn.address, 15))
        raw[self.bit // 8] ^= 1 << (self.bit % 8)
        return decode(bytes(raw), 0, insn.address)


class EncodingStuckByteEffect(FetchEffect):
    """One encoding byte reads as 0x00 (stuck-at-zero bus fault)."""

    def __init__(self, index: int):
        self.index = index

    def apply(self, machine, insn):
        raw = bytearray(machine.memory.fetch(insn.address, 15))
        raw[self.index] = 0
        return decode(bytes(raw), 0, insn.address)


class CallableIntercept(FetchEffect):
    """Adapter for the legacy ``(insn, cpu) -> Instruction|None``
    intercept callables still accepted by ``Machine.run``."""

    def __init__(self, intercept: Callable):
        self.intercept = intercept

    def apply(self, machine, insn):
        replacement = self.intercept(insn, machine.cpu)
        if replacement is None:
            machine.cpu.rip = insn.address + insn.length
            return None
        return replacement


def as_effect(value) -> FaultEffect:
    """Coerce a plan entry into a :class:`FaultEffect`."""
    if isinstance(value, FaultEffect):
        return value
    if callable(value):
        return CallableIntercept(value)
    raise TypeError(f"not a fault effect or intercept: {value!r}")


# ---------------------------------------------------------------------------
# state-stage effects
# ---------------------------------------------------------------------------


class StateEffect(FaultEffect):
    """Mutate machine state; the instruction then executes on it."""

    stage = STATE_STAGE

    def mutate(self, machine, insn: Instruction) -> None:
        raise NotImplementedError

    def apply(self, machine, insn):
        self.mutate(machine, insn)
        return insn


class RegisterBitFlipEffect(StateEffect):
    """Flip one bit of one 64-bit GPR just before the step executes."""

    def __init__(self, code: int, bit: int):
        self.code = code
        self.bit = bit

    def mutate(self, machine, insn):
        machine.cpu.regs[self.code] ^= 1 << self.bit


class FlagForceEffect(StateEffect):
    """Force one status flag to a fixed value (stuck-at upset)."""

    def __init__(self, flag: str, value: int):
        self.flag = flag
        self.value = bool(value)

    def mutate(self, machine, insn):
        setattr(machine.cpu.flags, self.flag, self.value)


class MemoryBitFlipEffect(StateEffect):
    """Flip one bit of the cell a memory operand is about to access.

    The effective address is resolved against the *current* machine
    state, exactly like the access itself would; the corrupted byte is
    written permission-blind (a physical upset does not consult the
    MMU) but journaled, so snapshot rollback and checkpoint replay
    both observe it.  If the instruction at the step carries no memory
    operand (possible only under multi-fault corruption), the effect
    has no substrate and is a deterministic no-op.
    """

    def __init__(self, ordinal: int, bit: int):
        self.ordinal = ordinal
        self.bit = bit

    def mutate(self, machine, insn):
        mems = [op for op in insn.operands if isinstance(op, Mem)]
        if self.ordinal >= len(mems):
            return
        mem = mems[self.ordinal]
        address = machine.cpu.effective_address(mem, insn) + self.bit // 8
        cell = machine.memory.peek(address, 1)[0] ^ (1 << (self.bit % 8))
        machine.memory.poke(address, bytes((cell,)))


class BranchInvertEffect(StateEffect):
    """Invert a conditional branch: taken becomes fall-through and
    vice versa.  Consumes the step (the branch never "executes"; the
    PC is redirected directly), mirroring a glitched branch unit."""

    def apply(self, machine, insn):
        if insn.mnemonic is not Mnemonic.JCC:
            return insn  # no conditional to invert (multi-fault drift)
        cpu = machine.cpu
        if insn.cond.evaluate(cpu.flags):
            cpu.rip = insn.address + insn.length
        else:
            cpu.rip = branch_target(cpu, insn)
        return None
