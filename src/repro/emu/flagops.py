"""RFLAGS model and arithmetic flag computation.

The six status flags the subset needs (CF, PF, AF, ZF, SF, OF) with the
architectural RFLAGS bit layout, plus helpers computing flag effects for
each ALU operation class at 1/4/8-byte widths.
"""

from __future__ import annotations


#: PF lookup: PARITY_TABLE[b] is True when byte ``b`` has even parity.
PARITY_TABLE = tuple(
    bin(byte).count("1") % 2 == 0 for byte in range(256))


def _parity(value: int) -> bool:
    """PF: even parity of the low byte."""
    return PARITY_TABLE[value & 0xFF]


class Flags:
    """Mutable status-flag state."""

    __slots__ = ("cf", "pf", "af", "zf", "sf", "of")

    def __init__(self):
        self.cf = False
        self.pf = False
        self.af = False
        self.zf = False
        self.sf = False
        self.of = False

    def copy(self) -> "Flags":
        other = Flags()
        other.cf, other.pf, other.af = self.cf, self.pf, self.af
        other.zf, other.sf, other.of = self.zf, self.sf, self.of
        return other

    def to_rflags(self) -> int:
        """Architectural RFLAGS value (bit 1 always set, IF set)."""
        value = 0x2 | (1 << 9)
        if self.cf:
            value |= 1 << 0
        if self.pf:
            value |= 1 << 2
        if self.af:
            value |= 1 << 4
        if self.zf:
            value |= 1 << 6
        if self.sf:
            value |= 1 << 7
        if self.of:
            value |= 1 << 11
        return value

    def from_rflags(self, value: int):
        self.cf = bool(value & (1 << 0))
        self.pf = bool(value & (1 << 2))
        self.af = bool(value & (1 << 4))
        self.zf = bool(value & (1 << 6))
        self.sf = bool(value & (1 << 7))
        self.of = bool(value & (1 << 11))

    def set_logic_result(self, result: int, width_bits: int):
        """Flag effects of AND/OR/XOR/TEST."""
        self.cf = False
        self.of = False
        self.af = False
        self.zf = result == 0
        self.sf = bool(result >> (width_bits - 1))
        self.pf = _parity(result)

    def set_add(self, a: int, b: int, width_bits: int) -> int:
        mask = (1 << width_bits) - 1
        result = (a + b) & mask
        self.cf = (a + b) > mask
        self.af = ((a & 0xF) + (b & 0xF)) > 0xF
        sign = 1 << (width_bits - 1)
        self.of = bool((~(a ^ b)) & (a ^ result) & sign)
        self.zf = result == 0
        self.sf = bool(result & sign)
        self.pf = _parity(result)
        return result

    def set_sub(self, a: int, b: int, width_bits: int) -> int:
        mask = (1 << width_bits) - 1
        result = (a - b) & mask
        self.cf = a < b
        self.af = (a & 0xF) < (b & 0xF)
        sign = 1 << (width_bits - 1)
        self.of = bool((a ^ b) & (a ^ result) & sign)
        self.zf = result == 0
        self.sf = bool(result & sign)
        self.pf = _parity(result)
        return result

    def set_inc(self, a: int, width_bits: int) -> int:
        """INC: like ADD 1 but CF is preserved."""
        saved_cf = self.cf
        result = self.set_add(a, 1, width_bits)
        self.cf = saved_cf
        return result

    def set_dec(self, a: int, width_bits: int) -> int:
        saved_cf = self.cf
        result = self.set_sub(a, 1, width_bits)
        self.cf = saved_cf
        return result

    def set_neg(self, a: int, width_bits: int) -> int:
        result = self.set_sub(0, a, width_bits)
        self.cf = a != 0
        return result

    def set_imul(self, a: int, b: int, width_bits: int) -> int:
        """Two-operand signed multiply; CF=OF on overflow."""
        mask = (1 << width_bits) - 1
        sign = 1 << (width_bits - 1)
        sa = a - (1 << width_bits) if a & sign else a
        sb = b - (1 << width_bits) if b & sign else b
        full = sa * sb
        result = full & mask
        truncated = result - (1 << width_bits) if result & sign else result
        overflow = truncated != full
        self.cf = overflow
        self.of = overflow
        self.zf = result == 0
        self.sf = bool(result & sign)
        self.pf = _parity(result)
        self.af = False
        return result

    def set_shl(self, a: int, count: int, width_bits: int) -> int:
        count &= 0x3F if width_bits == 64 else 0x1F
        if count == 0:
            return a
        mask = (1 << width_bits) - 1
        result = (a << count) & mask
        self.cf = bool((a >> (width_bits - count)) & 1) if \
            count <= width_bits else False
        sign = 1 << (width_bits - 1)
        if count == 1:
            self.of = bool(result & sign) != self.cf
        self.zf = result == 0
        self.sf = bool(result & sign)
        self.pf = _parity(result)
        return result

    def set_shr(self, a: int, count: int, width_bits: int) -> int:
        count &= 0x3F if width_bits == 64 else 0x1F
        if count == 0:
            return a
        result = a >> count
        self.cf = bool((a >> (count - 1)) & 1)
        sign = 1 << (width_bits - 1)
        if count == 1:
            self.of = bool(a & sign)
        self.zf = result == 0
        self.sf = bool(result & sign)
        self.pf = _parity(result)
        return result

    def set_sar(self, a: int, count: int, width_bits: int) -> int:
        count &= 0x3F if width_bits == 64 else 0x1F
        if count == 0:
            return a
        sign = 1 << (width_bits - 1)
        signed = a - (1 << width_bits) if a & sign else a
        result = (signed >> count) & ((1 << width_bits) - 1)
        self.cf = bool((signed >> (count - 1)) & 1)
        if count == 1:
            self.of = False
        self.zf = result == 0
        self.sf = bool(result & sign)
        self.pf = _parity(result)
        return result

    def __repr__(self):
        bits = "".join(
            name.upper() if getattr(self, name) else name
            for name in ("cf", "pf", "af", "zf", "sf", "of"))
        return f"<Flags {bits}>"
