"""Trace-compiled execution tier for the emulator.

The JIT carves the instruction stream into straight-line *superblocks*
(at most one control transfer, as the terminator), lifts each once
through the existing ``lift``/``ir`` pipeline, and lowers the optimized
IR to a plain Python step function executed by ``Machine.run``'s fast
path.  Precision is preserved by construction:

* register/memory dataflow comes from the lifted IR (bit-exact per the
  differential tests of ``lift/semantics``),
* flag state is *never* taken from the lifted flag approximations —
  instead, exact :class:`~repro.emu.flagops.Flags` updates are replayed
  at block exit for the live tail of flag writers only (see
  ``analysis/flagliveness.flag_materialization``),
* every compiled block commits registers, flags and the PC only after
  all faultable operations succeeded; memory writes are guarded by a
  nested journal mark, so an aborted block leaves no trace and the
  precise stepper re-executes it for the architectural crash state.

``TraceCompiler`` owns the block cache, its coherence under
self-modifying code and checkpoint restores, and the campaign-visible
counters (compiled vs precise steps, divergences, compile time).
"""

from repro.emu.jit.compiler import TraceCompiler

__all__ = ["TraceCompiler"]
