"""The trace compiler: block cache, execution loop, coherence, stats.

Blocks are keyed by static start address, so one compilation serves the
baseline trace *and* every faulted suffix that passes through the same
code — which is where ~95% of campaign steps are spent.  Coherence is
event-driven:

* ``on_exec_write`` (wired through ``Machine._on_exec_write``) evicts
  every block overlapping a write to executable memory and, if the
  write came from inside the currently running block, aborts it with
  :class:`BlockInvalidated` so nothing stale commits;
* ``on_restore`` (checkpoint restores) evicts only blocks compiled
  while the image was dirty — a block compiled from pristine bytes is
  valid in every restored state, because any write that could have
  changed its bytes already evicted it when it happened;
* ``attach`` binds the compiler to a freshly constructed machine
  (pristine image) and is how one block cache survives the engine's
  per-fault machine resets.

Aborted blocks (guest fault or self-modification) roll back their
journaled memory writes and return control to the precise stepper,
which re-executes from the block entry and reproduces the exact
architectural crash state — compiled execution never commits partial
blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import DecodingError, EmulationError, IRError, LiftError
from repro.emu.flagops import PARITY_TABLE
from repro.emu.jit.codegen import JitUnsupported, lower_superblock
from repro.emu.jit.lift import lift_superblock
from repro.emu.jit.superblock import carve
from repro.isa.decoder import decode
from repro.isa.insn import Instruction

_UNCOMPILED = object()

# serialized-block payload schema (see export_blocks/import_blocks);
# bump to orphan previously serialized caches
EXPORT_VERSION = 1


class BlockInvalidated(Exception):
    """Raised mid-block when a store hits the running block's bytes.

    Deliberately *not* an :class:`EmulationError`: it must tunnel out
    of ``Memory.write`` without being classified as a guest fault.
    """


@dataclass
class SuperBlock:
    """One compiled superblock."""

    start: int
    limit: int                       # end address (exclusive)
    count: int                       # guest instructions per execution
    step: Callable                   # fn(cpu, mem, flags)
    writes_memory: bool
    tainted: bool                    # compiled after the image went dirty
    insns: tuple = field(default=())  # body + terminator, decode order
    source: str = ""


class TraceCompiler:
    """Compiles and runs superblocks for a family of machines.

    One instance is shared across all replays of one campaign worker;
    its counters accumulate until :meth:`drain_into` moves them into an
    :class:`~repro.faulter.engine.ExecutionStats`.
    """

    def __init__(self):
        self._blocks: dict[int, Optional[SuperBlock]] = {}
        self._insn_index: dict[int, Instruction] = {}
        self._active: Optional[SuperBlock] = None
        self._dirty = False
        self.compiled_steps = 0
        self.divergences = 0
        self.compile_seconds = 0.0
        self.compiled_blocks = 0

    # -- machine binding ----------------------------------------------

    def attach(self, machine) -> "TraceCompiler":
        """Bind to a machine whose memory holds the pristine image."""
        self._evict_if(lambda block: block is None or block.tainted)
        self._dirty = False
        machine.jit = self
        return self

    def cached_insn(self, address: int) -> Optional[Instruction]:
        """Decoded instruction at ``address``, if a live block has it."""
        return self._insn_index.get(address)

    # -- coherence ----------------------------------------------------

    def _evict_if(self, stale) -> None:
        for start in [s for s, b in self._blocks.items() if stale(b)]:
            block = self._blocks.pop(start)
            if block is not None:
                for insn in block.insns:
                    self._insn_index.pop(insn.address, None)

    def on_exec_write(self, address: int, size: int) -> None:
        """A write landed in executable memory."""
        self._dirty = True
        end = address + size
        if self._blocks:
            self._evict_if(lambda block: block is None or
                           (block.start < end and address < block.limit))
        active = self._active
        if active is not None and active.start < end \
                and address < active.limit:
            raise BlockInvalidated()

    def on_restore(self) -> None:
        """A checkpoint restore may have rewritten dirtied code bytes."""
        if self._dirty:
            self._evict_if(lambda block: block is None or block.tainted)

    # -- compilation --------------------------------------------------

    def _compile_at(self, machine, address: int) -> Optional[SuperBlock]:
        started = time.perf_counter()
        block = None
        try:
            body, terminator = carve(machine, address)
            if body or terminator is not None:
                function = lift_superblock(body, address)
                step, writes_memory, source = lower_superblock(
                    function, body, terminator)
                insns = tuple(body) + (
                    (terminator,) if terminator is not None else ())
                last = insns[-1]
                block = SuperBlock(
                    start=address,
                    limit=last.address + last.length,
                    count=len(insns),
                    step=step,
                    writes_memory=writes_memory,
                    tainted=self._dirty,
                    insns=insns,
                    source=source,
                )
        except (LiftError, IRError, JitUnsupported):
            block = None
        self._blocks[address] = block
        if block is not None:
            self.compiled_blocks += 1
            for insn in block.insns:
                self._insn_index.setdefault(insn.address, insn)
        self.compile_seconds += time.perf_counter() - started
        return block

    # -- execution ----------------------------------------------------

    def execute(self, machine, limit: int) -> int:
        """Run compiled blocks from the current PC, up to ``limit`` steps.

        Returns the number of guest instructions executed (possibly 0).
        Never over-steps: a block longer than the remaining budget is
        left to the precise stepper, which is what keeps fault windows
        and checkpoint boundaries exact.
        """
        executed = 0
        cpu = machine.cpu
        memory = machine.memory
        flags = cpu.flags
        lookup = self._blocks.get
        while executed < limit:
            block = lookup(cpu.rip, _UNCOMPILED)
            if block is _UNCOMPILED:
                block = self._compile_at(machine, cpu.rip)
            if block is None or block.count > limit - executed:
                break
            if block.writes_memory:
                mark = memory.journal_mark()
                self._active = block
                try:
                    block.step(cpu, memory, flags)
                except (BlockInvalidated, EmulationError):
                    # Roll back so the precise stepper re-executes the
                    # block from scratch and lands on the authentic
                    # fault (or safely re-runs the self-modifying
                    # store).
                    self._active = None
                    memory.journal_rollback_to(mark)
                    self.divergences += 1
                    break
                self._active = None
                memory.journal_release(mark)
            else:
                # A block with no stores cannot invalidate itself and
                # leaves nothing to roll back; skip the bookkeeping.
                try:
                    block.step(cpu, memory, flags)
                except EmulationError:
                    self.divergences += 1
                    break
            executed += block.count
        self.compiled_steps += executed
        return executed

    # -- serialization ------------------------------------------------
    #
    # ``lower_superblock`` compiles to a plain Python source string
    # executed into a namespace, so a block cache serializes as those
    # sources plus the instruction addresses to re-decode.  Re-loading
    # costs one exec() per block instead of the full carve -> lift ->
    # IR-optimize -> lower pipeline.

    def export_blocks(self) -> dict:
        """Serializable payload of every live untainted block."""
        blocks = []
        for start in sorted(self._blocks):
            block = self._blocks[start]
            if block is None or block.tainted or not block.source:
                continue
            blocks.append({
                "start": block.start,
                "limit": block.limit,
                "count": block.count,
                "writes_memory": block.writes_memory,
                "source": block.source,
                "addresses": [insn.address for insn in block.insns],
            })
        return {"version": EXPORT_VERSION, "blocks": blocks}

    def import_blocks(self, machine, payload) -> int:
        """Recompile serialized block sources against ``machine``.

        The payload is keyed by the image digest, so the machine's
        pristine bytes match the ones the sources were lowered from;
        each block's instructions are nevertheless re-decoded from the
        live memory and cross-checked against the recorded geometry —
        any mismatch (or any error at all) skips that block and the
        compiler derives it from scratch on demand.  Returns the
        number of blocks imported.
        """
        if not isinstance(payload, dict) \
                or payload.get("version") != EXPORT_VERSION:
            return 0
        imported = 0
        for spec in payload.get("blocks", ()):
            try:
                start = spec["start"]
                if start in self._blocks:
                    continue
                insns = []
                for address in spec["addresses"]:
                    raw = bytes(machine.memory.fetch(address, 15))
                    insns.append(decode(raw, 0, address))
                last = insns[-1]
                if (len(insns) != spec["count"]
                        or insns[0].address != start
                        or last.address + last.length != spec["limit"]):
                    continue
                namespace: dict = {"_PT": PARITY_TABLE}
                exec(compile(spec["source"], f"<jit:{start:#x}>",
                             "exec"), namespace)
                block = SuperBlock(
                    start=start,
                    limit=spec["limit"],
                    count=spec["count"],
                    step=namespace["superblock"],
                    writes_memory=bool(spec["writes_memory"]),
                    tainted=False,
                    insns=tuple(insns),
                    source=spec["source"],
                )
            except (KeyError, IndexError, TypeError, ValueError,
                    SyntaxError, DecodingError, EmulationError):
                continue
            self._blocks[start] = block
            for insn in block.insns:
                self._insn_index.setdefault(insn.address, insn)
            imported += 1
        return imported

    # -- stats --------------------------------------------------------

    def drain_into(self, stats) -> None:
        """Fold-and-reset counters into an ``ExecutionStats``."""
        stats.compiled_steps += self.compiled_steps
        stats.divergences += self.divergences
        stats.compile_seconds += self.compile_seconds
        self.compiled_steps = 0
        self.divergences = 0
        self.compile_seconds = 0.0
