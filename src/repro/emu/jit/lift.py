"""Lift a superblock body to optimized single-block IR.

The register and memory dataflow comes straight from
:class:`repro.lift.semantics.InstructionTranslator` — the same
translation the rewriter uses, kept honest by the differential tests.
The lifter's *flag* model, however, is documented as approximate (no
AF/PF, ``imul`` clears CF/OF, variable shifts update only ZF/SF), so
compiled blocks never consume lifted flag values.  Instead, every flag
writer deposits a readonly ``flag_*`` marker call capturing the exact
operand values the interpreter's :class:`~repro.emu.flagops.Flags`
methods would see; codegen replays those methods at block commit.
``flag_materialization`` prunes the markers to the live tail first, so
a block ending in ``cmp``/``test`` typically replays a single update
("batched flag materialization").

Guest state enters through readonly ``reg_in`` markers (one per GPR)
stored into the :class:`GuestState` allocas, and leaves through
``reg_out`` markers; mem2reg then renames everything into SSA and the
dead stores of the approximate flag model fold away under DCE.
"""

from __future__ import annotations

from repro.analysis.flagliveness import ALL_FLAGS, flag_materialization
from repro.ir.builder import IRBuilder
from repro.ir.module import Function
from repro.ir.passes import PassManager, constant_fold, cse, dce, mem2reg
from repro.ir.types import I8, I64, VOID, FunctionType
from repro.ir.values import Constant
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm
from repro.lift.semantics import InstructionTranslator
from repro.lift.state import GuestState
from repro.isa.registers import all_gpr64

_INC_DEC_FLAGS = frozenset({"pf", "af", "zf", "sf", "of"})
_SHIFT_FLAGS = frozenset({"cf", "pf", "zf", "sf"})

_PIPELINE = PassManager([
    ("mem2reg", mem2reg),
    ("constfold", constant_fold),
    ("cse", cse),
    ("dce", dce),
])


class _FlagMarkers:
    """Collects ``flag_*`` marker calls with their define sets."""

    def __init__(self, translator: InstructionTranslator,
                 builder: IRBuilder):
        self.translator = translator
        self.builder = builder
        self.specs: list[tuple[frozenset, frozenset, object]] = []

    def _emit(self, kind: str, args, bits: int,
              may: frozenset, definite: frozenset):
        call = self.builder.call(
            VOID, f"flag_{kind}", list(args) + [Constant(I64, bits)],
            readonly=True)
        self.specs.append((may, definite, call))

    def capture(self, insn: Instruction):
        """Emit the marker for ``insn`` (before its translation)."""
        translator = self.translator
        builder = self.builder
        mnemonic = insn.mnemonic
        width = translator._width(insn)
        bits = width * 8

        def read(index):
            return translator.read(insn.operands[index], insn, width)

        if mnemonic is Mnemonic.ADD:
            self._emit("add", (read(0), read(1)), bits,
                       ALL_FLAGS, ALL_FLAGS)
        elif mnemonic in (Mnemonic.SUB, Mnemonic.CMP):
            self._emit("sub", (read(0), read(1)), bits,
                       ALL_FLAGS, ALL_FLAGS)
        elif mnemonic in (Mnemonic.AND, Mnemonic.TEST, Mnemonic.OR,
                          Mnemonic.XOR):
            op = ("and" if mnemonic in (Mnemonic.AND, Mnemonic.TEST)
                  else mnemonic.name.lower())
            result = builder.binop(op, read(0), read(1))
            self._emit("logic", (result,), bits, ALL_FLAGS, ALL_FLAGS)
        elif mnemonic is Mnemonic.IMUL:
            self._emit("imul", (read(0), read(1)), bits,
                       ALL_FLAGS, ALL_FLAGS)
        elif mnemonic is Mnemonic.INC:
            self._emit("inc", (read(0),), bits,
                       _INC_DEC_FLAGS, _INC_DEC_FLAGS)
        elif mnemonic is Mnemonic.DEC:
            self._emit("dec", (read(0),), bits,
                       _INC_DEC_FLAGS, _INC_DEC_FLAGS)
        elif mnemonic is Mnemonic.NEG:
            self._emit("neg", (read(0),), bits, ALL_FLAGS, ALL_FLAGS)
        elif mnemonic in (Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR):
            amount = insn.operands[1]
            kind = mnemonic.name.lower()
            if isinstance(amount, Imm):
                masked = amount.value & (0x3F if bits == 64 else 0x1F)
                if masked == 0:
                    return  # architecturally no flag update at all
                defined = _SHIFT_FLAGS | ({"of"} if masked == 1
                                          else frozenset())
                self._emit(kind, (read(0),
                                  Constant(I8, amount.value & 0xFF)),
                           bits, defined, defined)
            else:
                # run-time count: may update everything but AF, or
                # nothing at all when the masked count is zero
                count = translator.read(amount, insn, 1)
                self._emit(kind, (read(0), count), bits,
                           _SHIFT_FLAGS | {"of"}, frozenset())

    def prune(self):
        """Erase markers outside the live tail (batched materialization)."""
        keep = set(flag_materialization(
            [(may, definite) for may, definite, _ in self.specs]))
        for index, (_, _, call) in enumerate(self.specs):
            if index not in keep:
                call.erase()


def lift_superblock(body: list[Instruction], start: int) -> Function:
    """Build and optimize the IR function for one superblock body."""
    function = Function(f"sb_{start:x}", FunctionType(VOID, ()))
    block = function.add_block("body")
    builder = IRBuilder(block)
    state = GuestState(builder)
    translator = InstructionTranslator(state, builder)

    for register in all_gpr64():
        value = builder.call(
            I64, "reg_in", [Constant(I64, register.code)],
            name=f"in_{register.name}", readonly=True)
        builder.store(value, state.reg_slots[register.name])

    markers = _FlagMarkers(translator, builder)
    for insn in body:
        markers.capture(insn)
        translator.translate(insn)
    markers.prune()

    for register in all_gpr64():
        builder.call(
            VOID, "reg_out",
            [Constant(I64, register.code),
             state.read_reg(builder, register)],
            readonly=True)
    builder.ret()

    _PIPELINE.run(function)
    return function
