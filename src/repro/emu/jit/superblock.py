"""Superblock carving: a straight-line run plus an optional terminator.

A superblock is keyed by its static start address, so one compilation
serves *every* visit that reaches the address while the underlying code
bytes are unchanged (the compiler's coherence hooks evict blocks that
self-modifying code touches).  The body may only contain instructions
whose register/memory dataflow the lifter models bit-exactly; anything
flag-*reading* (``jcc`` aside), privileged, or indirect ends the block.

Direct ``jmp``/``jcc``/``call``/``ret`` are compiled in as the block
terminator: the next PC is computed from exact committed flags (``jcc``)
or exact stack traffic (``call``/``ret``), which keeps hot loop bodies
inside the compiled tier instead of bouncing to the precise stepper on
every back edge.
"""

from __future__ import annotations

from repro.errors import DecodingError, EmulationError
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg

#: Upper bound on body length; superblocks this long amortize the
#: per-block dispatch overhead while keeping compile time per block low.
MAX_BODY = 32

_TWO_OPERAND = {
    Mnemonic.MOV, Mnemonic.ADD, Mnemonic.SUB, Mnemonic.CMP,
    Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR, Mnemonic.TEST,
    Mnemonic.IMUL, Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR,
}
_ONE_OPERAND = {
    Mnemonic.INC, Mnemonic.DEC, Mnemonic.NEG, Mnemonic.NOT,
    Mnemonic.PUSH, Mnemonic.POP,
}


def compilable_body(insn: Instruction) -> bool:
    """Can ``insn`` be part of a superblock body?"""
    mnemonic = insn.mnemonic
    operands = insn.operands
    if mnemonic is Mnemonic.NOP:
        return True
    if mnemonic in _TWO_OPERAND:
        return len(operands) == 2
    if mnemonic is Mnemonic.MOVZX:
        return len(operands) == 2 and isinstance(operands[0], Reg)
    if mnemonic is Mnemonic.LEA:
        return (len(operands) == 2 and isinstance(operands[0], Reg)
                and isinstance(operands[1], Mem))
    if mnemonic in _ONE_OPERAND:
        return len(operands) == 1
    return False


def compilable_terminator(insn: Instruction) -> bool:
    """Can ``insn`` terminate a superblock with a computed next-PC?"""
    mnemonic = insn.mnemonic
    if mnemonic in (Mnemonic.JMP, Mnemonic.JCC, Mnemonic.CALL):
        return (len(insn.operands) == 1
                and isinstance(insn.operands[0], Imm))
    if mnemonic is Mnemonic.RET:
        return not insn.operands
    return False


def carve(machine, address: int):
    """Decode the superblock starting at ``address``.

    Returns ``(body, terminator)`` where ``body`` is a (possibly empty)
    list of straight-line instructions and ``terminator`` is a direct
    branch instruction or ``None``.  Decoding shares ``fetch_decode``'s
    cache, so carving doubles as a cache warmer.
    """
    body: list[Instruction] = []
    terminator = None
    cursor = address
    while len(body) < MAX_BODY:
        try:
            insn = machine.fetch_decode(cursor)
        except (DecodingError, EmulationError):
            break
        if compilable_body(insn):
            body.append(insn)
            cursor = insn.address + insn.length
            continue
        if compilable_terminator(insn):
            terminator = insn
        break
    return body, terminator
