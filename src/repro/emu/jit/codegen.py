"""Lower optimized superblock IR to a Python step function.

The emitted function has signature ``fn(cpu, mem, flags)`` and must be
*observationally identical* to stepping the block's instructions through
:class:`~repro.emu.cpu.CPU` — same committed registers, flags, memory
and next PC, and the same exception on the same faulting access.  Three
rules make that hold:

* integer semantics mirror ``ir/interp.py`` exactly (masked arithmetic,
  interpreter shift/udiv edge cases, signed compares via two's
  complement views);
* memory traffic stays in program order (loads/stores can fault or trip
  the self-modification hook mid-block), while registers, flags and the
  PC are committed only at the very end — an aborted block therefore
  leaves no architectural trace beyond journaled memory writes;
* flag state is produced exclusively by replaying the exact
  :class:`~repro.emu.flagops.Flags` methods recorded as ``flag_*``
  markers, in program order, after which a ``jcc`` terminator may
  evaluate its condition on real flag attributes.

Anything the emitter cannot prove it lowers exactly raises
:class:`JitUnsupported` and the block is rejected (the precise stepper
handles it forever after).
"""

from __future__ import annotations

from repro.emu.flagops import PARITY_TABLE
from repro.ir.instructions import (
    Alloca, BinOp, Call, ICmp, IntToPtr, Load, PtrToInt, Ret, Select,
    SExt, Store, Trunc, ZExt)
from repro.ir.module import Function
from repro.ir.values import Constant, Undef, Value
from repro.isa.insn import Instruction, Mnemonic

_M64 = (1 << 64) - 1
_RSP_CODE = 4

_ARITH = {"add": "+", "sub": "-", "mul": "*"}
_LOGIC = {"and": "&", "or": "|", "xor": "^"}
_UNSIGNED_CMP = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
                 "ugt": ">", "uge": ">="}
_SIGNED_CMP = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}

_COND_EXPR = {
    0x0: "flags.of",
    0x2: "flags.cf",
    0x4: "flags.zf",
    0x6: "(flags.cf or flags.zf)",
    0x8: "flags.sf",
    0xA: "flags.pf",
    0xC: "(flags.sf != flags.of)",
    0xE: "(flags.zf or flags.sf != flags.of)",
}


class JitUnsupported(Exception):
    """The IR contains something this emitter cannot lower exactly."""


def _cond_expr(cond) -> str:
    expr = _COND_EXPR[cond.value & ~1]
    if cond.value & 1:
        expr = f"not {expr}"
    return expr


class _Emitter:
    def __init__(self):
        self.names: dict[int, str] = {}
        self.lines: list[str] = []
        self._counter = 0

    def _temp(self) -> str:
        self._counter += 1
        return f"t{self._counter}"

    def ref(self, value: Value) -> str:
        if isinstance(value, Constant):
            return repr(value.unsigned)
        if isinstance(value, Undef):
            return "0"
        name = self.names.get(id(value))
        if name is None:
            raise JitUnsupported(f"value {value!r} has no lowering")
        return name

    def assign(self, value: Value, expr: str):
        name = self._temp()
        self.lines.append(f"{name} = {expr}")
        self.names[id(value)] = name

    def signed(self, value: Value, bits: int) -> str:
        """Two's complement signed view (matches interp's ``_signed``)."""
        if isinstance(value, Constant):
            return repr(value.value)
        name = self.ref(value)
        return (f"({name} - {1 << bits} "
                f"if {name} & {1 << (bits - 1)} else {name})")

    # -- per-instruction lowering -------------------------------------

    def emit(self, inst) -> None:
        if isinstance(inst, BinOp):
            self._emit_binop(inst)
        elif isinstance(inst, ICmp):
            self._emit_icmp(inst)
        elif isinstance(inst, (ZExt, IntToPtr, PtrToInt)):
            # pure reinterpretations: alias the operand
            self.names[id(inst)] = self.ref(inst.value)
        elif isinstance(inst, Trunc):
            self.assign(inst, f"{self.ref(inst.value)} & "
                              f"{inst.type.mask}")
        elif isinstance(inst, SExt):
            source_bits = inst.value.type.bits
            self.assign(inst, f"{self.signed(inst.value, source_bits)}"
                              f" & {inst.type.mask}")
        elif isinstance(inst, Load):
            size = inst.type.bits // 8
            self.assign(inst, f"int.from_bytes(mem.read("
                              f"{self.ref(inst.pointer)}, {size}), "
                              f"'little')")
        elif isinstance(inst, Store):
            self._emit_store(inst)
        elif isinstance(inst, Select):
            cond, if_true, if_false = inst.operands
            self.assign(inst, f"{self.ref(if_true)} if "
                              f"{self.ref(cond)} else "
                              f"{self.ref(if_false)}")
        else:
            raise JitUnsupported(f"cannot lower {inst.opcode}")

    def _emit_binop(self, inst: BinOp):
        op = inst.op
        bits = inst.type.bits
        mask = inst.type.mask
        a = self.ref(inst.lhs)
        if op in _ARITH:
            self.assign(inst,
                        f"({a} {_ARITH[op]} {self.ref(inst.rhs)})"
                        f" & {mask}")
        elif op in _LOGIC:
            self.assign(inst, f"{a} {_LOGIC[op]} {self.ref(inst.rhs)}")
        elif op == "shl":
            if isinstance(inst.rhs, Constant):
                count = inst.rhs.unsigned
                self.assign(inst, f"({a} << {count}) & {mask}"
                            if count < bits else "0")
            else:
                b = self.ref(inst.rhs)
                self.assign(inst, f"(({a} << {b}) & {mask}) "
                                  f"if {b} < {bits} else 0")
        elif op == "lshr":
            if isinstance(inst.rhs, Constant):
                count = inst.rhs.unsigned
                self.assign(inst, f"{a} >> {count}"
                            if count < bits else "0")
            else:
                b = self.ref(inst.rhs)
                self.assign(inst, f"({a} >> {b}) "
                                  f"if {b} < {bits} else 0")
        elif op == "ashr":
            # interp clamps the count to bits-1 and shifts the signed
            # view, masking the result back to width
            signed = self.signed(inst.lhs, bits)
            if isinstance(inst.rhs, Constant):
                count = min(inst.rhs.unsigned, bits - 1)
                self.assign(inst, f"({signed} >> {count}) & {mask}")
            else:
                b = self.ref(inst.rhs)
                self.assign(inst, f"({signed} >> ({b} if {b} < {bits} "
                                  f"else {bits - 1})) & {mask}")
        else:
            raise JitUnsupported(f"binop {op} not lowered")

    def _emit_icmp(self, inst: ICmp):
        pred = inst.pred
        if pred in _UNSIGNED_CMP:
            self.assign(inst, f"{self.ref(inst.lhs)} "
                              f"{_UNSIGNED_CMP[pred]} "
                              f"{self.ref(inst.rhs)}")
        else:
            bits = inst.lhs.type.bits
            self.assign(inst, f"{self.signed(inst.lhs, bits)} "
                              f"{_SIGNED_CMP[pred]} "
                              f"{self.signed(inst.rhs, bits)}")

    def _emit_store(self, inst: Store):
        size = inst.value.type.bits // 8
        pointer = self.ref(inst.pointer)
        if isinstance(inst.value, Constant):
            payload = repr(inst.value.unsigned.to_bytes(size, "little"))
        else:
            payload = (f"({self.ref(inst.value)})"
                       f".to_bytes({size}, 'little')")
        self.lines.append(f"mem.write({pointer}, {payload})")


def _inline_flags(emitter: _Emitter, kind: str, args: list[str],
                  bits: int):
    """Open-coded flag replay for the hot ALU classes.

    Each expansion is a literal transcription of the matching
    ``Flags.set_*`` method (tests/emu/test_jit.py checks them against
    flagops on randomized operands); the method-call overhead is what
    made flag replay the top cost of compiled execution.  Returns
    ``None`` for kinds that stay as method calls.
    """
    mask = (1 << bits) - 1
    sign = 1 << (bits - 1)
    if kind == "logic":
        result = args[0]
        return [
            "flags.cf = False",
            "flags.of = False",
            "flags.af = False",
            f"flags.zf = {result} == 0",
            f"flags.sf = {result} >> {bits - 1} != 0",
            f"flags.pf = _PT[{result} & 255]",
        ]
    a = args[0]
    lines: list[str] = []
    if kind == "add":
        b = args[1]
        total = emitter._temp()
        result = emitter._temp()
        lines += [
            f"{total} = {a} + {b}",
            f"{result} = {total} & {mask}",
            f"flags.cf = {total} > {mask}",
            f"flags.af = ({a} & 15) + ({b} & 15) > 15",
            f"flags.of = (~({a} ^ {b})) & ({a} ^ {result})"
            f" & {sign} != 0",
        ]
    elif kind == "sub":
        b = args[1]
        result = emitter._temp()
        lines += [
            f"{result} = ({a} - {b}) & {mask}",
            f"flags.cf = {a} < {b}",
            f"flags.af = ({a} & 15) < ({b} & 15)",
            f"flags.of = ({a} ^ {b}) & ({a} ^ {result})"
            f" & {sign} != 0",
        ]
    elif kind == "inc":
        result = emitter._temp()
        lines += [
            f"{result} = ({a} + 1) & {mask}",
            f"flags.af = ({a} & 15) + 1 > 15",
            f"flags.of = (~({a} ^ 1)) & ({a} ^ {result})"
            f" & {sign} != 0",
        ]
    elif kind == "dec":
        result = emitter._temp()
        lines += [
            f"{result} = ({a} - 1) & {mask}",
            f"flags.af = ({a} & 15) < 1",
            f"flags.of = ({a} ^ 1) & ({a} ^ {result})"
            f" & {sign} != 0",
        ]
    elif kind == "neg":
        result = emitter._temp()
        lines += [
            f"{result} = (-{a}) & {mask}",
            f"flags.cf = {a} != 0",
            f"flags.af = 0 < ({a} & 15)",
            f"flags.of = {a} & {result} & {sign} != 0",
        ]
    elif kind == "imul":
        b = args[1]
        sa = emitter._temp()
        sb = emitter._temp()
        full = emitter._temp()
        result = emitter._temp()
        overflow = emitter._temp()
        lines += [
            f"{sa} = {a} - {1 << bits} if {a} & {sign} else {a}",
            f"{sb} = {b} - {1 << bits} if {b} & {sign} else {b}",
            f"{full} = {sa} * {sb}",
            f"{result} = {full} & {mask}",
            f"{overflow} = ({result} - {1 << bits} "
            f"if {result} & {sign} else {result}) != {full}",
            f"flags.cf = {overflow}",
            f"flags.of = {overflow}",
            "flags.af = False",
        ]
    elif kind in ("shl", "shr", "sar") and args[1].isdigit():
        # constant shift count: the masked-count and count==1 edge
        # cases of Flags.set_shl/shr/sar resolve at codegen time
        # (the lifter never emits a marker for masked count 0)
        count = int(args[1]) & (0x3F if bits == 64 else 0x1F)
        result = emitter._temp()
        if kind == "shl":
            lines += [
                f"{result} = ({a} << {count}) & {mask}",
                (f"flags.cf = ({a} >> {bits - count}) & 1 != 0"
                 if count <= bits else "flags.cf = False"),
            ]
            if count == 1:
                lines.append(
                    f"flags.of = ({result} & {sign} != 0) != flags.cf")
        elif kind == "shr":
            lines += [
                f"{result} = {a} >> {count}",
                f"flags.cf = ({a} >> {count - 1}) & 1 != 0",
            ]
            if count == 1:
                lines.append(f"flags.of = {a} & {sign} != 0")
        else:  # sar
            signed = emitter._temp()
            lines += [
                f"{signed} = {a} - {1 << bits} "
                f"if {a} & {sign} else {a}",
                f"{result} = ({signed} >> {count}) & {mask}",
                f"flags.cf = ({signed} >> {count - 1}) & 1 != 0",
            ]
            if count == 1:
                lines.append("flags.of = False")
    else:
        return None
    lines += [
        f"flags.zf = {result} == 0",
        f"flags.sf = {result} & {sign} != 0",
        f"flags.pf = _PT[{result} & 255]",
    ]
    return lines


def lower_superblock(function: Function, body: list[Instruction],
                     terminator):
    """Emit and compile the step function for one superblock.

    Returns ``(step_fn, writes_memory, source)``.
    """
    instructions = list(function.entry.instructions)

    reg_in: dict[int, Call] = {}
    reg_out_value: dict[int, Value] = {}
    skipped_outs: set[int] = set()
    flag_calls: list[Call] = []
    stores = False
    for inst in instructions:
        if isinstance(inst, Call):
            if inst.callee == "reg_in":
                reg_in[inst.operands[0].value] = inst
            elif inst.callee == "reg_out":
                code = inst.operands[0].value
                value = inst.operands[1]
                reg_out_value[code] = value
                if reg_in.get(code) is value:
                    skipped_outs.add(id(inst))
            elif not inst.callee.startswith("flag_"):
                raise JitUnsupported(f"call to {inst.callee!r}")
        elif isinstance(inst, Store):
            stores = True
        elif isinstance(inst, Alloca):
            raise JitUnsupported("unpromoted alloca")

    emitter = _Emitter()

    terminator_mnemonic = terminator.mnemonic if terminator else None
    needs_rsp = terminator_mnemonic in (Mnemonic.CALL, Mnemonic.RET)
    prologue: list[str] = []
    for code in sorted(reg_in):
        call = reg_in[code]
        used = any(id(user) not in skipped_outs for user in call.users)
        if used or (code == _RSP_CODE and needs_rsp):
            emitter.names[id(call)] = f"r{code}"
            prologue.append(f"r{code} = regs[{code}]")

    for inst in instructions:
        if isinstance(inst, Ret):
            break
        if isinstance(inst, Call):
            if inst.callee.startswith("flag_"):
                flag_calls.append(inst)
            continue
        emitter.emit(inst)

    # -- commit tail ---------------------------------------------------
    # Faultable terminator memory traffic runs first; flag replay,
    # register commit and the PC update are pure and cannot fail.
    commits = {code: emitter.ref(value)
               for code, value in reg_out_value.items()
               if reg_in.get(code) is not value}

    if terminator is None:
        last = body[-1]
        rip = f"{(last.address + last.length) & _M64}"
    elif terminator_mnemonic is Mnemonic.JMP:
        rip = f"{terminator.branch_target() & _M64}"
    elif terminator_mnemonic is Mnemonic.JCC:
        taken = terminator.branch_target() & _M64
        fallthrough = (terminator.address + terminator.length) & _M64
        rip = (f"{taken} if {_cond_expr(terminator.cond)} "
               f"else {fallthrough}")
    elif terminator_mnemonic is Mnemonic.CALL:
        return_address = (terminator.address + terminator.length) & _M64
        rsp = emitter.ref(reg_out_value[_RSP_CODE])
        emitter.lines.append(f"sp = ({rsp} - 8) & {_M64}")
        emitter.lines.append(
            f"mem.write(sp, "
            f"{return_address.to_bytes(8, 'little')!r})")
        commits[_RSP_CODE] = "sp"
        stores = True
        rip = f"{terminator.branch_target() & _M64}"
    elif terminator_mnemonic is Mnemonic.RET:
        rsp = emitter.ref(reg_out_value[_RSP_CODE])
        emitter.lines.append(
            f"ra = int.from_bytes(mem.read({rsp}, 8), 'little')")
        commits[_RSP_CODE] = f"({rsp} + 8) & {_M64}"
        rip = "ra"
    else:
        raise JitUnsupported(f"terminator {terminator_mnemonic}")

    flag_lines: list[str] = []
    for call in flag_calls:
        kind = call.callee[len("flag_"):]
        args = [emitter.ref(arg) for arg in call.operands[:-1]]
        bits = call.operands[-1].value
        inline = _inline_flags(emitter, kind, args, bits)
        if inline is not None:
            flag_lines.extend(inline)
        else:
            # variable-count shifts keep the call form: their runtime
            # masked-count and count==1 edge cases live in flagops
            method = f"set_{kind}"
            flag_lines.append(
                f"flags.{method}({', '.join(args)}, {bits})")

    commit_lines = [f"regs[{code}] = {expr}"
                    for code, expr in sorted(commits.items())]

    start = body[0].address if body else terminator.address
    source_lines = ["def superblock(cpu, mem, flags):",
                    "    regs = cpu.regs"]
    for line in (prologue + emitter.lines + flag_lines
                 + commit_lines + [f"cpu.rip = {rip}"]):
        source_lines.append("    " + line)
    source = "\n".join(source_lines) + "\n"

    namespace: dict = {"_PT": PARITY_TABLE}
    exec(compile(source, f"<jit:{start:#x}>", "exec"), namespace)
    return namespace["superblock"], stores, source
