"""Paged guest memory with permissions and an undo journal."""

from __future__ import annotations

from repro.errors import MemoryFault

PAGE_SIZE = 0x1000
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Sparse paged memory.

    Permissions are tracked per page as a subset of ``"rwx"``.  An
    optional *journal* records original byte values before each write so
    a fault campaign can roll the memory back to a snapshot point
    without copying the whole address space (the paper's ``fork()``
    substitute).
    """

    def __init__(self):
        self._pages: dict[int, bytearray] = {}
        self._perms: dict[int, str] = {}
        self._journal: list[tuple[int, int, bytes]] | None = None
        # Called with (address, size) after any write that touches an
        # executable page — including journal rollbacks restoring such
        # a write — so the owner can invalidate stale decodes.
        self.exec_write_hook = None

    # -- mapping -----------------------------------------------------------

    def map(self, address: int, size: int, flags: str = "rw"):
        """Map pages covering ``[address, address+size)``."""
        if size <= 0:
            return
        first = address >> 12
        last = (address + size - 1) >> 12
        for page in range(first, last + 1):
            if page not in self._pages:
                self._pages[page] = bytearray(PAGE_SIZE)
            self._perms[page] = flags

    def is_mapped(self, address: int) -> bool:
        return (address >> 12) in self._pages

    def load(self, address: int, data: bytes, flags: str = "rw"):
        """Map and initialize a region (used by the ELF loader)."""
        self.map(address, max(len(data), 1), flags)
        self._write_raw(address, data)

    # -- access -----------------------------------------------------------

    def read(self, address: int, size: int) -> bytes:
        return self._access(address, size, "r")

    def fetch(self, address: int, size: int) -> bytes:
        """Instruction fetch: requires execute permission on first byte."""
        page = address >> 12
        perms = self._perms.get(page)
        if perms is None or "x" not in perms:
            raise MemoryFault(address, size, "fetch")
        # fetch may run off the mapped end; pad with zeros (decodes as
        # add [rax], al or fails -> invalid opcode, like real padding)
        try:
            return self._access(address, size, None)
        except MemoryFault:
            chunk = bytearray()
            for i in range(size):
                try:
                    chunk += self._access(address + i, 1, None)
                except MemoryFault:
                    break
            return bytes(chunk)

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self.read(address, 8), "little")

    def write(self, address: int, data: bytes):
        size = len(data)
        if not size:
            return
        page = address >> 12
        offset = address & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            # single-page fast path: one permission lookup, inline
            # journal capture and store (the write path is the hottest
            # memory operation in compiled execution)
            perms = self._perms.get(page)
            if perms is None or "w" not in perms:
                raise MemoryFault(address, size, "write")
            buf = self._pages[page]
            if self._journal is not None:
                self._journal.append(
                    (address, size, bytes(buf[offset:offset + size])))
            buf[offset:offset + size] = data
            if "x" in perms:
                hook = self.exec_write_hook
                if hook is not None:
                    hook(address, size)
            return
        first = page
        last = (address + size - 1) >> 12
        for page in range(first, last + 1):
            perms = self._perms.get(page)
            if perms is None or "w" not in perms:
                raise MemoryFault(address, size, "write")
        if self._journal is not None:
            self._journal.append(
                (address, size, self._read_raw(address, size)))
        self._write_raw(address, data)
        self._notify_exec_write(address, size)

    def write_u64(self, address: int, value: int):
        self.write(address, (value % (1 << 64)).to_bytes(8, "little"))

    # -- fault injection (permission-blind, journaled) -----------------------

    def peek(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes ignoring page permissions.

        Fault injectors observe cells the guest may not be allowed to
        read; unmapped addresses still raise :class:`MemoryFault`.
        """
        return self._access(address, size, None)

    def poke(self, address: int, data: bytes):
        """Write ``data`` ignoring page permissions, but journaled.

        The injection path for state faults: a physical upset does not
        consult the MMU, yet the campaign's snapshot rollback must
        still be able to undo it, so the write is recorded in the
        journal exactly like a guest write.
        """
        if not data:
            return
        if self._journal is not None:
            self._journal.append(
                (address, len(data), self._read_raw(address, len(data))))
        self._write_raw(address, data)
        self._notify_exec_write(address, len(data))

    # -- whole-state snapshots (checkpointing) -------------------------------

    def pages_snapshot(self) -> tuple[dict[int, bytes], dict[int, str]]:
        """Immutable copy of every mapped page (for trace checkpoints).

        Unlike the journal — which can only undo writes back to the
        point ``journal_begin`` was called — a page snapshot can be
        restored at any later time, in any order, which is what lets a
        campaign jump between checkpoints along a master trace.
        """
        return ({page: bytes(buf) for page, buf in self._pages.items()},
                dict(self._perms))

    def pages_restore(self, pages: dict[int, bytes],
                      perms: dict[int, str]):
        """Replace the whole address space with a prior snapshot."""
        self._pages = {page: bytearray(buf) for page, buf in pages.items()}
        self._perms = dict(perms)
        self._journal = None

    # -- journal ------------------------------------------------------------

    def journal_begin(self):
        """Start recording original bytes for every subsequent write."""
        self._journal = []

    def journal_rollback(self):
        """Undo all writes since :meth:`journal_begin` (LIFO) and stop."""
        if self._journal is None:
            return
        for address, size, original in reversed(self._journal):
            self._write_raw(address, original)
            self._notify_exec_write(address, size)
        self._journal = None

    def journal_discard(self):
        """Stop journaling, keeping all writes."""
        self._journal = None

    # Nested marks: the JIT brackets each compiled block with a mark so
    # it can undo a half-executed block without disturbing an enclosing
    # per-fault journal (the engine's journal_begin/rollback pair).

    def journal_mark(self):
        """Return an opaque mark for the current journal position.

        When no journal is active one is started and the mark denotes
        "owner": releasing or rolling back to it stops journaling again.
        """
        if self._journal is None:
            self._journal = []
            return None
        return len(self._journal)

    def journal_rollback_to(self, mark):
        """Undo writes recorded after ``mark`` (LIFO)."""
        if self._journal is None:
            return
        floor = 0 if mark is None else mark
        while len(self._journal) > floor:
            address, size, original = self._journal.pop()
            self._write_raw(address, original)
            self._notify_exec_write(address, size)
        if mark is None:
            self._journal = None

    def journal_release(self, mark):
        """Keep writes recorded after ``mark``; stop journaling if owner."""
        if mark is None:
            self._journal = None

    # -- internals -----------------------------------------------------------

    def _notify_exec_write(self, address: int, size: int):
        hook = self.exec_write_hook
        if hook is None:
            return
        first = address >> 12
        last = (address + size - 1) >> 12
        for page in range(first, last + 1):
            if "x" in self._perms.get(page, ""):
                hook(address, size)
                return

    def _access(self, address: int, size: int, perm: str | None) -> bytes:
        page = address >> 12
        offset = address & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            data = self._pages.get(page)
            if data is None or (perm and perm not in self._perms[page]):
                raise MemoryFault(address, size, perm or "fetch")
            return bytes(data[offset:offset + size])
        return b"".join(
            self._access(address + done, min(size - done,
                                             PAGE_SIZE - ((address + done)
                                                          & PAGE_MASK)),
                         perm)
            for done in _chunks(address, size))

    def _read_raw(self, address: int, size: int) -> bytes:
        return self._access(address, size, None)

    def _write_raw(self, address: int, data: bytes):
        pos = 0
        while pos < len(data):
            target = address + pos
            page = target >> 12
            offset = target & PAGE_MASK
            room = PAGE_SIZE - offset
            chunk = data[pos:pos + room]
            buf = self._pages.get(page)
            if buf is None:
                raise MemoryFault(target, len(chunk), "write")
            buf[offset:offset + len(chunk)] = chunk
            pos += len(chunk)


def _chunks(address: int, size: int):
    """Start offsets for page-spanning accesses."""
    done = 0
    while done < size:
        yield done
        done += min(size - done, PAGE_SIZE - ((address + done) & PAGE_MASK))
