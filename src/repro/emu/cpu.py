"""CPU execution engine for the x86-64 subset."""

from __future__ import annotations

from typing import Callable, Optional

from repro.emu.flagops import Flags
from repro.emu.memory import Memory
from repro.errors import EmulationError, GuestCrash, InvalidOpcode
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg

_RSP = 4  # hardware code of rsp
_MASK64 = (1 << 64) - 1


class Halt(EmulationError):
    """Raised by ``hlt`` to stop the machine."""


class ExitProgram(Exception):
    """Raised by the exit syscall; carries the guest exit code."""

    def __init__(self, code: int):
        super().__init__(f"guest exited with code {code}")
        self.code = code


class CPU:
    """Architectural state + instruction execution.

    Registers are stored as unsigned 64-bit integers indexed by hardware
    code.  Sub-register semantics follow x86-64: 32-bit writes zero the
    upper half, 8-bit writes preserve the remaining bits.
    """

    __slots__ = ("regs", "rip", "flags", "memory", "syscall_handler")

    def __init__(self, memory: Memory):
        self.regs = [0] * 16
        self.rip = 0
        self.flags = Flags()
        self.memory = memory
        self.syscall_handler: Optional[Callable[["CPU"], None]] = None

    # -- register access ---------------------------------------------------

    def read_reg(self, register) -> int:
        value = self.regs[register.code]
        size = register.size
        if size == 8:
            return value
        if size == 4:
            return value & 0xFFFFFFFF
        return value & 0xFF

    def write_reg(self, register, value: int):
        size = register.size
        if size == 8:
            self.regs[register.code] = value & _MASK64
        elif size == 4:
            self.regs[register.code] = value & 0xFFFFFFFF
        else:
            old = self.regs[register.code]
            self.regs[register.code] = (old & ~0xFF) | (value & 0xFF)

    # -- operand access ------------------------------------------------------

    def effective_address(self, mem: Mem, insn: Instruction) -> int:
        if mem.is_rip_relative:
            return (insn.address + insn.length + mem.disp) & _MASK64
        address = mem.disp
        if mem.base is not None:
            address += self.regs[mem.base.code]
        if mem.index is not None:
            address += self.regs[mem.index.code] * mem.scale
        return address & _MASK64

    def read_operand(self, operand, insn: Instruction, width: int) -> int:
        if isinstance(operand, Reg):
            return self.read_reg(operand.register)
        if isinstance(operand, Imm):
            return operand.value & ((1 << (width * 8)) - 1)
        address = self.effective_address(operand, insn)
        data = self.memory.read(address, operand.size)
        return int.from_bytes(data, "little")

    def write_operand(self, operand, insn: Instruction, value: int):
        if isinstance(operand, Reg):
            self.write_reg(operand.register, value)
            return
        address = self.effective_address(operand, insn)
        size = operand.size
        self.memory.write(address,
                          (value & ((1 << (size * 8)) - 1)).to_bytes(
                              size, "little"))

    # -- stack helpers -----------------------------------------------------

    def push64(self, value: int):
        rsp = (self.regs[_RSP] - 8) & _MASK64
        self.regs[_RSP] = rsp
        self.memory.write(rsp, (value & _MASK64).to_bytes(8, "little"))

    def pop64(self) -> int:
        rsp = self.regs[_RSP]
        value = int.from_bytes(self.memory.read(rsp, 8), "little")
        self.regs[_RSP] = (rsp + 8) & _MASK64
        return value

    # -- execution ------------------------------------------------------------

    def execute(self, insn: Instruction):
        """Execute one decoded instruction; updates ``rip``."""
        self.rip = insn.address + insn.length
        handler = _DISPATCH.get(insn.mnemonic)
        if handler is None:
            raise InvalidOpcode(f"no handler for {insn.mnemonic}")
        handler(self, insn)


def _op_bits(operand) -> int:
    return operand.size * 8


def _width_of(insn: Instruction) -> int:
    """Width in bytes of the sized operand(s)."""
    for operand in insn.operands:
        if isinstance(operand, (Reg, Mem)):
            return operand.size
    return 8


def _exec_mov(cpu: CPU, insn: Instruction):
    dst, src = insn.operands
    width = dst.size if isinstance(dst, (Reg, Mem)) else 8
    cpu.write_operand(dst, insn, cpu.read_operand(src, insn, width))


def _exec_movzx(cpu: CPU, insn: Instruction):
    dst, src = insn.operands
    cpu.write_operand(dst, insn, cpu.read_operand(src, insn, 1) & 0xFF)


def _exec_lea(cpu: CPU, insn: Instruction):
    dst, src = insn.operands
    cpu.write_operand(dst, insn, cpu.effective_address(src, insn))


def _alu(op_name):
    def handler(cpu: CPU, insn: Instruction):
        dst, src = insn.operands
        width = _width_of(insn)
        bits = width * 8
        a = cpu.read_operand(dst, insn, width)
        b = cpu.read_operand(src, insn, width)
        flags = cpu.flags
        if op_name == "add":
            result = flags.set_add(a, b, bits)
        elif op_name == "sub" or op_name == "cmp":
            result = flags.set_sub(a, b, bits)
        elif op_name == "and" or op_name == "test":
            result = a & b
            flags.set_logic_result(result, bits)
        elif op_name == "or":
            result = a | b
            flags.set_logic_result(result, bits)
        elif op_name == "xor":
            result = a ^ b
            flags.set_logic_result(result, bits)
        else:  # imul
            result = flags.set_imul(a, b, bits)
        if op_name not in ("cmp", "test"):
            cpu.write_operand(dst, insn, result)
    return handler


def _unary(op_name):
    def handler(cpu: CPU, insn: Instruction):
        (dst,) = insn.operands
        width = _width_of(insn)
        bits = width * 8
        a = cpu.read_operand(dst, insn, width)
        flags = cpu.flags
        if op_name == "inc":
            result = flags.set_inc(a, bits)
        elif op_name == "dec":
            result = flags.set_dec(a, bits)
        elif op_name == "neg":
            result = flags.set_neg(a, bits)
        else:  # not -- no flag effects
            result = (~a) & ((1 << bits) - 1)
        cpu.write_operand(dst, insn, result)
    return handler


def _shift(op_name):
    def handler(cpu: CPU, insn: Instruction):
        dst, amount = insn.operands
        width = _width_of(insn)
        bits = width * 8
        a = cpu.read_operand(dst, insn, width)
        count = cpu.read_operand(amount, insn, 1) & 0xFF
        flags = cpu.flags
        if op_name == "shl":
            result = flags.set_shl(a, count, bits)
        elif op_name == "shr":
            result = flags.set_shr(a, count, bits)
        else:
            result = flags.set_sar(a, count, bits)
        cpu.write_operand(dst, insn, result)
    return handler


def _exec_push(cpu: CPU, insn: Instruction):
    (src,) = insn.operands
    value = cpu.read_operand(src, insn, 8)
    if isinstance(src, Imm):
        value &= _MASK64  # sign-extended to 64 bits
        if src.value < 0:
            value = src.value & _MASK64
    cpu.push64(value)


def _exec_pop(cpu: CPU, insn: Instruction):
    (dst,) = insn.operands
    cpu.write_operand(dst, insn, cpu.pop64())


def _exec_pushfq(cpu: CPU, insn: Instruction):
    cpu.push64(cpu.flags.to_rflags())


def _exec_popfq(cpu: CPU, insn: Instruction):
    cpu.flags.from_rflags(cpu.pop64())


def branch_target(cpu: CPU, insn: Instruction) -> int:
    """Resolve a branch/call target against the current CPU state.

    Shared with the fault-effect layer (``BranchInvertEffect`` redirects
    the PC without executing the branch).
    """
    (target,) = insn.operands
    if isinstance(target, Imm):
        return (insn.address + insn.length + target.value) & _MASK64
    return cpu.read_operand(target, insn, 8)


def _exec_jmp(cpu: CPU, insn: Instruction):
    cpu.rip = branch_target(cpu, insn)


def _exec_jcc(cpu: CPU, insn: Instruction):
    if insn.cond.evaluate(cpu.flags):
        cpu.rip = branch_target(cpu, insn)


def _exec_call(cpu: CPU, insn: Instruction):
    target = branch_target(cpu, insn)
    cpu.push64(insn.address + insn.length)
    cpu.rip = target


def _exec_ret(cpu: CPU, insn: Instruction):
    cpu.rip = cpu.pop64()


def _exec_setcc(cpu: CPU, insn: Instruction):
    (dst,) = insn.operands
    cpu.write_operand(dst, insn, 1 if insn.cond.evaluate(cpu.flags) else 0)


def _exec_cmovcc(cpu: CPU, insn: Instruction):
    dst, src = insn.operands
    if insn.cond.evaluate(cpu.flags):
        cpu.write_operand(dst, insn, cpu.read_operand(src, insn, dst.size))
    elif dst.size == 4:
        # 32-bit cmov zero-extends the destination even when not taken
        cpu.write_reg(dst.register, cpu.read_reg(dst.register))


def _exec_nop(cpu: CPU, insn: Instruction):
    pass


def _exec_hlt(cpu: CPU, insn: Instruction):
    raise Halt("hlt executed")


def _exec_int3(cpu: CPU, insn: Instruction):
    raise GuestCrash("int3 breakpoint")


def _exec_ud2(cpu: CPU, insn: Instruction):
    raise InvalidOpcode("ud2 executed")


def _exec_syscall(cpu: CPU, insn: Instruction):
    if cpu.syscall_handler is None:
        raise GuestCrash("syscall with no handler installed")
    cpu.syscall_handler(cpu)


_DISPATCH = {
    Mnemonic.MOV: _exec_mov,
    Mnemonic.MOVZX: _exec_movzx,
    Mnemonic.LEA: _exec_lea,
    Mnemonic.ADD: _alu("add"),
    Mnemonic.SUB: _alu("sub"),
    Mnemonic.CMP: _alu("cmp"),
    Mnemonic.AND: _alu("and"),
    Mnemonic.OR: _alu("or"),
    Mnemonic.XOR: _alu("xor"),
    Mnemonic.TEST: _alu("test"),
    Mnemonic.IMUL: _alu("imul"),
    Mnemonic.INC: _unary("inc"),
    Mnemonic.DEC: _unary("dec"),
    Mnemonic.NEG: _unary("neg"),
    Mnemonic.NOT: _unary("not"),
    Mnemonic.SHL: _shift("shl"),
    Mnemonic.SHR: _shift("shr"),
    Mnemonic.SAR: _shift("sar"),
    Mnemonic.PUSH: _exec_push,
    Mnemonic.POP: _exec_pop,
    Mnemonic.PUSHFQ: _exec_pushfq,
    Mnemonic.POPFQ: _exec_popfq,
    Mnemonic.JMP: _exec_jmp,
    Mnemonic.JCC: _exec_jcc,
    Mnemonic.CALL: _exec_call,
    Mnemonic.RET: _exec_ret,
    Mnemonic.SETCC: _exec_setcc,
    Mnemonic.CMOVCC: _exec_cmovcc,
    Mnemonic.NOP: _exec_nop,
    Mnemonic.HLT: _exec_hlt,
    Mnemonic.INT3: _exec_int3,
    Mnemonic.UD2: _exec_ud2,
    Mnemonic.SYSCALL: _exec_syscall,
}
