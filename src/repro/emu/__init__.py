"""CPU emulator for the x86-64 subset (Qiling/Unicorn substitute).

The paper implements its faulter "in Python using the Qiling binary
emulator package".  This package provides the equivalent: load an ELF
image, execute it deterministically with byte-accurate RFLAGS
semantics, record instruction traces, and let a fault effect perturb
one dynamic instruction — substitute or drop the fetched encoding
(:class:`~repro.emu.effects.FetchEffect`) or corrupt
registers/flags/memory/PC around the step
(:class:`~repro.emu.effects.StateEffect`).

The paper forks each fault simulation; :class:`~repro.emu.memory.Memory`
instead offers a write journal so a campaign can snapshot CPU state at
the fault point and undo all memory effects afterwards — same effect,
no OS fork.
"""

from repro.emu.machine import Machine, RunResult, run_executable
from repro.emu.cpu import CPU
from repro.emu.effects import (
    BranchInvertEffect,
    EncodingBitFlipEffect,
    EncodingStuckByteEffect,
    FaultEffect,
    FetchEffect,
    FlagForceEffect,
    MemoryBitFlipEffect,
    RegisterBitFlipEffect,
    ReplaceEffect,
    SkipEffect,
    StateEffect,
)
from repro.emu.memory import Memory
from repro.emu.flagops import Flags

__all__ = ["Machine", "RunResult", "run_executable", "CPU", "Memory",
           "Flags", "FaultEffect", "FetchEffect", "StateEffect",
           "SkipEffect", "ReplaceEffect", "EncodingBitFlipEffect",
           "EncodingStuckByteEffect", "RegisterBitFlipEffect",
           "FlagForceEffect", "MemoryBitFlipEffect",
           "BranchInvertEffect"]
