"""Machine: ELF loading, the run loop, tracing and fault effects.

This is the faulter's execution vehicle.  ``Machine.run`` supports:

* instruction tracing (the list of executed instruction addresses, which
  the faulter enumerates to place faults),
* *fault effects*: at each dynamic step named by the fault plan, one
  :class:`~repro.emu.effects.FaultEffect` is applied — a fetch-stage
  effect substitutes or drops the fetched instruction (bit flip in the
  encoding, instruction skip), a state-stage effect corrupts
  registers/flags/memory/PC around the step (legacy
  ``(insn, cpu) -> Instruction|None`` intercept callables are still
  accepted and coerced),
* CPU/IO snapshotting which, combined with the memory write journal,
  substitutes for the paper's per-fault ``fork()``,
* trace checkpointing: periodic whole-state snapshots (CPU + I/O +
  memory pages) every ``checkpoint_interval`` steps, so a campaign can
  resume a faulted run from the nearest checkpoint instead of
  re-executing the whole prefix.

The decode cache is coherent under code mutation: any write landing in
an executable page — a guest's self-modifying store, an injected
memory fault, or a journal rollback undoing either — evicts the
overlapping cached decodes, and whole-state checkpoint restores clear
the cache once code has ever been dirtied.
"""

from __future__ import annotations

import bisect
import math

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.binfmt.image import Executable
from repro.binfmt.reader import read_elf
from repro.emu.cpu import CPU, ExitProgram, Halt
from repro.emu.effects import as_effect
from repro.emu.memory import Memory
from repro.emu.syscalls import IOState, SyscallHandler
from repro.errors import DecodingError, EmulationError
from repro.isa.decoder import decode
from repro.isa.insn import Instruction

STACK_TOP = 0x7FFF_F000
STACK_SIZE = 0x10000
DEFAULT_MAX_STEPS = 200_000

# Outcome reasons
EXIT = "exit"
HALT = "hlt"
CRASH = "crash"
MAX_STEPS = "max-steps"


@dataclass
class RunResult:
    """Observable outcome of one guest execution."""

    reason: str
    exit_code: Optional[int] = None
    stdout: bytes = b""
    stderr: bytes = b""
    steps: int = 0
    crash_detail: str = ""
    trace: list[int] = field(default_factory=list)
    # watched guest memory, captured at run end for memory-predicate
    # oracles: {(address, size): bytes}; ranges that were unmapped
    # when the run finished are simply absent
    memory: dict = field(default_factory=dict)

    @property
    def crashed(self) -> bool:
        return self.reason in (CRASH, MAX_STEPS)

    def behavior(self) -> tuple:
        """The equality key the fault oracle compares runs with."""
        return (self.reason, self.exit_code, bytes(self.stdout))

    def __str__(self):
        out = self.stdout.decode("latin-1", "replace").strip()
        return (f"RunResult({self.reason}, code={self.exit_code}, "
                f"steps={self.steps}, stdout={out!r})")


# Legacy fault-intercept type: receives the decoded instruction at the
# fault step, returns a replacement Instruction, or None to skip.  New
# code passes :class:`~repro.emu.effects.FaultEffect` objects instead;
# ``Machine.run`` coerces either form.
FaultIntercept = Callable[[Instruction, CPU], Optional[Instruction]]


@dataclass
class Checkpoint:
    """Whole machine state *about to execute* dynamic step ``step``.

    Unlike :meth:`Machine.snapshot` (CPU/IO only, paired with the
    memory journal for immediate rollback), a checkpoint owns a full
    copy of the address space and of the I/O buffers, so it can be
    restored at any later time and in any order.
    """

    step: int
    regs: list[int]
    rip: int
    flags: object
    stdin_pos: int
    stdout: bytes
    stderr: bytes
    pages: dict[int, bytes]
    perms: dict[int, str]


class CheckpointStore:
    """Checkpoints along one master trace, queried by dynamic step."""

    def __init__(self, checkpoints: list[Checkpoint]):
        self.checkpoints = sorted(checkpoints, key=lambda c: c.step)
        self._steps = [c.step for c in self.checkpoints]

    def __len__(self) -> int:
        return len(self.checkpoints)

    @property
    def steps(self) -> list[int]:
        return list(self._steps)

    def nearest(self, step: int) -> Checkpoint:
        """Latest checkpoint at or before dynamic step ``step``."""
        if not self.checkpoints:
            raise ValueError("empty checkpoint store")
        index = bisect.bisect_right(self._steps, step) - 1
        if index < 0:
            raise ValueError(
                f"no checkpoint at or before step {step} "
                f"(earliest: {self._steps[0]})")
        return self.checkpoints[index]


class Machine:
    """A loaded guest program ready to run."""

    def __init__(self, image: Executable | bytes, stdin: bytes = b""):
        if isinstance(image, (bytes, bytearray)):
            image = read_elf(bytes(image))
        self.image = image
        self.memory = Memory()
        for section in image.sections:
            flags = section.flags
            if section.nobits:
                self.memory.map(section.addr, section.mem_size, flags)
            else:
                self.memory.load(section.addr, section.data, flags)
                if section.mem_size > len(section.data):
                    self.memory.map(section.addr + len(section.data),
                                    section.mem_size - len(section.data),
                                    flags)
        self.memory.map(STACK_TOP - STACK_SIZE, STACK_SIZE, "rw")
        self.io = IOState(stdin)
        self.cpu = CPU(self.memory)
        self.cpu.rip = image.entry
        self.cpu.regs[4] = STACK_TOP - 0x1000  # rsp with headroom
        self.cpu.syscall_handler = SyscallHandler(self.io)
        self._decode_cache: dict[int, Instruction] = {}
        # Sticky: set the first time executable bytes are mutated, so
        # checkpoint restores know cached decodes may be stale.
        self._code_dirty = False
        # Optional trace compiler (emu.jit.TraceCompiler); attached by
        # the engine, shared across per-fault machine resets.
        self.jit = None
        self.memory.exec_write_hook = self._on_exec_write

    def _on_exec_write(self, address: int, size: int) -> None:
        """A write landed in an executable page: evict stale decodes.

        Without this, a memory-corrupting fault or a self-modifying
        store would keep executing the pre-write decode of the
        clobbered bytes.  Entries are matched by their decoded length,
        so only decodes actually overlapping the written range drop.
        The JIT is notified last: it may abort a compiled block that
        just modified its own bytes.
        """
        self._code_dirty = True
        cache = self._decode_cache
        if cache:
            end = address + size
            stale = [cached_address
                     for cached_address, insn in cache.items()
                     if cached_address < end
                     and address < cached_address + (insn.length or 15)]
            for cached_address in stale:
                del cache[cached_address]
        if self.jit is not None:
            self.jit.on_exec_write(address, size)

    # -- snapshot/restore (fork substitute) ------------------------------

    def snapshot(self):
        """Capture CPU + I/O state; pair with ``memory.journal_begin``."""
        cpu = self.cpu
        return (list(cpu.regs), cpu.rip, cpu.flags.copy(),
                self.io.snapshot())

    def restore(self, state):
        regs, rip, flags, io_state = state
        self.cpu.regs = list(regs)
        self.cpu.rip = rip
        self.cpu.flags = flags.copy()
        self.io.restore(io_state)

    # -- checkpointing (arbitrary-order restore) -------------------------

    def checkpoint(self, step: int = 0) -> Checkpoint:
        """Full-state checkpoint (CPU + I/O + memory pages)."""
        pages, perms = self.memory.pages_snapshot()
        return Checkpoint(
            step=step,
            regs=list(self.cpu.regs),
            rip=self.cpu.rip,
            flags=self.cpu.flags.copy(),
            stdin_pos=self.io.stdin_pos,
            stdout=bytes(self.io.stdout),
            stderr=bytes(self.io.stderr),
            pages=pages,
            perms=perms,
        )

    def restore_checkpoint(self, cp: Checkpoint) -> int:
        """Rewind (or fast-forward) to ``cp``; returns its step."""
        self.cpu.regs = list(cp.regs)
        self.cpu.rip = cp.rip
        self.cpu.flags = cp.flags.copy()
        self.io.stdin_pos = cp.stdin_pos
        self.io.stdout = bytearray(cp.stdout)
        self.io.stderr = bytearray(cp.stderr)
        self.memory.pages_restore(cp.pages, cp.perms)
        self.memory.exec_write_hook = self._on_exec_write
        if self._code_dirty:
            # code bytes were mutated at some point; a restore may move
            # them under cached decodes, so drop the cache wholesale
            self._decode_cache.clear()
        if self.jit is not None:
            self.jit.on_restore()
        return cp.step

    # -- execution ---------------------------------------------------------

    def fetch_decode(self, address: int) -> Instruction:
        cached = self._decode_cache.get(address)
        if cached is not None:
            return cached
        if self.jit is not None:
            # Re-warm from the compiled superblock index: live blocks
            # are only kept while their bytes are provably unchanged,
            # so their decodes are valid even after a restore cleared
            # the cache wholesale.
            warm = self.jit.cached_insn(address)
            if warm is not None:
                self._decode_cache[address] = warm
                return warm
        raw = self.memory.fetch(address, 15)
        instruction = decode(raw, 0, address)
        self._decode_cache[address] = instruction
        return instruction

    def run(self,
            max_steps: int = DEFAULT_MAX_STEPS,
            record_trace: bool = False,
            fault_step: int = -1,
            fault_intercept: Optional[FaultIntercept] = None,
            fault_plan: Optional[dict] = None,
            checkpoint_interval: int | float = 0,
            checkpoint_sink: Optional[list] = None,
            watches: tuple = ()) -> RunResult:
        """Run until exit/halt/crash or ``max_steps``.

        ``fault_plan`` maps dynamic instruction indices (0-based) to
        the fault applied there — a
        :class:`~repro.emu.effects.FaultEffect`, or a legacy
        ``(insn, cpu) -> Instruction|None`` intercept callable (the
        paper notes the faulter is parametric in "the number of faults
        injected per run").  ``fault_intercept``/``fault_step`` are the
        single-fault convenience form of the same plan.  An effect that
        returns a replacement instruction has it executed in place of
        the fetched one; an effect that consumes the step (skip,
        forced branch) advances the PC itself.

        When ``checkpoint_sink`` is a list and ``checkpoint_interval``
        is positive, a :class:`Checkpoint` is appended before executing
        step 0 and every ``checkpoint_interval`` steps thereafter
        (``math.inf`` keeps only the step-0 checkpoint).

        ``watches`` is a tuple of ``(address, size)`` guest ranges to
        capture (permission-blind) into ``RunResult.memory`` when the
        run finishes — however it finishes — so memory-predicate
        oracles can classify the end state.
        """
        cpu = self.cpu
        trace: list[int] = []
        steps = 0
        reason, exit_code, detail = MAX_STEPS, None, ""
        plan = {step: as_effect(entry)
                for step, entry in (fault_plan or {}).items()}
        if fault_intercept is not None and fault_step >= 0:
            plan[fault_step] = as_effect(fault_intercept)
        checkpointing = (checkpoint_sink is not None
                         and checkpoint_interval
                         and checkpoint_interval > 0)
        # Compiled fast path: disabled while tracing (every executed
        # address must be observed) — fault steps, checkpoint
        # boundaries and the step budget bound each burst below.
        jit = self.jit if not record_trace else None
        plan_steps = sorted(plan) if (jit is not None and plan) else []
        plan_cursor = 0
        try:
            while steps < max_steps:
                rip = cpu.rip
                if record_trace:
                    trace.append(rip)
                if checkpointing and (
                        steps == 0
                        or (not math.isinf(checkpoint_interval)
                            and steps % checkpoint_interval == 0)):
                    checkpoint_sink.append(self.checkpoint(steps))
                if jit is not None:
                    stop = max_steps
                    while plan_cursor < len(plan_steps) and \
                            plan_steps[plan_cursor] < steps:
                        plan_cursor += 1
                    if plan_cursor < len(plan_steps):
                        stop = min(stop, plan_steps[plan_cursor])
                    if checkpointing and \
                            not math.isinf(checkpoint_interval):
                        stop = min(stop, steps
                                   - steps % checkpoint_interval
                                   + checkpoint_interval)
                    if stop > steps:
                        advanced = jit.execute(self, stop - steps)
                        if advanced:
                            steps += advanced
                            continue
                try:
                    instruction = self.fetch_decode(rip)
                    effect = plan.get(steps) if plan else None
                    if effect is not None:
                        instruction = effect.apply(self, instruction)
                        if instruction is None:
                            # the effect consumed the step (skip /
                            # forced branch) and set the next PC
                            steps += 1
                            continue
                    cpu.execute(instruction)
                except DecodingError as exc:
                    raise EmulationError(f"invalid opcode at {rip:#x}: "
                                         f"{exc}") from exc
                steps += 1
        except ExitProgram as exc:
            reason, exit_code = EXIT, exc.code
        except Halt:
            reason = HALT
        except EmulationError as exc:
            reason, detail = CRASH, str(exc)
        return RunResult(
            reason=reason,
            exit_code=exit_code,
            stdout=bytes(self.io.stdout),
            stderr=bytes(self.io.stderr),
            steps=steps,
            crash_detail=detail,
            trace=trace,
            memory=self._capture_watches(watches),
        )

    def _capture_watches(self, watches: tuple) -> dict:
        """Permission-blind reads of the watched ranges (run end)."""
        captured: dict = {}
        for address, size in watches or ():
            try:
                captured[(address, size)] = self.memory.peek(
                    address, size)
            except EmulationError:
                pass  # unmapped at run end: the oracle sees no value
        return captured


def run_executable(image: Executable | bytes, stdin: bytes = b"",
                   max_steps: int = DEFAULT_MAX_STEPS,
                   record_trace: bool = False,
                   watches: tuple = ()) -> RunResult:
    """One-shot convenience: load ``image`` and run it."""
    machine = Machine(image, stdin=stdin)
    return machine.run(max_steps=max_steps, record_trace=record_trace,
                       watches=watches)
