"""Linux-ish syscall surface for guest programs.

Supported: ``read`` (fd 0), ``write`` (fd 1/2), ``exit``/``exit_group``.
Anything else returns ``-ENOSYS`` in ``rax``, like a real kernel.
"""

from __future__ import annotations

from repro.emu.cpu import CPU, ExitProgram

SYS_READ = 0
SYS_WRITE = 1
SYS_EXIT = 60
SYS_EXIT_GROUP = 231

_ENOSYS = 38
_EBADF = 9
_MASK64 = (1 << 64) - 1

_RAX, _RCX, _RDX = 0, 1, 2
_RSI, _RDI = 6, 7
_R11 = 11


class IOState:
    """Guest I/O channels: byte-buffer stdin, captured stdout/stderr."""

    def __init__(self, stdin: bytes = b""):
        self.stdin = stdin
        self.stdin_pos = 0
        self.stdout = bytearray()
        self.stderr = bytearray()

    def snapshot(self) -> tuple[int, int, int]:
        return self.stdin_pos, len(self.stdout), len(self.stderr)

    def restore(self, state: tuple[int, int, int]):
        self.stdin_pos, out_len, err_len = state
        del self.stdout[out_len:]
        del self.stderr[err_len:]


class SyscallHandler:
    """Dispatches the guest ``syscall`` instruction."""

    def __init__(self, io: IOState):
        self.io = io

    def __call__(self, cpu: CPU):
        number = cpu.regs[_RAX]
        if number == SYS_READ:
            result = self._read(cpu)
        elif number == SYS_WRITE:
            result = self._write(cpu)
        elif number in (SYS_EXIT, SYS_EXIT_GROUP):
            raise ExitProgram(cpu.regs[_RDI] & 0xFF)
        else:
            result = -_ENOSYS
        cpu.regs[_RAX] = result & _MASK64
        # Linux clobbers rcx (return RIP) and r11 (RFLAGS) on syscall.
        cpu.regs[_RCX] = cpu.rip
        cpu.regs[_R11] = cpu.flags.to_rflags()

    def _read(self, cpu: CPU) -> int:
        fd = cpu.regs[_RDI]
        if fd != 0:
            return -_EBADF
        buf = cpu.regs[_RSI]
        count = cpu.regs[_RDX]
        data = self.io.stdin[self.io.stdin_pos:self.io.stdin_pos + count]
        if data:
            cpu.memory.write(buf, data)
        self.io.stdin_pos += len(data)
        return len(data)

    def _write(self, cpu: CPU) -> int:
        fd = cpu.regs[_RDI]
        buf = cpu.regs[_RSI]
        count = cpu.regs[_RDX]
        data = cpu.memory.read(buf, count) if count else b""
        if fd == 1:
            self.io.stdout += data
        elif fd == 2:
            self.io.stderr += data
        else:
            return -_EBADF
        return len(data)
