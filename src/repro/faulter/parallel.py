"""Multiprocess fault campaigns.

"We fork each fault simulation to speed up the process" — the paper's
faulter parallelizes across fault points.  This driver is a thin
adapter over the unified campaign engine's
:class:`~repro.faulter.engine.MultiprocessBackend`: one sequential
probe validates the oracle and records the trace, the fault space is
partitioned into declarative enumeration-order windows (O(1) bytes
per worker — see :class:`~repro.faulter.space.SpacePartition`), and
each worker re-enumerates its own share locally, reusing the probe's
validated baseline (continuation cap + grant marker) instead of
re-validating it.  Results are bit-identical to the sequential
campaign (asserted by the tests) because each fault simulation is
independent and reports are assembled in enumeration order.
"""

from __future__ import annotations

from repro.binfmt.image import Executable
from repro.binfmt.reader import read_elf
from repro.faulter.campaign import Faulter
from repro.faulter.engine import MultiprocessBackend, default_workers
from repro.faulter.report import CampaignReport


def run_parallel_campaign(
    image: Executable | bytes,
    good_input: bytes,
    bad_input: bytes,
    grant_marker: bytes,
    model: str = "skip",
    name: str = "target",
    workers: int | None = None,
    checkpoint_interval: int | float | None = None,
    stream: bool | None = None,
    max_resident_points: int | None = None,
) -> CampaignReport:
    """Run a campaign across a process pool via the campaign engine."""
    if isinstance(image, (bytes, bytearray)):
        exe = read_elf(bytes(image))
    else:
        exe = image
    if workers is None:
        workers = default_workers()

    # one sequential probe validates the oracle and records the trace
    # before any process is spawned; workers inherit its baseline
    probe = Faulter(exe, good_input, bad_input, grant_marker, name=name)
    if len(probe.trace()) == 0 or workers <= 1:
        return probe.run_campaign(
            model,
            checkpoint_interval=checkpoint_interval,
            stream=stream,
            max_resident_points=max_resident_points,
        )
    kwargs: dict = {}
    if stream is not None:
        kwargs["stream"] = stream
    if max_resident_points is not None:
        kwargs["max_resident_points"] = max_resident_points
    backend = MultiprocessBackend(
        workers=workers,
        checkpoint_interval=checkpoint_interval,
        **kwargs,
    )
    return probe.run_campaign(model, backend=backend)


def _split(total: int, parts: int) -> list[range]:
    """Contiguous, non-overlapping windows covering ``range(total)``.

    Degenerate inputs are handled: ``total == 0`` yields no windows,
    and ``parts > total`` yields one single-element window per index.
    """
    if total <= 0 or parts <= 0:
        return []
    size = max(1, (total + parts - 1) // parts)
    return [
        range(start, min(start + size, total))
        for start in range(0, total, size)
    ]


def merge_reports(
    partials: list[CampaignReport],
    name: str,
    model: str,
    trace_length: int,
) -> CampaignReport:
    """Fold per-window partial reports into one (window-split legacy)."""
    merged = CampaignReport(
        target=name,
        model=model,
        trace_length=trace_length,
        total_faults=0,
    )
    for partial in partials:
        merged.total_faults += partial.total_faults
        merged.outcomes.update(partial.outcomes)
        merged.successes.extend(partial.successes)
    merged.successes.sort(key=lambda f: (f.trace_index, f.detail))
    return merged
