"""Multiprocess fault campaigns.

"We fork each fault simulation to speed up the process" — the paper's
faulter parallelizes across fault points.  This driver splits the
bad-input trace into contiguous windows, runs one campaign per worker
process, and merges the reports.  Results are bit-identical to the
sequential campaign (asserted by the tests) because each fault
simulation is independent.
"""

from __future__ import annotations

import os
from multiprocessing import get_context

from repro.binfmt.image import Executable
from repro.binfmt.reader import read_elf
from repro.binfmt.writer import write_elf
from repro.faulter.campaign import Faulter
from repro.faulter.report import CampaignReport


def _worker(args) -> CampaignReport:
    (elf_bytes, good_input, bad_input, grant_marker, name, model,
     window) = args
    faulter = Faulter(read_elf(elf_bytes), good_input, bad_input,
                      grant_marker, name=name)
    return faulter.run_campaign(model, trace_window=window)


def run_parallel_campaign(image: Executable | bytes,
                          good_input: bytes,
                          bad_input: bytes,
                          grant_marker: bytes,
                          model: str = "skip",
                          name: str = "target",
                          workers: int | None = None) -> CampaignReport:
    """Run a campaign across a process pool; merge per-window reports."""
    if isinstance(image, (bytes, bytearray)):
        elf_bytes = bytes(image)
        exe = read_elf(elf_bytes)
    else:
        exe = image
        elf_bytes = write_elf(exe)
    if workers is None:
        workers = max(2, min(8, os.cpu_count() or 2))

    # one sequential probe establishes the trace length (and validates
    # the oracle before any process is spawned)
    probe = Faulter(exe, good_input, bad_input, grant_marker, name=name)
    trace_length = len(probe.trace())
    if trace_length == 0 or workers <= 1:
        return probe.run_campaign(model)

    windows = _split(trace_length, workers)
    jobs = [(elf_bytes, good_input, bad_input, grant_marker, name,
             model, window) for window in windows]
    context = get_context("fork") if hasattr(os, "fork") else \
        get_context("spawn")
    with context.Pool(processes=len(jobs)) as pool:
        partials = pool.map(_worker, jobs)
    return merge_reports(partials, name=name, model=model,
                         trace_length=trace_length)


def _split(total: int, parts: int) -> list[range]:
    """Contiguous, non-overlapping windows covering ``range(total)``."""
    size = (total + parts - 1) // parts
    return [range(start, min(start + size, total))
            for start in range(0, total, size)]


def merge_reports(partials: list[CampaignReport], name: str,
                  model: str, trace_length: int) -> CampaignReport:
    merged = CampaignReport(target=name, model=model,
                            trace_length=trace_length, total_faults=0)
    for partial in partials:
        merged.total_faults += partial.total_faults
        merged.outcomes.update(partial.outcomes)
        merged.successes.extend(partial.successes)
    merged.successes.sort(key=lambda f: (f.trace_index, f.detail))
    return merged
