"""The unified fault-campaign engine.

Every campaign flavor — exhaustive, windowed, statistical, pair/k-fault,
parallel — is the same computation: enumerate a :class:`FaultSpace`
over the bad-input trace, execute each point on an
:class:`ExecutionBackend`, and fold the per-point outcomes into one
:class:`CampaignReport`.  ``CampaignEngine.run(model, space, backend)``
is that computation; the legacy drivers in ``campaign.py``,
``statistical.py`` and ``parallel.py`` are thin adapters over it.

Execution is *streaming* end-to-end: spaces enumerate lazily, backends
pull points through a bounded reorder window (``max_resident_points``)
— executing each window in trace-offset order for machine-state reuse,
then emitting its outcomes back in enumeration order — and the engine
folds the ordered outcome stream into the report incrementally.  Peak
resident fault points are therefore bounded by the window size rather
than the population, and reports stay bit-identical to the fully
materialized path (``stream=False``), which the tests assert.

Two execution strategies are provided:

* **master-walk** (``SequentialBackend(checkpoint_interval=None)``) —
  one machine walks the master trace; each fault snapshots CPU/IO,
  journals memory, replays only the suffix and rolls back (the paper's
  ``fork()`` substitute).  The walk persists across windows for
  offset-monotone spaces; a window behind the walk restarts it.
* **checkpoint-replay** (``checkpoint_interval=N``) — whole-state
  checkpoints are captured every N steps along the master trace,
  extended lazily as far as the windows seen so far need; each fault
  restores the nearest checkpoint at or before its offset and replays
  from there, instead of re-executing the whole prefix.  ``math.inf``
  degenerates to a single step-0 checkpoint, i.e. full prefix
  re-execution — the pre-engine statistical behaviour.

``MultiprocessBackend`` partitions the space declaratively and runs
either strategy on a persistent *warm fleet* of worker processes;
each worker receives a :class:`~repro.faulter.space.SpacePartition` —
the base space spec plus an enumeration-order window, O(1) bytes per
worker instead of O(points) — derives the trace and context locally
(or loads them from the content-addressed
:class:`~repro.faulter.artifacts.ArtifactStore`, when one is
configured), and streams its own share.  Workers reuse the probe's
validated baseline (shipped as the continuation cap + grant marker)
instead of re-validating the oracle per process, live across
campaigns (``evaluate``/``r2r compare`` stop paying derivation
twice), and pull partitions from a shared work-stealing queue, so a
straggler partition no longer gates the whole wave.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
from dataclasses import dataclass, field
from multiprocessing import get_context
from queue import Empty
from typing import Iterator, Optional, Sequence

from repro.analysis.traceflow import TraceFacts, VariantPrune
from repro.binfmt.reader import read_elf
from repro.binfmt.writer import write_elf
from repro.emu.cpu import ExitProgram, Halt
from repro.emu.jit import TraceCompiler
from repro.emu.machine import (
    MAX_STEPS,
    Checkpoint,
    CheckpointStore,
    Machine,
)
from repro.errors import DecodingError, EmulationError
from repro.faulter import artifacts as artifacts_mod
from repro.faulter.artifacts import ArtifactStats, ArtifactStore
from repro.faulter.models import FaultModel, model_by_name
from repro.faulter.reduction import plan_reduction
from repro.faulter.report import (
    CampaignReport,
    CampaignReportBuilder,
    Fault,
)
from repro.faulter.space import (
    SUFFIX_CAP,
    FaultPoint,
    FaultSpace,
    SpaceContext,
    WindowedSpace,
)
from repro.isa.metadata import effects as isa_effects

# An executed point: (point, outcome class).
PointOutcome = tuple[FaultPoint, str]

# Upper bound on retained whole-state checkpoints per campaign (each
# one copies the full address space).
MAX_CHECKPOINTS = 256

# Default reorder-window size for streaming execution: the bound on
# fault points resident at once (pending execution or reordering).
DEFAULT_MAX_RESIDENT = 4096


@dataclass
class ExecutionStats:
    """Counters a backend fills while streaming outcomes.

    ``compiled_steps`` counts the subset of ``emulated_steps`` executed
    by the trace-compiled tier; ``divergences`` counts compiled blocks
    that aborted back to the precise stepper (guest fault or
    self-modifying code); ``compile_seconds`` is wall time spent
    lifting/lowering superblocks.
    """

    emulated_steps: int = 0
    peak_resident_points: int = 0
    compiled_steps: int = 0
    divergences: int = 0
    compile_seconds: float = 0.0
    artifact_counters: dict = field(default_factory=dict)

    def observe_resident(self, count: int) -> None:
        if count > self.peak_resident_points:
            self.peak_resident_points = count

    def merge_artifacts(self, counters: dict) -> None:
        """Fold a worker's artifact hit/miss delta into this stats."""
        for key, value in counters.items():
            self.artifact_counters[key] = (
                self.artifact_counters.get(key, 0) + value)


def _normalize_interval(interval: int | float | None):
    """``<= 0`` means "single step-0 checkpoint" (prefix re-execution)."""
    if interval is not None and interval <= 0:
        return math.inf
    return interval


def _fault_plan(
    model: FaultModel, point: FaultPoint, base_step: int
) -> dict:
    """Effect plan keyed by steps relative to a resume point
    ``base_step``."""
    return {
        step - base_step: model.effect(detail)
        for step, detail in zip(point.steps, point.details)
    }


def _master_step(machine: Machine) -> bool:
    """Advance the master machine one instruction; False when done."""
    try:
        instruction = machine.fetch_decode(machine.cpu.rip)
        machine.cpu.execute(instruction)
    except (ExitProgram, Halt, EmulationError, DecodingError):
        return False
    return True


def _execution_order(points: Sequence[FaultPoint]) -> list[FaultPoint]:
    return sorted(points, key=lambda p: (p.first_step, p.order))


def _valid_trace(payload) -> bool:
    return isinstance(payload, list) and all(
        isinstance(address, int) for address in payload)


def _valid_flag_states(payload) -> bool:
    return isinstance(payload, list) and all(
        isinstance(state, dict) for state in payload)


def _valid_facts_payload(payload) -> bool:
    return (isinstance(payload, dict)
            and isinstance(payload.get("prune"), dict)
            and isinstance(payload.get("class"), dict)
            and all(isinstance(key, tuple)
                    and (verdict is None
                         or isinstance(verdict, VariantPrune))
                    for key, verdict in payload["prune"].items())
            and all(isinstance(key, tuple)
                    for key in payload["class"]))


def _valid_jit_payload(payload) -> bool:
    return isinstance(payload, dict) and isinstance(
        payload.get("blocks"), list)


def _valid_checkpoint_state(state) -> bool:
    return (isinstance(state, dict)
            and isinstance(state.get("checkpoints"), list)
            and len(state["checkpoints"]) > 0
            and all(isinstance(cp, Checkpoint)
                    for cp in state["checkpoints"])
            and isinstance(state.get("covered"), int)
            and state["covered"] > 0
            and "interval" in state
            and "frontier" in state)


def derive_trace(
    image,
    bad_input: bytes,
    max_steps: int,
    artifacts: Optional[ArtifactStore] = None,
    image_key: Optional[str] = None,
) -> list[int]:
    """Record (or load) the bad-input instruction-address trace.

    The trace is a pure function of (image bytes, input, step budget),
    so with an artifact store attached it is content-addressed under
    :func:`~repro.faulter.artifacts.trace_key` and re-recorded only on
    a miss.
    """
    def record() -> list[int]:
        machine = Machine(image, stdin=bad_input)
        return machine.run(max_steps=max_steps, record_trace=True).trace

    if artifacts is not None and image_key is not None:
        return list(artifacts.load_or_derive(
            "trace",
            artifacts_mod.trace_key(image_key, bad_input, max_steps),
            record,
            validate=_valid_trace,
        ))
    return record()


def build_space_context(
    image, bad_input: bytes, model: FaultModel, trace: Sequence[int],
    artifacts: Optional[ArtifactStore] = None,
    image_key: Optional[str] = None,
) -> SpaceContext:
    """Bind ``model`` to a recorded bad-input ``trace``.

    Shared by the engine (over the faulter's cached trace) and by pool
    workers (over a locally re-derived trace), so both enumerate the
    exact same fault points.  ``artifacts``/``image_key`` optionally
    back the traceflow flag replay with the content-addressed store.
    """
    probe = Machine(image, stdin=bad_input)
    # encoding models ignore the ISA metadata, so only the state
    # family pays for deriving it (once per offset; ctx memoizes)
    wants_meta = model.family == "state"

    def variants_at(step: int):
        # A bad-input run that died on an invalid opcode records the
        # failing address as its final trace entry; such a step has
        # no injectable faults (the legacy driver stopped there).
        try:
            insn = probe.fetch_decode(trace[step])
            meta = isa_effects(insn) if wants_meta else None
            return model.variants(insn, meta)
        except (DecodingError, EmulationError):
            return ()

    def mnemonic_at(step: int) -> str:
        try:
            return probe.fetch_decode(trace[step]).name
        except (DecodingError, EmulationError):
            return "?"

    def insn_at(step: int):
        try:
            return probe.fetch_decode(trace[step])
        except (IndexError, DecodingError, EmulationError):
            return None

    def window_at(step: int):
        try:
            return bytes(probe.memory.fetch(trace[step], 15))
        except (IndexError, DecodingError, EmulationError):
            return None

    def replay_flags() -> list:
        # pre-step ZF/CF/SF along the bad-input trace, re-derived
        # deterministically (same discipline as the trace itself)
        machine = Machine(image, stdin=bad_input)
        states: list[dict] = []
        for _ in range(len(trace)):
            flags = machine.cpu.flags
            states.append(
                {"zf": flags.zf, "cf": flags.cf, "sf": flags.sf}
            )
            if not _master_step(machine):
                break
        return states

    def flag_replay() -> list:
        if artifacts is not None and image_key is not None:
            return list(artifacts.load_or_derive(
                "flags",
                artifacts_mod.flags_key(image_key, bad_input,
                                        len(trace)),
                replay_flags,
                validate=_valid_flag_states,
            ))
        return replay_flags()

    def facts_factory() -> TraceFacts:
        facts = TraceFacts(trace, insn_at, window_at, flag_replay)
        facts.loaded_proofs = 0
        if artifacts is not None and image_key is not None:
            payload = artifacts.load(
                "facts",
                artifacts_mod.facts_key(image_key, bad_input,
                                        len(trace), model.name),
                validate=_valid_facts_payload,
            )
            if payload is not None:
                # the reduction hooks are deterministic, so preloaded
                # verdicts are exactly what recomputation would yield
                facts.prune_cache.update(payload["prune"])
                facts.class_cache.update(payload["class"])
                facts.loaded_proofs = (len(payload["prune"])
                                       + len(payload["class"]))
        return facts

    return SpaceContext(
        model, trace, variants_at, mnemonic_at,
        facts_factory=facts_factory,
    )


def _persist_facts(ctx, artifacts, image_key, bad_input) -> None:
    """Save the reduction proofs a campaign computed, if any.

    Only consults facts the campaign actually materialized
    (``ctx._facts``) — never forces the analysis — and only writes
    when new verdicts accumulated beyond what the store supplied.
    """
    if artifacts is None or image_key is None:
        return
    facts = getattr(ctx, "_facts", None)
    if facts is None:
        return
    proofs = len(facts.prune_cache) + len(facts.class_cache)
    if proofs <= getattr(facts, "loaded_proofs", 0):
        return
    if artifacts.save(
        "facts",
        artifacts_mod.facts_key(image_key, bad_input,
                                len(ctx.trace), ctx.model.name),
        {"prune": dict(facts.prune_cache),
         "class": dict(facts.class_cache)},
    ):
        facts.loaded_proofs = proofs


def _executor_store(faulter):
    """(store, image key) an executor warms from, or (None, None).

    Both come from the faulter-like target: real
    :class:`~repro.faulter.campaign.Faulter` objects and the pool's
    :class:`_WorkerTarget` expose ``artifacts``/``image_digest()``;
    anything else opts out.
    """
    store = getattr(faulter, "artifacts", None)
    if store is None or not hasattr(faulter, "image_digest"):
        return None, None
    return store, faulter.image_digest()


def _warm_jit(compiler, machine, artifacts, image_key) -> None:
    """Import serialized superblock sources from the store, if any."""
    if compiler is None or artifacts is None or image_key is None:
        return
    payload = artifacts.load("jit", artifacts_mod.jit_key(image_key),
                             validate=_valid_jit_payload)
    if payload is not None:
        compiler.import_blocks(machine, payload)


def _persist_jit(compiler, artifacts, image_key) -> None:
    """Export the compiler's block cache if it compiled anything new.

    ``compiled_blocks`` resets on a successful save, so a long-lived
    executor (fleet workers memoize them) re-exports only after fresh
    compilation, not once per partition.
    """
    if compiler is None or artifacts is None or image_key is None:
        return
    if compiler.compiled_blocks:
        if artifacts.save("jit", artifacts_mod.jit_key(image_key),
                          compiler.export_blocks()):
            compiler.compiled_blocks = 0


class _MasterWalkExecutor:
    """Snapshot-replay faults while walking the master trace forward.

    State (one machine plus its dynamic step) persists across windows:
    offset-monotone spaces keep walking forward; a window whose first
    offset lies behind the walk restarts it from step 0 (the emulator
    is deterministic, so results are unaffected).
    """

    def __init__(
        self,
        faulter,
        model: FaultModel,
        cap_policy: str,
        trace_compile: bool = True,
    ):
        self._faulter = faulter
        self._model = model
        self._cap_policy = cap_policy
        self._compiler = TraceCompiler() if trace_compile else None
        self._machine: Optional[Machine] = None
        self._step = 0
        self._done = False
        self._artifacts, self._image_key = _executor_store(faulter)
        self._jit_warmed = False

    def _reset(self) -> None:
        self._machine = Machine(
            self._faulter.image, stdin=self._faulter.bad_input
        )
        if self._compiler is not None:
            self._compiler.attach(self._machine)
            if not self._jit_warmed:
                self._jit_warmed = True
                _warm_jit(self._compiler, self._machine,
                          self._artifacts, self._image_key)
        self._step = 0
        self._done = False

    def finalize(self) -> None:
        _persist_jit(self._compiler, self._artifacts, self._image_key)

    def run_window(
        self, points: Sequence[FaultPoint], stats: ExecutionStats
    ) -> list[PointOutcome]:
        ordered = _execution_order(points)
        if self._machine is None or ordered[0].first_step < self._step:
            self._reset()
        machine = self._machine
        classify = self._faulter.classify
        cap = self._faulter.continuation_cap
        watches = getattr(self._faulter, "watches", ())
        results: list[PointOutcome] = []
        index = 0
        while index < len(ordered):
            while (
                index < len(ordered)
                and ordered[index].first_step == self._step
            ):
                point = ordered[index]
                index += 1
                plan = _fault_plan(self._model, point, self._step)
                if self._cap_policy == SUFFIX_CAP:
                    budget = cap
                else:
                    budget = max(1, cap - self._step)
                state = machine.snapshot()
                machine.memory.journal_begin()
                try:
                    result = machine.run(
                        max_steps=budget,
                        fault_plan=plan,
                        watches=watches,
                    )
                finally:
                    machine.memory.journal_rollback()
                    machine.restore(state)
                stats.emulated_steps += result.steps
                results.append((point, classify(result)))
            if index >= len(ordered) or self._done:
                break
            target = ordered[index].first_step
            if self._compiler is not None and target > self._step:
                # bulk-advance the master walk through compiled
                # superblocks up to the next fault offset
                advanced = self._compiler.execute(
                    machine, target - self._step
                )
                if advanced:
                    stats.emulated_steps += advanced
                    self._step += advanced
                    continue
            if not _master_step(machine):
                # the master run ended; points past it (none, for
                # spaces enumerated from the recorded trace) drop
                self._done = True
                break
            stats.emulated_steps += 1
            self._step += 1
        if self._compiler is not None:
            self._compiler.drain_into(stats)
        return results


class _CheckpointReplayExecutor:
    """Replay each fault from the nearest whole-state checkpoint.

    Checkpoints are built lazily: the master walk is extended (from a
    retained frontier checkpoint) only as far as the windows seen so
    far require, so a campaign over a short prefix never emulates the
    whole trace — and the checkpoint interval is widened from the span
    *actually covered*, not the whole trace, so such a campaign also
    keeps its fine-grained replay.  Each checkpoint owns a full copy
    of the address space, so the store is bounded: each extension
    segment emits at most ``MAX_CHECKPOINTS`` new snapshots, and the
    store is thinned (every other checkpoint dropped, the emission
    grid doubled) whenever it outgrows the cap — wider spacing only
    costs replay steps, never results.
    """

    def __init__(
        self,
        faulter,
        model: FaultModel,
        cap_policy: str,
        checkpoint_interval: int | float,
        trace_length: int,
        trace_compile: bool = True,
    ):
        self._faulter = faulter
        self._model = model
        self._cap_policy = cap_policy
        self._max_span = min(faulter.max_steps, max(trace_length, 1))
        self._interval = checkpoint_interval
        self._machine = Machine(faulter.image, stdin=faulter.bad_input)
        self._compiler = (
            TraceCompiler().attach(self._machine)
            if trace_compile else None
        )
        self._checkpoints: list = []
        self._store: Optional[CheckpointStore] = None
        self._covered = 0
        self._frontier = None
        self._artifacts, self._image_key = _executor_store(faulter)
        self._loaded_covered = 0
        self._state_key = None
        if self._artifacts is not None:
            _warm_jit(self._compiler, self._machine,
                      self._artifacts, self._image_key)
            # the key binds the *configured* replay grid; the stored
            # state carries the post-thinning interval it ended up with
            self._state_key = artifacts_mod.checkpoints_key(
                self._image_key, faulter.bad_input, self._interval,
                self._max_span)
            state = self._artifacts.load(
                "checkpoints", self._state_key,
                validate=_valid_checkpoint_state)
            if state is not None:
                self._checkpoints = list(state["checkpoints"])
                self._covered = min(state["covered"], self._max_span)
                self._frontier = state["frontier"]
                self._interval = state["interval"]
                self._loaded_covered = self._covered
                self._store = CheckpointStore(self._checkpoints)

    def finalize(self) -> None:
        """Persist freshly derived artifacts back to the store."""
        _persist_jit(self._compiler, self._artifacts, self._image_key)
        if (self._artifacts is None or self._state_key is None
                or not self._checkpoints
                or self._covered <= self._loaded_covered):
            return
        if self._artifacts.save("checkpoints", self._state_key, {
            "checkpoints": list(self._checkpoints),
            "covered": self._covered,
            "frontier": self._frontier,
            "interval": self._interval,
        }):
            # a memoized executor (warm fleet) finalizes once per
            # partition — don't re-pickle an unchanged prefix
            self._loaded_covered = self._covered

    def _emit_interval(self, span: int) -> int | float:
        """Emission grid for a build out to ``span`` total steps."""
        if math.isinf(self._interval):
            return self._interval
        return max(self._interval, math.ceil(span / MAX_CHECKPOINTS))

    def _thin_store(self) -> None:
        """Halve checkpoint density once the cap is exceeded.

        Checkpoints are appended in ascending step order, so slicing
        keeps step 0 and every other snapshot; doubling the base
        interval coarsens future emission grids to match.
        """
        while len(self._checkpoints) > MAX_CHECKPOINTS:
            self._checkpoints = self._checkpoints[::2]
            if not math.isinf(self._interval):
                self._interval *= 2

    def _ensure_coverage(self, needed: int, stats: ExecutionStats) -> None:
        """Extend the checkpointed prefix to ``needed`` master steps."""
        needed = min(needed, self._max_span)
        if self._store is not None and needed <= self._covered:
            return
        if self._covered == 0:
            sink: list = []
            result = self._machine.run(
                max_steps=needed,
                checkpoint_interval=self._emit_interval(needed),
                checkpoint_sink=sink,
            )
            stats.emulated_steps += result.steps
            self._checkpoints.extend(sink)
        elif self._frontier is None:
            return  # the master run already ended
        else:
            self._machine.restore_checkpoint(self._frontier)
            sink = []
            result = self._machine.run(
                max_steps=needed - self._covered,
                checkpoint_interval=self._emit_interval(needed),
                checkpoint_sink=sink,
            )
            stats.emulated_steps += result.steps
            for checkpoint in sink:
                if checkpoint.step == 0:
                    # duplicate of the frontier state; kept separately
                    continue
                checkpoint.step += self._covered
                self._checkpoints.append(checkpoint)
        if result.reason == MAX_STEPS and result.steps:
            self._covered += result.steps
            self._frontier = self._machine.checkpoint(self._covered)
        else:
            # exit/halt/crash: nothing exists beyond this prefix
            self._covered = self._max_span
            self._frontier = None
        self._thin_store()
        self._store = CheckpointStore(self._checkpoints)

    def run_window(
        self, points: Sequence[FaultPoint], stats: ExecutionStats
    ) -> list[PointOutcome]:
        ordered = _execution_order(points)
        self._ensure_coverage(ordered[-1].first_step + 1, stats)
        machine = self._machine
        classify = self._faulter.classify
        cap = self._faulter.continuation_cap
        watches = getattr(self._faulter, "watches", ())
        results: list[PointOutcome] = []
        for point in ordered:
            base = machine.restore_checkpoint(
                self._store.nearest(point.first_step)
            )
            plan = _fault_plan(self._model, point, base)
            if self._cap_policy == SUFFIX_CAP:
                budget = (point.first_step - base) + cap
            else:
                budget = max(1, cap - base)
            result = machine.run(
                max_steps=budget,
                fault_plan=plan,
                watches=watches,
            )
            stats.emulated_steps += result.steps
            results.append((point, classify(result)))
        if self._compiler is not None:
            self._compiler.drain_into(stats)
        return results


class ExecutionBackend:
    """Protocol: turn enumerated fault points into outcomes."""

    name = "abstract"

    def iter_outcomes(
        self,
        faulter,
        model: FaultModel,
        space: FaultSpace,
        ctx: SpaceContext,
        stats: ExecutionStats,
    ) -> Iterator[PointOutcome]:
        """Yield point outcomes in enumeration order, updating
        ``stats``."""
        raise NotImplementedError

    def execute(
        self,
        faulter,
        model: FaultModel,
        space: FaultSpace,
        ctx: SpaceContext,
    ) -> tuple[list[PointOutcome], int]:
        """Materializing wrapper: (ordered outcomes, emulated steps)."""
        stats = ExecutionStats()
        outcomes = list(self.iter_outcomes(faulter, model, space, ctx, stats))
        return outcomes, stats.emulated_steps


def _validate_streaming_knobs(
    stream: bool, max_resident_points: int | None
) -> None:
    if max_resident_points is not None:
        if not stream:
            raise ValueError(
                "max_resident_points= requires streaming execution "
                "(stream=True)"
            )
        if max_resident_points < 1:
            raise ValueError(
                f"max_resident_points must be >= 1, got {max_resident_points}"
            )


class SequentialBackend(ExecutionBackend):
    """In-process execution: master-walk or checkpoint-replay.

    ``stream=True`` (the default) pulls points through a bounded
    reorder window of ``max_resident_points`` (default
    ``DEFAULT_MAX_RESIDENT``): each window executes offset-sorted,
    then emits its outcomes back in enumeration order.  ``stream=
    False`` materializes the whole space as one window — the legacy
    O(population) path, kept as the differential-testing baseline.

    ``trace_compile=True`` (the default) runs unfaulted instruction
    stretches through the trace-compiled tier
    (:class:`~repro.emu.jit.TraceCompiler`); ``False`` keeps every
    step on the precise interpreter — the differential baseline the
    bit-identity tests compare against.
    """

    name = "sequential"

    def __init__(
        self,
        checkpoint_interval: int | float | None = None,
        stream: bool = True,
        max_resident_points: int | None = None,
        trace_compile: bool = True,
    ):
        self.checkpoint_interval = _normalize_interval(checkpoint_interval)
        _validate_streaming_knobs(stream, max_resident_points)
        self.stream = stream
        self.max_resident_points = max_resident_points
        self.trace_compile = trace_compile

    def _window_size(self) -> int | None:
        """Reorder-window bound; ``None`` materializes everything."""
        if not self.stream:
            return None
        return self.max_resident_points or DEFAULT_MAX_RESIDENT

    # fleet workers pin (cache dict, key prefix) here so executors —
    # machine, checkpoint prefix, compiled blocks — survive across
    # partitions and campaigns; None (the default) builds per campaign
    _reuse_executors: Optional[tuple[dict, tuple]] = None

    def _executor(self, faulter, space: FaultSpace, ctx: SpaceContext):
        reuse = self._reuse_executors
        if reuse is None:
            return self._build_executor(faulter, space, ctx)
        cache, prefix = reuse
        key = prefix + (space.cap_policy,)
        executor = cache.get(key)
        if executor is None:
            executor = self._build_executor(faulter, space, ctx)
            if len(cache) >= _MAX_WORKER_EXECUTORS:
                cache.clear()
            cache[key] = executor
        return executor

    def _build_executor(self, faulter, space: FaultSpace,
                        ctx: SpaceContext):
        if self.checkpoint_interval:
            return _CheckpointReplayExecutor(
                faulter,
                ctx.model,
                space.cap_policy,
                self.checkpoint_interval,
                len(ctx.trace),
                trace_compile=self.trace_compile,
            )
        return _MasterWalkExecutor(
            faulter,
            ctx.model,
            space.cap_policy,
            trace_compile=self.trace_compile,
        )

    def iter_outcomes(self, faulter, model, space, ctx, stats):
        window_size = self._window_size()
        executor = None
        window: list[FaultPoint] = []
        for point in space.enumerate(ctx):
            window.append(point)
            if window_size is not None and len(window) >= window_size:
                if executor is None:
                    executor = self._executor(faulter, space, ctx)
                yield from self._drain(executor, window, stats)
                window = []
        if window:
            if executor is None:
                executor = self._executor(faulter, space, ctx)
            yield from self._drain(executor, window, stats)
        if executor is not None:
            # persist freshly derived artifacts (JIT block sources,
            # checkpoint prefix) once the campaign's windows are done
            executor.finalize()

    @staticmethod
    def _drain(
        executor,
        window: list[FaultPoint],
        stats: ExecutionStats,
    ) -> Iterator[PointOutcome]:
        """Execute one window; reorder its rows back to enumeration
        order."""
        stats.observe_resident(len(window))
        outcomes = executor.run_window(window, stats)
        outcomes.sort(key=lambda pair: pair[0].order)
        yield from outcomes


class _WorkerTarget:
    """Duck-typed stand-in for a Faulter inside a fleet worker.

    Carries only the probe's validated baseline — the continuation cap
    and the (pickled) fault-detection oracle — so workers never re-run
    the baseline validation.
    """

    def __init__(
        self,
        image,
        bad_input: bytes,
        oracle,
        continuation_cap: int,
        max_steps: int,
        artifacts: Optional[ArtifactStore] = None,
        image_key: Optional[str] = None,
    ):
        self.image = image
        self.bad_input = bad_input
        self.oracle = oracle
        self.watches = oracle.watches()
        self.continuation_cap = continuation_cap
        self.max_steps = max_steps
        self.artifacts = artifacts
        self._image_key = image_key

    def image_digest(self) -> Optional[str]:
        return self._image_key

    def classify(self, result) -> str:
        return self.oracle.classify(result)


# Per-process memos for fleet workers.  Deriving the trace and space
# context is deterministic, so each persistent worker process does it
# once per (binary, input[, model]) and reuses it across its queue of
# partitions — and, because the fleet outlives campaigns, across
# campaigns too.  The trace memo keeps one live target; the context
# memo keeps one entry per fault model on top of it (bounded), so an
# ``evaluate`` sweeping several models re-traces nothing.
_WORKER_TRACES: dict = {}
_WORKER_CONTEXTS: dict = {}
_WORKER_STORES: dict = {}
_MAX_WORKER_CONTEXTS = 8
# executors memoized per context entry (machine + checkpoint prefix +
# compiled blocks stay warm across partitions and campaigns)
_MAX_WORKER_EXECUTORS = 4


def _worker_store(cache_root: Optional[str]):
    """Per-process ArtifactStore memo (one live root at a time)."""
    if cache_root is None:
        return None
    store = _WORKER_STORES.get(cache_root)
    if store is None:
        store = ArtifactStore(cache_root)
        _WORKER_STORES.clear()
        _WORKER_STORES[cache_root] = store
    return store


def _worker_context(
    elf_bytes: bytes,
    bad_input: bytes,
    model_name: str,
    master_max_steps: int,
    store: Optional[ArtifactStore] = None,
):
    key = (elf_bytes, bad_input, model_name, master_max_steps)
    cached = _WORKER_CONTEXTS.get(key)
    if cached is None:
        image_key = artifacts_mod.image_digest(elf_bytes)
        trace_key = (elf_bytes, bad_input, master_max_steps)
        entry = _WORKER_TRACES.get(trace_key)
        if entry is None:
            image = read_elf(elf_bytes)
            trace = derive_trace(
                image, bad_input, master_max_steps,
                artifacts=store, image_key=image_key,
            )
            _WORKER_TRACES.clear()  # one live target per process
            _WORKER_TRACES[trace_key] = (image, trace)
        else:
            image, trace = entry
        model = model_by_name(model_name)
        ctx = build_space_context(
            image, bad_input, model, trace,
            artifacts=store, image_key=image_key,
        )
        # the trailing dict memoizes executors *for this context*; its
        # lifetime is tied to the entry, so an evicted context can
        # never alias a stale executor
        cached = (image, model, ctx, image_key, {})
        if len(_WORKER_CONTEXTS) >= _MAX_WORKER_CONTEXTS:
            _WORKER_CONTEXTS.clear()
        _WORKER_CONTEXTS[key] = cached
    return cached


def _worker(job):
    """Fleet worker: stream one declarative partition of the space.

    The job carries a :class:`~repro.faulter.space.SpacePartition`
    spec, not a point list — the worker derives the bad-input trace
    (deterministic, so identical to the probe's; loaded from the
    artifact store when one is configured) and re-enumerates its own
    window locally.
    """
    (
        elf_bytes,
        bad_input,
        oracle,
        model_name,
        continuation_cap,
        partition,
        checkpoint_interval,
        master_max_steps,
        stream,
        max_resident_points,
        trace_compile,
        cache_root,
    ) = job
    store = _worker_store(cache_root)
    before = store.stats.snapshot() if store is not None else None
    image, model, ctx, image_key, executors = _worker_context(
        elf_bytes, bad_input, model_name, master_max_steps, store=store
    )
    target = _WorkerTarget(
        image,
        bad_input,
        oracle,
        continuation_cap,
        master_max_steps,
        artifacts=store,
        image_key=image_key,
    )
    backend = SequentialBackend(
        checkpoint_interval=checkpoint_interval,
        stream=stream,
        max_resident_points=max_resident_points,
        trace_compile=trace_compile,
    )
    # reuse this context's executor across partitions and campaigns —
    # the machine, checkpoint prefix and compiled blocks stay warm in
    # the persistent worker.  The key pins every knob the executor
    # bakes in; the pickled oracle keeps two different detectors on
    # the same target from ever sharing one (a mismatch only costs a
    # rebuild).
    backend._reuse_executors = (executors, (
        backend.checkpoint_interval,
        stream,
        max_resident_points,
        trace_compile,
        continuation_cap,
        pickle.dumps(oracle),
    ))
    stats = ExecutionStats()
    outcomes = list(
        backend.iter_outcomes(target, model, partition, ctx, stats)
    )
    counters = store.stats.delta(before) if store is not None else None
    return (
        outcomes,
        stats.emulated_steps,
        stats.peak_resident_points,
        stats.compiled_steps,
        stats.divergences,
        stats.compile_seconds,
        counters,
    )


def default_workers() -> int:
    """Fleet size when the caller does not pick one: 2..8 by core count."""
    return max(2, min(8, os.cpu_count() or 2))


def _picklable_error(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle roundtrip, else a summary.

    Worker exceptions travel back over a queue; an unpicklable one
    would otherwise die in the queue's feeder thread and strand the
    parent waiting for a result that never arrives.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _fleet_main(tasks, results) -> None:
    """Fleet worker loop: pull jobs until the ``None`` sentinel.

    One crashed job never kills the worker — the exception ships back
    tagged with the job id and the loop keeps serving.
    """
    while True:
        item = tasks.get()
        if item is None:
            return
        tag, job = item
        try:
            results.put((tag, "ok", _worker(job)))
        except BaseException as exc:  # noqa: BLE001 — relayed, not hidden
            results.put((tag, "err", _picklable_error(exc)))


class _WorkerFleet:
    """A persistent fleet of campaign workers around one task queue.

    The shared task queue *is* the work-stealing scheduler: idle
    workers pull the next partition the moment they finish one, so a
    straggler partition (dense fault window, crash-heavy region)
    delays only its own worker, never a wave barrier.  Workers are
    daemonic and live until :func:`shutdown_fleet` (registered via
    ``atexit``) or a size change — their per-process memos
    (trace/context/artifact store) are what make the fleet *warm*
    across campaigns.
    """

    # poll interval while waiting on results; each timeout re-checks
    # worker liveness so a killed worker surfaces as an error, not a
    # hang
    _POLL_SECONDS = 1.0

    def __init__(self, size: int):
        self.size = size
        context = (get_context("fork") if hasattr(os, "fork")
                   else get_context("spawn"))
        self._tasks = context.Queue()
        self._results = context.Queue()
        self._epoch = 0
        self._processes = []
        for _ in range(size):
            process = context.Process(
                target=_fleet_main,
                args=(self._tasks, self._results),
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    def alive(self) -> bool:
        return all(p.is_alive() for p in self._processes)

    def pids(self) -> list[int]:
        return [p.pid for p in self._processes]

    def new_epoch(self) -> int:
        """Start a new campaign generation; stale results are dropped.

        An abandoned outcome generator leaves submitted jobs in
        flight; tagging every job with its epoch lets the next
        campaign discard those leftovers instead of mistaking them for
        its own shards.
        """
        self._epoch += 1
        return self._epoch

    def submit(self, epoch: int, index: int, job) -> None:
        self._tasks.put(((epoch, index), job))

    def recv(self, epoch: int) -> tuple[int, tuple]:
        """Next ``(partition index, shard)`` belonging to ``epoch``."""
        while True:
            try:
                tag, status, payload = self._results.get(
                    timeout=self._POLL_SECONDS)
            except Empty:
                if not self.alive():
                    self.shutdown()
                    raise RuntimeError(
                        "campaign worker died unexpectedly; "
                        "fleet torn down") from None
                continue
            if tag[0] != epoch:
                continue
            if status == "err":
                raise payload
            return tag[1], payload

    def shutdown(self) -> None:
        for _ in self._processes:
            try:
                self._tasks.put(None)
            except Exception:
                break
        for process in self._processes:
            process.join(timeout=2.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for q in (self._tasks, self._results):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        self._processes = []


_FLEET: Optional[_WorkerFleet] = None


def _acquire_fleet(size: int) -> _WorkerFleet:
    """The shared fleet, (re)built on first use, size change or death."""
    global _FLEET
    fleet = _FLEET
    if fleet is not None and (fleet.size != size or not fleet.alive()):
        fleet.shutdown()
        fleet = None
    if fleet is None:
        fleet = _WorkerFleet(size)
        _FLEET = fleet
    return fleet


def shutdown_fleet() -> None:
    """Tear down the persistent worker fleet (idempotent)."""
    global _FLEET
    if _FLEET is not None:
        _FLEET.shutdown()
        _FLEET = None


atexit.register(shutdown_fleet)


class MultiprocessBackend(ExecutionBackend):
    """Partition the space across the warm worker fleet.

    Partitions are contiguous enumeration-order windows shipped as
    declarative sub-specs (O(1) bytes per job).  When streaming, each
    partition is additionally capped at ``max_resident_points``.  With
    ``steal=True`` (the default) partitions go onto the fleet's shared
    pull queue — idle workers steal the next one as they finish, with
    at most ``2 x workers`` jobs outstanding, and the parent reorders
    returning shards back to partition order — so aggregate residency
    stays O(workers x window) while stragglers stop gating wall-clock.
    ``steal=False`` keeps the legacy wave dispatch (one fleet-sized
    batch at a time, a barrier between batches) as the differential
    scheduling baseline.

    Fleet workers persist across campaigns: each derives the
    trace/context once per target (or loads it from the artifact
    store, when the faulter carries one) and reuses it for every
    partition — and for every later campaign against the same target.
    """

    name = "multiprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        checkpoint_interval: int | float | None = None,
        stream: bool = True,
        max_resident_points: int | None = None,
        trace_compile: bool = True,
        steal: bool = True,
    ):
        self.workers = workers
        self.checkpoint_interval = _normalize_interval(checkpoint_interval)
        _validate_streaming_knobs(stream, max_resident_points)
        self.stream = stream
        self.max_resident_points = max_resident_points
        self.trace_compile = trace_compile
        self.steal = steal

    def _partition_count(self, total: int, workers: int) -> int:
        """Enough partitions for the fleet, capped at the window size."""
        parts = workers
        if self.stream:
            window = self.max_resident_points or DEFAULT_MAX_RESIDENT
            if self.steal:
                # The steal scheduler keeps up to 2 x workers shards in
                # flight or parked in the reorder buffer; shrink each
                # partition so their sum still honours the window.
                window = max(1, window // (workers * 2))
            parts = max(parts, math.ceil(total / window))
        return parts

    def iter_outcomes(self, faulter, model, space, ctx, stats):
        workers = self.workers
        if workers is None:
            workers = default_workers()
        total = space.count(ctx)
        partitions = space.partition(
            ctx, self._partition_count(total, workers)
        )
        if len(partitions) <= 1:
            fallback = SequentialBackend(
                checkpoint_interval=self.checkpoint_interval,
                stream=self.stream,
                max_resident_points=self.max_resident_points,
                trace_compile=self.trace_compile,
            )
            yield from fallback.iter_outcomes(
                faulter, model, space, ctx, stats
            )
            return
        image = faulter.image
        if isinstance(image, (bytes, bytearray)):
            elf_bytes = bytes(image)
        else:
            elf_bytes = write_elf(image)
        store = getattr(faulter, "artifacts", None)
        cache_root = str(store.root) if store is not None else None
        jobs = [
            (
                elf_bytes,
                faulter.bad_input,
                faulter.oracle,
                model.name,
                faulter.continuation_cap,
                partition,
                self.checkpoint_interval,
                faulter.max_steps,
                self.stream,
                self.max_resident_points,
                self.trace_compile,
                cache_root,
            )
            for partition in partitions
        ]
        pool_size = min(workers, len(jobs))
        fleet = _acquire_fleet(pool_size)
        epoch = fleet.new_epoch()
        if self.steal:
            yield from self._iter_stealing(fleet, epoch, jobs,
                                           pool_size, stats)
        else:
            yield from self._iter_waves(fleet, epoch, jobs,
                                        pool_size, stats)

    def _iter_stealing(self, fleet, epoch, jobs, pool_size, stats):
        """Shared pull queue, bounded look-ahead, in-order folding."""
        outstanding_cap = pool_size * 2
        buffered: dict[int, tuple] = {}
        submitted = 0
        next_emit = 0
        while next_emit < len(jobs):
            while (submitted < len(jobs)
                   and submitted - next_emit < outstanding_cap):
                fleet.submit(epoch, submitted, jobs[submitted])
                submitted += 1
            index, shard = fleet.recv(epoch)
            buffered[index] = shard
            while next_emit in buffered:
                yield from self._fold(buffered.pop(next_emit), stats)
                next_emit += 1
            if buffered:
                stats.observe_resident(sum(
                    len(shard[0]) for shard in buffered.values()))

    def _iter_waves(self, fleet, epoch, jobs, pool_size, stats):
        """Legacy wave dispatch: a barrier between fleet-sized batches."""
        for start in range(0, len(jobs), pool_size):
            wave = jobs[start:start + pool_size]
            for offset, job in enumerate(wave):
                fleet.submit(epoch, start + offset, job)
            shards: dict[int, tuple] = {}
            for _ in wave:
                index, shard = fleet.recv(epoch)
                shards[index] = shard
            for index in sorted(shards):
                yield from self._fold(shards[index], stats)

    @staticmethod
    def _fold(shard, stats) -> list[PointOutcome]:
        (
            outcomes,
            steps,
            peak,
            compiled,
            divergences,
            compile_seconds,
            counters,
        ) = shard
        stats.emulated_steps += steps
        stats.observe_resident(peak)
        stats.observe_resident(len(outcomes))
        stats.compiled_steps += compiled
        stats.divergences += divergences
        stats.compile_seconds += compile_seconds
        if counters:
            stats.merge_artifacts(counters)
        return outcomes


BACKENDS = {
    "sequential": SequentialBackend,
    "multiprocess": MultiprocessBackend,
    # common aliases
    "parallel": MultiprocessBackend,
}


def backend_by_name(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a backend by name (``sequential``/``multiprocess``)."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None
    return factory(**kwargs)


def resolve_backend(
    backend,
    *,
    workers: Optional[int] = None,
    checkpoint_interval: int | float | None = None,
    stream: bool | None = None,
    max_resident_points: int | None = None,
    trace_compile: bool | None = None,
    steal: bool | None = None,
) -> ExecutionBackend:
    """Coerce ``None``/name/instance into an ExecutionBackend.

    Conflicting knobs are an error, not a silent drop: ``workers``
    and ``steal`` require a multiprocess backend, and an
    already-constructed backend instance owns its own configuration.
    """
    checkpoint_interval = _normalize_interval(checkpoint_interval)
    streaming_kwargs: dict = {}
    if stream is not None:
        streaming_kwargs["stream"] = stream
    if max_resident_points is not None:
        streaming_kwargs["max_resident_points"] = max_resident_points
    if trace_compile is not None:
        streaming_kwargs["trace_compile"] = trace_compile
    steal_kwargs: dict = {} if steal is None else {"steal": steal}
    if backend is None:
        if workers is not None or steal is not None:
            return MultiprocessBackend(
                workers=workers,
                checkpoint_interval=checkpoint_interval,
                **streaming_kwargs,
                **steal_kwargs,
            )
        return SequentialBackend(
            checkpoint_interval=checkpoint_interval, **streaming_kwargs
        )
    if isinstance(backend, str):
        factory = BACKENDS.get(backend)
        if factory is None:
            backend_by_name(backend)  # raises naming the known backends
        kwargs: dict = {"checkpoint_interval": checkpoint_interval}
        kwargs.update(streaming_kwargs)
        if factory is MultiprocessBackend:
            kwargs["workers"] = workers
            kwargs.update(steal_kwargs)
        else:
            if workers is not None:
                raise ValueError(
                    "workers= only applies to the multiprocess "
                    f"backend, not {backend!r}"
                )
            if steal is not None:
                raise ValueError(
                    "steal= only applies to the multiprocess "
                    f"backend, not {backend!r}"
                )
        return factory(**kwargs)
    conflicts = (
        ("checkpoint_interval", checkpoint_interval),
        ("workers", workers),
        ("stream", stream),
        ("max_resident_points", max_resident_points),
        ("trace_compile", trace_compile),
        ("steal", steal),
    )
    for knob, value in conflicts:
        if value is None:
            continue
        if getattr(backend, knob, None) != value:
            raise ValueError(
                f"pass {knob}= to the backend constructor, not "
                "alongside a backend instance"
            )
    return backend


@dataclass(frozen=True)
class EngineConfig:
    """Declarative engine configuration: every campaign knob, once.

    Replaces the ``backend``/``checkpoint_interval``/``workers``/
    ``k_faults``/``stream``/``max_resident_points`` parameter sprawl
    that every API entry point used to re-declare.  Validation happens
    at *construction* (not inside ``resolve_backend`` at campaign
    time), so a bad combination fails where it is written; ``resolve``
    turns the config into a concrete :class:`ExecutionBackend`.

    ``backend`` may name a registered backend (``"sequential"``/
    ``"multiprocess"``), be ``None`` (pick by the other knobs), or —
    for programmatic callers — an :class:`ExecutionBackend` instance,
    which owns its own knobs (and makes the config non-serializable).
    ``to_dict``/``from_dict`` roundtrip losslessly, including an
    infinite checkpoint interval (JSON-safe as ``"inf"``).
    """

    backend: object = None
    checkpoint_interval: int | float | None = None
    workers: Optional[int] = None
    k_faults: int = 1
    samples: int = 200
    seed: int = 0
    stream: Optional[bool] = None
    max_resident_points: Optional[int] = None
    trace_compile: Optional[bool] = None
    reduce: Optional[bool] = None
    chunk_units: Optional[bool] = None
    artifact_cache: Optional[bool] = None
    cache_dir: Optional[str] = None
    steal: Optional[bool] = None

    def __post_init__(self):
        backend = self.backend
        declarative = backend is None or isinstance(backend, str)
        if isinstance(backend, str) and backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; known: "
                f"{sorted(BACKENDS)}")
        if not declarative and not isinstance(backend,
                                              ExecutionBackend):
            raise ValueError(
                "backend must be None, a registered backend name, or "
                f"an ExecutionBackend instance, got {backend!r}")
        if self.workers is not None:
            if self.workers < 1:
                raise ValueError(
                    f"workers must be >= 1, got {self.workers}")
            if (isinstance(backend, str)
                    and BACKENDS[backend] is not MultiprocessBackend):
                raise ValueError(
                    "workers= only applies to the multiprocess "
                    f"backend, not {backend!r}")
        if self.k_faults < 1:
            raise ValueError(
                f"k_faults must be >= 1, got {self.k_faults}")
        if self.samples < 1:
            raise ValueError(
                f"samples must be >= 1, got {self.samples}")
        if self.max_resident_points is not None:
            if self.stream is False:
                raise ValueError(
                    "max_resident_points= requires streaming "
                    "execution (stream=True)")
            if self.max_resident_points < 1:
                raise ValueError(
                    "max_resident_points must be >= 1, got "
                    f"{self.max_resident_points}")
        if self.trace_compile is not None and not isinstance(
                self.trace_compile, bool):
            raise ValueError(
                "trace_compile must be True, False or None, got "
                f"{self.trace_compile!r}")
        if self.reduce is not None and not isinstance(
                self.reduce, bool):
            raise ValueError(
                "reduce must be True, False or None, got "
                f"{self.reduce!r}")
        if self.chunk_units is not None and not isinstance(
                self.chunk_units, bool):
            raise ValueError(
                "chunk_units must be True, False or None, got "
                f"{self.chunk_units!r}")
        if self.chunk_units and self.k_faults > 1:
            raise ValueError(
                "chunk_units= applies to single-fault campaigns only "
                f"(got k_faults={self.k_faults})")
        if self.artifact_cache is not None and not isinstance(
                self.artifact_cache, bool):
            raise ValueError(
                "artifact_cache must be True, False or None, got "
                f"{self.artifact_cache!r}")
        if self.cache_dir is not None and not isinstance(
                self.cache_dir, (str, os.PathLike)):
            raise ValueError(
                f"cache_dir must be a path, got {self.cache_dir!r}")
        if self.artifact_cache is False and self.cache_dir is not None:
            raise ValueError(
                "cache_dir= conflicts with artifact_cache=False")
        if self.steal is not None:
            if not isinstance(self.steal, bool):
                raise ValueError(
                    "steal must be True, False or None, got "
                    f"{self.steal!r}")
            if (isinstance(self.backend, str)
                    and BACKENDS[self.backend]
                    is not MultiprocessBackend):
                raise ValueError(
                    "steal= only applies to the multiprocess "
                    f"backend, not {self.backend!r}")

    def resolve(self) -> ExecutionBackend:
        """Concrete backend for this configuration."""
        return resolve_backend(
            self.backend,
            workers=self.workers,
            checkpoint_interval=self.checkpoint_interval,
            stream=self.stream,
            max_resident_points=self.max_resident_points,
            trace_compile=self.trace_compile,
            steal=self.steal,
        )

    def artifact_store(self) -> Optional[ArtifactStore]:
        """The configured :class:`ArtifactStore`, or ``None`` (off).

        The cache is opt-in: ``artifact_cache=True`` enables it at the
        default (``XDG_CACHE_HOME``-honoring) root, and naming a
        ``cache_dir`` implies enabling it there.
        """
        enabled = self.artifact_cache is True or (
            self.artifact_cache is None and self.cache_dir is not None)
        if not enabled:
            return None
        return ArtifactStore(self.cache_dir)

    def to_dict(self) -> dict:
        if self.backend is not None and not isinstance(self.backend,
                                                       str):
            raise ValueError(
                "an EngineConfig carrying a backend *instance* is "
                "not serializable; name the backend instead")
        interval = self.checkpoint_interval
        if interval is not None and math.isinf(interval):
            interval = "inf"  # keep the payload strictly JSON-safe
        return {
            "backend": self.backend,
            "checkpoint_interval": interval,
            "workers": self.workers,
            "k_faults": self.k_faults,
            "samples": self.samples,
            "seed": self.seed,
            "stream": self.stream,
            "max_resident_points": self.max_resident_points,
            "trace_compile": self.trace_compile,
            "reduce": self.reduce,
            "chunk_units": self.chunk_units,
            "artifact_cache": self.artifact_cache,
            "cache_dir": (str(self.cache_dir)
                          if self.cache_dir is not None else None),
            "steal": self.steal,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineConfig":
        interval = payload.get("checkpoint_interval")
        if interval == "inf":
            interval = math.inf
        return cls(
            backend=payload.get("backend"),
            checkpoint_interval=interval,
            workers=payload.get("workers"),
            k_faults=payload.get("k_faults", 1),
            samples=payload.get("samples", 200),
            seed=payload.get("seed", 0),
            stream=payload.get("stream"),
            max_resident_points=payload.get("max_resident_points"),
            trace_compile=payload.get("trace_compile"),
            reduce=payload.get("reduce"),
            chunk_units=payload.get("chunk_units"),
            artifact_cache=payload.get("artifact_cache"),
            cache_dir=payload.get("cache_dir"),
            steal=payload.get("steal"),
        )


class CampaignEngine:
    """Runs any fault space on any backend for one faulter target."""

    def __init__(self, faulter):
        self.faulter = faulter
        self._contexts: dict[str, SpaceContext] = {}

    def context(self, model: FaultModel | str) -> SpaceContext:
        """Space context for ``model`` over the cached bad-input trace."""
        if isinstance(model, str):
            model = model_by_name(model)
        cached = self._contexts.get(model.name)
        if cached is not None:
            return cached
        store = getattr(self.faulter, "artifacts", None)
        image_key = None
        if store is not None and hasattr(self.faulter, "image_digest"):
            image_key = self.faulter.image_digest()
        ctx = build_space_context(
            self.faulter.image,
            self.faulter.bad_input,
            model,
            self.faulter.trace(),
            artifacts=store,
            image_key=image_key,
        )
        self._contexts[model.name] = ctx
        return ctx

    def run(
        self,
        model: FaultModel | str,
        space: FaultSpace,
        backend: ExecutionBackend | str | None = None,
        collect_outcomes: bool = False,
        target: Optional[str] = None,
        reduce: Optional[bool] = None,
    ) -> CampaignReport:
        """Execute ``space`` on ``backend``; fold the streamed
        outcomes into one report incrementally.

        ``reduce`` toggles equivalence reduction
        (:mod:`repro.faulter.reduction`): ``None``/``True`` prune the
        space when a plan applies (the report still covers every point
        of the full space, with elided points inheriting their proven
        verdicts and ``meta["reduction"]`` carrying the certificate);
        ``False`` forces the full enumeration, for bit-identity
        checks.
        """
        if isinstance(model, str):
            model = model_by_name(model)
        store = getattr(self.faulter, "artifacts", None)
        # snapshot before context/trace derivation so their hits and
        # misses land in this report's counters too
        before = store.stats.snapshot() if store is not None else None
        ctx = self.context(model)
        backend = resolve_backend(backend)
        plan = None
        if reduce is False:
            reduction_meta: dict = {
                "enabled": False, "reason": "disabled"
            }
        else:
            plan, reason = plan_reduction(
                self.faulter,
                model,
                ctx,
                space,
                trace_compile=getattr(backend, "trace_compile", True),
            )
            if plan is None:
                reduction_meta = {"enabled": False, "reason": reason}
        stats = ExecutionStats()
        builder = CampaignReportBuilder(
            target=target if target is not None else self.faulter.name,
            model=model.name,
            trace_length=len(ctx.trace),
            fault_for=lambda point: self._fault_for(point, ctx, model),
            collect_outcomes=collect_outcomes,
        )
        if plan is None:
            for point, outcome in backend.iter_outcomes(
                self.faulter, model, space, ctx, stats
            ):
                builder.add(point, outcome)
        else:
            executed = backend.iter_outcomes(
                self.faulter, model, plan.space, ctx, stats
            )
            for point, outcome in plan.expand(executed):
                builder.add(point, outcome)
            # plan.expand pulls exactly one outcome per survivor, which
            # leaves the backend generator one step short of exhaustion
            # — drive it to the end so post-loop cleanup (artifact
            # persistence) runs
            for _ in executed:
                pass
            plan.merge_stats(stats)
            reduction_meta = plan.certificate().to_dict()
        if store is not None and hasattr(self.faulter, "image_digest"):
            _persist_facts(ctx, store, self.faulter.image_digest(),
                           self.faulter.bad_input)
        return builder.finish(
            meta={
                "backend": backend.name,
                "space": space.describe(),
                "checkpoint_interval": _interval_meta(backend),
                "stream": getattr(backend, "stream", False),
                "max_resident_points": getattr(
                    backend, "max_resident_points", None
                ),
                "peak_resident_points": stats.peak_resident_points,
                "emulated_steps": stats.emulated_steps,
                "trace_compile": getattr(
                    backend, "trace_compile", False
                ),
                "compiled_steps": stats.compiled_steps,
                "precise_steps": (
                    stats.emulated_steps - stats.compiled_steps
                ),
                "compile_seconds": round(stats.compile_seconds, 6),
                "compile_divergences": stats.divergences,
                "reduction": reduction_meta,
                "artifacts": _artifacts_meta(store, before, stats),
            }
        )

    def run_chunked(
        self,
        model: FaultModel | str,
        plan,
        backend: ExecutionBackend | str | None = None,
        collect_outcomes: bool = False,
        target: Optional[str] = None,
    ) -> CampaignReport:
        """Exhaustive campaign chunked per rewrite unit.

        The bad-input trace is partitioned by which
        :class:`~repro.disasm.units.RewriteUnit` owns each executed
        address (trampoline/injected code falls into a residual
        ``<outside>`` chunk, so coverage stays total), and each chunk
        runs as its own :class:`WindowedSpace` sub-campaign — a large
        ``.text`` streams through the backend's
        ``max_resident_points`` bound one function at a time.  Each
        outcome's point is re-keyed to its global exhaustive order, so
        the merged report is bit-identical to an unchunked
        :class:`ExhaustiveSpace` run; ``meta["units"]`` carries
        per-function rollups.  Equivalence reduction is skipped (the
        reduced and unreduced reports are proven identical, so nothing
        is lost beyond the pruning speedup).
        """
        if isinstance(model, str):
            model = model_by_name(model)
        store = getattr(self.faulter, "artifacts", None)
        before = store.stats.snapshot() if store is not None else None
        ctx = self.context(model)
        backend = resolve_backend(backend)

        chunks: dict[str, list[int]] = {}
        unit_info: dict[str, dict] = {}
        for step, address in enumerate(ctx.trace):
            unit = plan.unit_at(address)
            name = unit.name if unit is not None else "<outside>"
            chunks.setdefault(name, []).append(step)
            if unit is not None and name not in unit_info:
                unit_info[name] = {
                    "start": unit.start,
                    "end": unit.end,
                    "opaque": unit.opaque,
                    "origin": unit.origin,
                }

        stats = ExecutionStats()
        rollups: dict[str, dict] = {}
        rows: list[tuple[int, FaultPoint, str]] = []
        cumulative = ctx._cumulative_counts()
        for name in sorted(chunks, key=lambda n: chunks[n][0]):
            steps = chunks[name]
            chunk_stats = ExecutionStats()
            outcomes: dict[str, int] = {}
            variant_seen: dict[int, int] = {}
            space = WindowedSpace(indices=tuple(steps))
            for point, outcome in backend.iter_outcomes(
                self.faulter, model, space, ctx, chunk_stats
            ):
                first = point.first_step
                index = variant_seen.get(first, 0)
                variant_seen[first] = index + 1
                prior = cumulative[first - 1] if first else 0
                order = prior + index
                rows.append((
                    order,
                    FaultPoint(order, point.steps, point.details),
                    outcome,
                ))
                outcomes[outcome] = outcomes.get(outcome, 0) + 1
            stats.emulated_steps += chunk_stats.emulated_steps
            stats.observe_resident(chunk_stats.peak_resident_points)
            stats.compiled_steps += chunk_stats.compiled_steps
            stats.divergences += chunk_stats.divergences
            stats.compile_seconds += chunk_stats.compile_seconds
            stats.merge_artifacts(chunk_stats.artifact_counters)
            rollups[name] = {
                **unit_info.get(name, {}),
                "trace_steps": len(steps),
                "points": sum(outcomes.values()),
                "outcomes": outcomes,
            }

        rows.sort(key=lambda row: row[0])
        builder = CampaignReportBuilder(
            target=target if target is not None else self.faulter.name,
            model=model.name,
            trace_length=len(ctx.trace),
            fault_for=lambda point: self._fault_for(point, ctx, model),
            collect_outcomes=collect_outcomes,
        )
        for _, point, outcome in rows:
            builder.add(point, outcome)
        if store is not None and hasattr(self.faulter, "image_digest"):
            _persist_facts(ctx, store, self.faulter.image_digest(),
                           self.faulter.bad_input)
        return builder.finish(
            meta={
                "backend": backend.name,
                "space": f"unit-chunked[{len(chunks)}]",
                "checkpoint_interval": _interval_meta(backend),
                "stream": getattr(backend, "stream", False),
                "max_resident_points": getattr(
                    backend, "max_resident_points", None
                ),
                "peak_resident_points": stats.peak_resident_points,
                "emulated_steps": stats.emulated_steps,
                "trace_compile": getattr(
                    backend, "trace_compile", False
                ),
                "compiled_steps": stats.compiled_steps,
                "precise_steps": (
                    stats.emulated_steps - stats.compiled_steps
                ),
                "compile_seconds": round(stats.compile_seconds, 6),
                "compile_divergences": stats.divergences,
                "reduction": {"enabled": False, "reason": "chunked"},
                "artifacts": _artifacts_meta(store, before, stats),
                "units": rollups,
            }
        )

    @staticmethod
    def _fault_for(
        point: FaultPoint, ctx: SpaceContext, model: FaultModel
    ) -> Fault:
        first = point.first_step
        detail = point.details[0]
        if point.arity > 1:
            # legacy multi-fault format: (d0, s1, d1, s2, d2, ...)
            extra: list = []
            for step, d in zip(point.steps[1:], point.details[1:]):
                extra.extend((step, d))
            detail = (detail, *extra)
        return Fault(
            model.name,
            first,
            ctx.trace[first],
            ctx.mnemonic(first),
            detail,
        )


def _artifacts_meta(store, before, stats) -> dict:
    """Report-meta rollup of cache activity for one campaign.

    Merges the parent store's delta since ``before`` (trace/flags
    derivation in :meth:`CampaignEngine.context`, sequential-executor
    loads) with the per-worker counters the multiprocess backend folds
    into ``stats``.  Lives in ``meta`` (``compare=False``), so counter
    differences never break report bit-identity.
    """
    counters = dict(stats.artifact_counters)
    if store is None and not counters:
        return {"enabled": False}
    merged = ArtifactStats()
    if store is not None and before is not None:
        merged.merge(store.stats.delta(before))
    if counters:
        merged.merge(counters)
    meta = {
        "enabled": True,
        "hits": merged.hits,
        "misses": merged.misses,
        "saves": merged.saves,
        "derive_seconds": round(merged.derive_seconds, 6),
    }
    if store is not None:
        meta["cache_dir"] = str(store.root)
    return meta


def _interval_meta(backend):
    interval = getattr(backend, "checkpoint_interval", None)
    if interval == float("inf"):
        return "inf"  # keep report.to_dict() strictly JSON-safe
    return interval
