"""The unified fault-campaign engine.

Every campaign flavor — exhaustive, windowed, statistical, pair/k-fault,
parallel — is the same computation: enumerate a :class:`FaultSpace`
over the bad-input trace, execute each point on an
:class:`ExecutionBackend`, and fold the per-point outcomes into one
:class:`CampaignReport`.  ``CampaignEngine.run(model, space, backend)``
is that computation; the legacy drivers in ``campaign.py``,
``statistical.py`` and ``parallel.py`` are thin adapters over it.

Backends execute points in trace-offset order (so machine state can be
reused forward along the master trace) but every point carries its
enumeration order, and the report is assembled in *that* order —
reports are therefore bit-identical across backends, which the tests
assert.

Two execution strategies are provided:

* **master-walk** (``SequentialBackend(checkpoint_interval=None)``) —
  one machine walks the master trace; each fault snapshots CPU/IO,
  journals memory, replays only the suffix and rolls back (the paper's
  ``fork()`` substitute).
* **checkpoint-replay** (``checkpoint_interval=N``) — whole-state
  checkpoints are captured every N steps along the master trace; each
  fault restores the nearest checkpoint at or before its offset and
  replays from there, instead of re-executing the whole prefix.
  ``math.inf`` degenerates to a single step-0 checkpoint, i.e. full
  prefix re-execution — the pre-engine statistical behaviour.

``MultiprocessBackend`` partitions the space and runs either strategy
inside a process pool; workers reuse the probe's validated baseline
(shipped as the continuation cap + grant marker) instead of
re-validating the oracle per process.
"""

from __future__ import annotations

import math
import os
from multiprocessing import get_context
from typing import Optional, Sequence

from repro.binfmt.image import Executable
from repro.binfmt.reader import read_elf
from repro.binfmt.writer import write_elf
from repro.emu.cpu import ExitProgram, Halt
from repro.emu.machine import CheckpointStore, Machine
from repro.errors import DecodingError, EmulationError
from repro.faulter.models import FaultModel, model_by_name
from repro.faulter.report import (
    SUCCESS, CampaignReport, Fault, FaultOutcome, classify_result)
from repro.faulter.space import (
    SUFFIX_CAP, FaultPoint, FaultSpace, SpaceContext)

# An executed point: (point, outcome class).
PointOutcome = tuple[FaultPoint, str]

# Upper bound on retained whole-state checkpoints per campaign (each
# one copies the full address space).
MAX_CHECKPOINTS = 256


def _normalize_interval(interval: int | float | None):
    """``<= 0`` means "single step-0 checkpoint" (prefix re-execution)."""
    if interval is not None and interval <= 0:
        return math.inf
    return interval


def _intercept(model: FaultModel, detail: tuple):
    return lambda insn, cpu: model.apply(insn, cpu, detail)


def _fault_plan(model: FaultModel, point: FaultPoint,
                base_step: int) -> dict:
    """Plan keyed by steps relative to a resume point ``base_step``."""
    return {step - base_step: _intercept(model, detail)
            for step, detail in zip(point.steps, point.details)}


def _master_step(machine: Machine) -> bool:
    """Advance the master machine one instruction; False when done."""
    try:
        instruction = machine.fetch_decode(machine.cpu.rip)
        machine.cpu.execute(instruction)
    except (ExitProgram, Halt, EmulationError, DecodingError):
        return False
    return True


def _execution_order(points: Sequence[FaultPoint]) -> list[FaultPoint]:
    return sorted(points, key=lambda p: (p.first_step, p.order))


def _run_master_walk(machine: Machine, classify, cap: int,
                     model: FaultModel, points: Sequence[FaultPoint],
                     cap_policy: str) -> tuple[list[PointOutcome], int]:
    """Snapshot-replay every point while walking the trace once."""
    ordered = _execution_order(points)
    results: list[PointOutcome] = []
    emulated = 0
    index, step = 0, 0
    while index < len(ordered):
        while index < len(ordered) and ordered[index].first_step == step:
            point = ordered[index]
            index += 1
            plan = _fault_plan(model, point, step)
            budget = cap if cap_policy == SUFFIX_CAP \
                else max(1, cap - step)
            state = machine.snapshot()
            machine.memory.journal_begin()
            try:
                result = machine.run(max_steps=budget, fault_plan=plan)
            finally:
                machine.memory.journal_rollback()
                machine.restore(state)
            emulated += result.steps
            results.append((point, classify(result)))
        if index >= len(ordered):
            break
        if not _master_step(machine):
            break
        emulated += 1
        step += 1
    return results, emulated


def _run_checkpoint_replay(machine: Machine, classify, cap: int,
                           model: FaultModel,
                           points: Sequence[FaultPoint],
                           cap_policy: str,
                           checkpoint_interval: int | float,
                           master_max_steps: int
                           ) -> tuple[list[PointOutcome], int]:
    """Build checkpoints once, then replay each point from the nearest.

    Each checkpoint owns a full copy of the address space, so the
    store is bounded: the interval is widened (never narrowed) to keep
    at most ``MAX_CHECKPOINTS`` snapshots — a wider interval only
    costs replay steps, never changes results.
    """
    sink: list = []
    # no point checkpointing past the last fault offset — one step
    # beyond it is enough to own the floor checkpoint for every point
    last_offset = max(point.first_step for point in points)
    span = min(master_max_steps, last_offset + 1)
    if not math.isinf(checkpoint_interval):
        checkpoint_interval = max(checkpoint_interval,
                                  math.ceil(span / MAX_CHECKPOINTS))
    build = machine.run(max_steps=span,
                        checkpoint_interval=checkpoint_interval,
                        checkpoint_sink=sink)
    store = CheckpointStore(sink)
    emulated = build.steps
    results: list[PointOutcome] = []
    for point in _execution_order(points):
        base = machine.restore_checkpoint(store.nearest(point.first_step))
        plan = _fault_plan(model, point, base)
        if cap_policy == SUFFIX_CAP:
            budget = (point.first_step - base) + cap
        else:
            budget = max(1, cap - base)
        result = machine.run(max_steps=budget, fault_plan=plan)
        emulated += result.steps
        results.append((point, classify(result)))
    return results, emulated


class ExecutionBackend:
    """Protocol: turn enumerated fault points into outcomes."""

    name = "abstract"

    def execute(self, faulter, model: FaultModel, space: FaultSpace,
                ctx: SpaceContext) -> tuple[list[PointOutcome], int]:
        """Returns (point outcomes in any order, emulated step count)."""
        raise NotImplementedError


class SequentialBackend(ExecutionBackend):
    """In-process execution: master-walk or checkpoint-replay."""

    name = "sequential"

    def __init__(self, checkpoint_interval: int | float | None = None):
        self.checkpoint_interval = _normalize_interval(
            checkpoint_interval)

    def execute(self, faulter, model, space, ctx):
        points = list(space.enumerate(ctx))
        if not points:
            return [], 0
        machine = Machine(faulter.image, stdin=faulter.bad_input)
        classify = faulter.classify
        cap = faulter.continuation_cap
        if self.checkpoint_interval:
            return _run_checkpoint_replay(
                machine, classify, cap, model, points, space.cap_policy,
                self.checkpoint_interval, faulter.max_steps)
        return _run_master_walk(
            machine, classify, cap, model, points, space.cap_policy)


def _worker(job) -> tuple[list[PointOutcome], int]:
    """Pool worker: execute one partition of the fault space.

    Receives the probe's continuation cap and grant marker instead of
    the good/bad inputs' oracle — no per-worker baseline re-validation.
    """
    (elf_bytes, bad_input, grant_marker, model_name, cap, points,
     cap_policy, checkpoint_interval, master_max_steps) = job
    machine = Machine(read_elf(elf_bytes), stdin=bad_input)
    model = model_by_name(model_name)

    def classify(result):
        return classify_result(result, grant_marker)

    if checkpoint_interval:
        return _run_checkpoint_replay(
            machine, classify, cap, model, points, cap_policy,
            checkpoint_interval, master_max_steps)
    return _run_master_walk(
        machine, classify, cap, model, points, cap_policy)


def default_workers() -> int:
    """Pool size when the caller does not pick one: 2..8 by core count."""
    return max(2, min(8, os.cpu_count() or 2))


class MultiprocessBackend(ExecutionBackend):
    """Partition the space across a process pool (the paper's fork)."""

    name = "multiprocess"

    def __init__(self, workers: Optional[int] = None,
                 checkpoint_interval: int | float | None = None):
        self.workers = workers
        self.checkpoint_interval = _normalize_interval(
            checkpoint_interval)

    def execute(self, faulter, model, space, ctx):
        workers = self.workers
        if workers is None:
            workers = default_workers()
        partitions = space.partition(ctx, workers)
        if len(partitions) <= 1:
            fallback = SequentialBackend(self.checkpoint_interval)
            return fallback.execute(faulter, model, space, ctx)
        image = faulter.image
        elf_bytes = bytes(image) if isinstance(image, (bytes, bytearray)) \
            else write_elf(image)
        jobs = [
            (elf_bytes, faulter.bad_input, faulter.grant_marker,
             model.name, faulter.continuation_cap, part.points,
             part.cap_policy, self.checkpoint_interval,
             faulter.max_steps)
            for part in partitions
        ]
        context = get_context("fork") if hasattr(os, "fork") else \
            get_context("spawn")
        with context.Pool(processes=len(jobs)) as pool:
            shards = pool.map(_worker, jobs)
        results: list[PointOutcome] = []
        emulated = 0
        for shard_results, shard_steps in shards:
            results.extend(shard_results)
            emulated += shard_steps
        return results, emulated


BACKENDS = {
    "sequential": SequentialBackend,
    "multiprocess": MultiprocessBackend,
    # common aliases
    "parallel": MultiprocessBackend,
}


def backend_by_name(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a backend by name (``sequential``/``multiprocess``)."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None
    return factory(**kwargs)


def resolve_backend(backend, *, workers: Optional[int] = None,
                    checkpoint_interval: int | float | None = None
                    ) -> ExecutionBackend:
    """Coerce ``None``/name/instance into an ExecutionBackend.

    Conflicting knobs are an error, not a silent drop: ``workers``
    requires a multiprocess backend, and an already-constructed
    backend instance owns its own configuration.
    """
    checkpoint_interval = _normalize_interval(checkpoint_interval)
    if backend is None:
        if workers is not None:
            return MultiprocessBackend(
                workers=workers, checkpoint_interval=checkpoint_interval)
        return SequentialBackend(checkpoint_interval=checkpoint_interval)
    if isinstance(backend, str):
        factory = BACKENDS.get(backend)
        if factory is None:
            backend_by_name(backend)  # raises naming the known backends
        kwargs: dict = {"checkpoint_interval": checkpoint_interval}
        if factory is MultiprocessBackend:
            kwargs["workers"] = workers
        elif workers is not None:
            raise ValueError(
                f"workers= only applies to the multiprocess backend, "
                f"not {backend!r}")
        return factory(**kwargs)
    if checkpoint_interval is not None and \
            getattr(backend, "checkpoint_interval",
                    None) != checkpoint_interval:
        raise ValueError(
            "pass checkpoint_interval= to the backend constructor, "
            "not alongside a backend instance")
    if workers is not None and \
            getattr(backend, "workers", None) != workers:
        raise ValueError(
            "pass workers= to the backend constructor, not alongside "
            "a backend instance")
    return backend


class CampaignEngine:
    """Runs any fault space on any backend for one faulter target."""

    def __init__(self, faulter):
        self.faulter = faulter
        self._contexts: dict[str, SpaceContext] = {}

    def context(self, model: FaultModel | str) -> SpaceContext:
        """Space context for ``model`` over the cached bad-input trace."""
        if isinstance(model, str):
            model = model_by_name(model)
        cached = self._contexts.get(model.name)
        if cached is not None:
            return cached
        trace = self.faulter.trace()
        probe = Machine(self.faulter.image, stdin=self.faulter.bad_input)

        def variants_at(step: int):
            # A bad-input run that died on an invalid opcode records the
            # failing address as its final trace entry; such a step has
            # no injectable faults (the legacy driver stopped there).
            try:
                return model.variants(probe.fetch_decode(trace[step]))
            except (DecodingError, EmulationError):
                return ()

        def mnemonic_at(step: int) -> str:
            try:
                return probe.fetch_decode(trace[step]).name
            except (DecodingError, EmulationError):
                return "?"

        ctx = SpaceContext(model, trace, variants_at, mnemonic_at)
        self._contexts[model.name] = ctx
        return ctx

    def run(self, model: FaultModel | str, space: FaultSpace,
            backend: ExecutionBackend | str | None = None,
            collect_outcomes: bool = False,
            target: Optional[str] = None) -> CampaignReport:
        """Execute ``space`` on ``backend``; fold into one report."""
        if isinstance(model, str):
            model = model_by_name(model)
        ctx = self.context(model)
        backend = resolve_backend(backend)
        outcomes, emulated = backend.execute(
            self.faulter, model, space, ctx)
        return self._build_report(model, space, ctx, backend, outcomes,
                                  emulated, collect_outcomes, target)

    def _build_report(self, model, space, ctx, backend,
                      outcomes: list[PointOutcome], emulated: int,
                      collect_outcomes: bool,
                      target: Optional[str]) -> CampaignReport:
        report = CampaignReport(
            target=target if target is not None else self.faulter.name,
            model=model.name,
            trace_length=len(ctx.trace),
            total_faults=len(outcomes))
        for point, outcome in sorted(outcomes,
                                     key=lambda pair: pair[0].order):
            report.outcomes[outcome] += 1
            fault = None
            if outcome == SUCCESS or collect_outcomes:
                fault = self._fault_for(point, ctx, model)
            if outcome == SUCCESS:
                report.successes.append(fault)
            if collect_outcomes:
                report.all_outcomes.append(FaultOutcome(fault, outcome))
        report.meta = {
            "backend": backend.name,
            "space": space.describe(),
            "checkpoint_interval": _interval_meta(backend),
            "emulated_steps": emulated,
        }
        return report

    @staticmethod
    def _fault_for(point: FaultPoint, ctx: SpaceContext,
                   model: FaultModel) -> Fault:
        first = point.first_step
        detail = point.details[0]
        if point.arity > 1:
            # legacy multi-fault format: (d0, s1, d1, s2, d2, ...)
            extra: list = []
            for step, d in zip(point.steps[1:], point.details[1:]):
                extra.extend((step, d))
            detail = (detail, *extra)
        return Fault(model.name, first, ctx.trace[first],
                     ctx.mnemonic(first), detail)


def _interval_meta(backend):
    interval = getattr(backend, "checkpoint_interval", None)
    if interval == float("inf"):
        return "inf"  # keep report.to_dict() strictly JSON-safe
    return interval
