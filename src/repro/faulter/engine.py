"""The unified fault-campaign engine.

Every campaign flavor — exhaustive, windowed, statistical, pair/k-fault,
parallel — is the same computation: enumerate a :class:`FaultSpace`
over the bad-input trace, execute each point on an
:class:`ExecutionBackend`, and fold the per-point outcomes into one
:class:`CampaignReport`.  ``CampaignEngine.run(model, space, backend)``
is that computation; the legacy drivers in ``campaign.py``,
``statistical.py`` and ``parallel.py`` are thin adapters over it.

Execution is *streaming* end-to-end: spaces enumerate lazily, backends
pull points through a bounded reorder window (``max_resident_points``)
— executing each window in trace-offset order for machine-state reuse,
then emitting its outcomes back in enumeration order — and the engine
folds the ordered outcome stream into the report incrementally.  Peak
resident fault points are therefore bounded by the window size rather
than the population, and reports stay bit-identical to the fully
materialized path (``stream=False``), which the tests assert.

Two execution strategies are provided:

* **master-walk** (``SequentialBackend(checkpoint_interval=None)``) —
  one machine walks the master trace; each fault snapshots CPU/IO,
  journals memory, replays only the suffix and rolls back (the paper's
  ``fork()`` substitute).  The walk persists across windows for
  offset-monotone spaces; a window behind the walk restarts it.
* **checkpoint-replay** (``checkpoint_interval=N``) — whole-state
  checkpoints are captured every N steps along the master trace,
  extended lazily as far as the windows seen so far need; each fault
  restores the nearest checkpoint at or before its offset and replays
  from there, instead of re-executing the whole prefix.  ``math.inf``
  degenerates to a single step-0 checkpoint, i.e. full prefix
  re-execution — the pre-engine statistical behaviour.

``MultiprocessBackend`` partitions the space declaratively and runs
either strategy inside a process pool; each worker receives a
:class:`~repro.faulter.space.SpacePartition` — the base space spec
plus an enumeration-order window, O(1) bytes per worker instead of
O(points) — re-derives the trace and context locally, and streams its
own share.  Workers reuse the probe's validated baseline (shipped as
the continuation cap + grant marker) instead of re-validating the
oracle per process.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Iterator, Optional, Sequence

from repro.analysis.traceflow import TraceFacts
from repro.binfmt.reader import read_elf
from repro.binfmt.writer import write_elf
from repro.emu.cpu import ExitProgram, Halt
from repro.emu.jit import TraceCompiler
from repro.emu.machine import MAX_STEPS, CheckpointStore, Machine
from repro.errors import DecodingError, EmulationError
from repro.faulter.models import FaultModel, model_by_name
from repro.faulter.reduction import plan_reduction
from repro.faulter.report import (
    CampaignReport,
    CampaignReportBuilder,
    Fault,
)
from repro.faulter.space import (
    SUFFIX_CAP,
    FaultPoint,
    FaultSpace,
    SpaceContext,
    WindowedSpace,
)
from repro.isa.metadata import effects as isa_effects

# An executed point: (point, outcome class).
PointOutcome = tuple[FaultPoint, str]

# Upper bound on retained whole-state checkpoints per campaign (each
# one copies the full address space).
MAX_CHECKPOINTS = 256

# Default reorder-window size for streaming execution: the bound on
# fault points resident at once (pending execution or reordering).
DEFAULT_MAX_RESIDENT = 4096


@dataclass
class ExecutionStats:
    """Counters a backend fills while streaming outcomes.

    ``compiled_steps`` counts the subset of ``emulated_steps`` executed
    by the trace-compiled tier; ``divergences`` counts compiled blocks
    that aborted back to the precise stepper (guest fault or
    self-modifying code); ``compile_seconds`` is wall time spent
    lifting/lowering superblocks.
    """

    emulated_steps: int = 0
    peak_resident_points: int = 0
    compiled_steps: int = 0
    divergences: int = 0
    compile_seconds: float = 0.0

    def observe_resident(self, count: int) -> None:
        if count > self.peak_resident_points:
            self.peak_resident_points = count


def _normalize_interval(interval: int | float | None):
    """``<= 0`` means "single step-0 checkpoint" (prefix re-execution)."""
    if interval is not None and interval <= 0:
        return math.inf
    return interval


def _fault_plan(
    model: FaultModel, point: FaultPoint, base_step: int
) -> dict:
    """Effect plan keyed by steps relative to a resume point
    ``base_step``."""
    return {
        step - base_step: model.effect(detail)
        for step, detail in zip(point.steps, point.details)
    }


def _master_step(machine: Machine) -> bool:
    """Advance the master machine one instruction; False when done."""
    try:
        instruction = machine.fetch_decode(machine.cpu.rip)
        machine.cpu.execute(instruction)
    except (ExitProgram, Halt, EmulationError, DecodingError):
        return False
    return True


def _execution_order(points: Sequence[FaultPoint]) -> list[FaultPoint]:
    return sorted(points, key=lambda p: (p.first_step, p.order))


def build_space_context(
    image, bad_input: bytes, model: FaultModel, trace: Sequence[int]
) -> SpaceContext:
    """Bind ``model`` to a recorded bad-input ``trace``.

    Shared by the engine (over the faulter's cached trace) and by pool
    workers (over a locally re-derived trace), so both enumerate the
    exact same fault points.
    """
    probe = Machine(image, stdin=bad_input)
    # encoding models ignore the ISA metadata, so only the state
    # family pays for deriving it (once per offset; ctx memoizes)
    wants_meta = model.family == "state"

    def variants_at(step: int):
        # A bad-input run that died on an invalid opcode records the
        # failing address as its final trace entry; such a step has
        # no injectable faults (the legacy driver stopped there).
        try:
            insn = probe.fetch_decode(trace[step])
            meta = isa_effects(insn) if wants_meta else None
            return model.variants(insn, meta)
        except (DecodingError, EmulationError):
            return ()

    def mnemonic_at(step: int) -> str:
        try:
            return probe.fetch_decode(trace[step]).name
        except (DecodingError, EmulationError):
            return "?"

    def insn_at(step: int):
        try:
            return probe.fetch_decode(trace[step])
        except (IndexError, DecodingError, EmulationError):
            return None

    def window_at(step: int):
        try:
            return bytes(probe.memory.fetch(trace[step], 15))
        except (IndexError, DecodingError, EmulationError):
            return None

    def flag_replay() -> list:
        # pre-step ZF/CF/SF along the bad-input trace, re-derived
        # deterministically (same discipline as the trace itself)
        machine = Machine(image, stdin=bad_input)
        states: list[dict] = []
        for _ in range(len(trace)):
            flags = machine.cpu.flags
            states.append(
                {"zf": flags.zf, "cf": flags.cf, "sf": flags.sf}
            )
            if not _master_step(machine):
                break
        return states

    def facts_factory() -> TraceFacts:
        return TraceFacts(trace, insn_at, window_at, flag_replay)

    return SpaceContext(
        model, trace, variants_at, mnemonic_at,
        facts_factory=facts_factory,
    )


class _MasterWalkExecutor:
    """Snapshot-replay faults while walking the master trace forward.

    State (one machine plus its dynamic step) persists across windows:
    offset-monotone spaces keep walking forward; a window whose first
    offset lies behind the walk restarts it from step 0 (the emulator
    is deterministic, so results are unaffected).
    """

    def __init__(
        self,
        faulter,
        model: FaultModel,
        cap_policy: str,
        trace_compile: bool = True,
    ):
        self._faulter = faulter
        self._model = model
        self._cap_policy = cap_policy
        self._compiler = TraceCompiler() if trace_compile else None
        self._machine: Optional[Machine] = None
        self._step = 0
        self._done = False

    def _reset(self) -> None:
        self._machine = Machine(
            self._faulter.image, stdin=self._faulter.bad_input
        )
        if self._compiler is not None:
            self._compiler.attach(self._machine)
        self._step = 0
        self._done = False

    def run_window(
        self, points: Sequence[FaultPoint], stats: ExecutionStats
    ) -> list[PointOutcome]:
        ordered = _execution_order(points)
        if self._machine is None or ordered[0].first_step < self._step:
            self._reset()
        machine = self._machine
        classify = self._faulter.classify
        cap = self._faulter.continuation_cap
        watches = getattr(self._faulter, "watches", ())
        results: list[PointOutcome] = []
        index = 0
        while index < len(ordered):
            while (
                index < len(ordered)
                and ordered[index].first_step == self._step
            ):
                point = ordered[index]
                index += 1
                plan = _fault_plan(self._model, point, self._step)
                if self._cap_policy == SUFFIX_CAP:
                    budget = cap
                else:
                    budget = max(1, cap - self._step)
                state = machine.snapshot()
                machine.memory.journal_begin()
                try:
                    result = machine.run(
                        max_steps=budget,
                        fault_plan=plan,
                        watches=watches,
                    )
                finally:
                    machine.memory.journal_rollback()
                    machine.restore(state)
                stats.emulated_steps += result.steps
                results.append((point, classify(result)))
            if index >= len(ordered) or self._done:
                break
            target = ordered[index].first_step
            if self._compiler is not None and target > self._step:
                # bulk-advance the master walk through compiled
                # superblocks up to the next fault offset
                advanced = self._compiler.execute(
                    machine, target - self._step
                )
                if advanced:
                    stats.emulated_steps += advanced
                    self._step += advanced
                    continue
            if not _master_step(machine):
                # the master run ended; points past it (none, for
                # spaces enumerated from the recorded trace) drop
                self._done = True
                break
            stats.emulated_steps += 1
            self._step += 1
        if self._compiler is not None:
            self._compiler.drain_into(stats)
        return results


class _CheckpointReplayExecutor:
    """Replay each fault from the nearest whole-state checkpoint.

    Checkpoints are built lazily: the master walk is extended (from a
    retained frontier checkpoint) only as far as the windows seen so
    far require, so a campaign over a short prefix never emulates the
    whole trace — and the checkpoint interval is widened from the span
    *actually covered*, not the whole trace, so such a campaign also
    keeps its fine-grained replay.  Each checkpoint owns a full copy
    of the address space, so the store is bounded: each extension
    segment emits at most ``MAX_CHECKPOINTS`` new snapshots, and the
    store is thinned (every other checkpoint dropped, the emission
    grid doubled) whenever it outgrows the cap — wider spacing only
    costs replay steps, never results.
    """

    def __init__(
        self,
        faulter,
        model: FaultModel,
        cap_policy: str,
        checkpoint_interval: int | float,
        trace_length: int,
        trace_compile: bool = True,
    ):
        self._faulter = faulter
        self._model = model
        self._cap_policy = cap_policy
        self._max_span = min(faulter.max_steps, max(trace_length, 1))
        self._interval = checkpoint_interval
        self._machine = Machine(faulter.image, stdin=faulter.bad_input)
        self._compiler = (
            TraceCompiler().attach(self._machine)
            if trace_compile else None
        )
        self._checkpoints: list = []
        self._store: Optional[CheckpointStore] = None
        self._covered = 0
        self._frontier = None

    def _emit_interval(self, span: int) -> int | float:
        """Emission grid for a build out to ``span`` total steps."""
        if math.isinf(self._interval):
            return self._interval
        return max(self._interval, math.ceil(span / MAX_CHECKPOINTS))

    def _thin_store(self) -> None:
        """Halve checkpoint density once the cap is exceeded.

        Checkpoints are appended in ascending step order, so slicing
        keeps step 0 and every other snapshot; doubling the base
        interval coarsens future emission grids to match.
        """
        while len(self._checkpoints) > MAX_CHECKPOINTS:
            self._checkpoints = self._checkpoints[::2]
            if not math.isinf(self._interval):
                self._interval *= 2

    def _ensure_coverage(self, needed: int, stats: ExecutionStats) -> None:
        """Extend the checkpointed prefix to ``needed`` master steps."""
        needed = min(needed, self._max_span)
        if self._store is not None and needed <= self._covered:
            return
        if self._covered == 0:
            sink: list = []
            result = self._machine.run(
                max_steps=needed,
                checkpoint_interval=self._emit_interval(needed),
                checkpoint_sink=sink,
            )
            stats.emulated_steps += result.steps
            self._checkpoints.extend(sink)
        elif self._frontier is None:
            return  # the master run already ended
        else:
            self._machine.restore_checkpoint(self._frontier)
            sink = []
            result = self._machine.run(
                max_steps=needed - self._covered,
                checkpoint_interval=self._emit_interval(needed),
                checkpoint_sink=sink,
            )
            stats.emulated_steps += result.steps
            for checkpoint in sink:
                if checkpoint.step == 0:
                    # duplicate of the frontier state; kept separately
                    continue
                checkpoint.step += self._covered
                self._checkpoints.append(checkpoint)
        if result.reason == MAX_STEPS and result.steps:
            self._covered += result.steps
            self._frontier = self._machine.checkpoint(self._covered)
        else:
            # exit/halt/crash: nothing exists beyond this prefix
            self._covered = self._max_span
            self._frontier = None
        self._thin_store()
        self._store = CheckpointStore(self._checkpoints)

    def run_window(
        self, points: Sequence[FaultPoint], stats: ExecutionStats
    ) -> list[PointOutcome]:
        ordered = _execution_order(points)
        self._ensure_coverage(ordered[-1].first_step + 1, stats)
        machine = self._machine
        classify = self._faulter.classify
        cap = self._faulter.continuation_cap
        watches = getattr(self._faulter, "watches", ())
        results: list[PointOutcome] = []
        for point in ordered:
            base = machine.restore_checkpoint(
                self._store.nearest(point.first_step)
            )
            plan = _fault_plan(self._model, point, base)
            if self._cap_policy == SUFFIX_CAP:
                budget = (point.first_step - base) + cap
            else:
                budget = max(1, cap - base)
            result = machine.run(
                max_steps=budget,
                fault_plan=plan,
                watches=watches,
            )
            stats.emulated_steps += result.steps
            results.append((point, classify(result)))
        if self._compiler is not None:
            self._compiler.drain_into(stats)
        return results


class ExecutionBackend:
    """Protocol: turn enumerated fault points into outcomes."""

    name = "abstract"

    def iter_outcomes(
        self,
        faulter,
        model: FaultModel,
        space: FaultSpace,
        ctx: SpaceContext,
        stats: ExecutionStats,
    ) -> Iterator[PointOutcome]:
        """Yield point outcomes in enumeration order, updating
        ``stats``."""
        raise NotImplementedError

    def execute(
        self,
        faulter,
        model: FaultModel,
        space: FaultSpace,
        ctx: SpaceContext,
    ) -> tuple[list[PointOutcome], int]:
        """Materializing wrapper: (ordered outcomes, emulated steps)."""
        stats = ExecutionStats()
        outcomes = list(self.iter_outcomes(faulter, model, space, ctx, stats))
        return outcomes, stats.emulated_steps


def _validate_streaming_knobs(
    stream: bool, max_resident_points: int | None
) -> None:
    if max_resident_points is not None:
        if not stream:
            raise ValueError(
                "max_resident_points= requires streaming execution "
                "(stream=True)"
            )
        if max_resident_points < 1:
            raise ValueError(
                f"max_resident_points must be >= 1, got {max_resident_points}"
            )


class SequentialBackend(ExecutionBackend):
    """In-process execution: master-walk or checkpoint-replay.

    ``stream=True`` (the default) pulls points through a bounded
    reorder window of ``max_resident_points`` (default
    ``DEFAULT_MAX_RESIDENT``): each window executes offset-sorted,
    then emits its outcomes back in enumeration order.  ``stream=
    False`` materializes the whole space as one window — the legacy
    O(population) path, kept as the differential-testing baseline.

    ``trace_compile=True`` (the default) runs unfaulted instruction
    stretches through the trace-compiled tier
    (:class:`~repro.emu.jit.TraceCompiler`); ``False`` keeps every
    step on the precise interpreter — the differential baseline the
    bit-identity tests compare against.
    """

    name = "sequential"

    def __init__(
        self,
        checkpoint_interval: int | float | None = None,
        stream: bool = True,
        max_resident_points: int | None = None,
        trace_compile: bool = True,
    ):
        self.checkpoint_interval = _normalize_interval(checkpoint_interval)
        _validate_streaming_knobs(stream, max_resident_points)
        self.stream = stream
        self.max_resident_points = max_resident_points
        self.trace_compile = trace_compile

    def _window_size(self) -> int | None:
        """Reorder-window bound; ``None`` materializes everything."""
        if not self.stream:
            return None
        return self.max_resident_points or DEFAULT_MAX_RESIDENT

    def _executor(self, faulter, space: FaultSpace, ctx: SpaceContext):
        if self.checkpoint_interval:
            return _CheckpointReplayExecutor(
                faulter,
                ctx.model,
                space.cap_policy,
                self.checkpoint_interval,
                len(ctx.trace),
                trace_compile=self.trace_compile,
            )
        return _MasterWalkExecutor(
            faulter,
            ctx.model,
            space.cap_policy,
            trace_compile=self.trace_compile,
        )

    def iter_outcomes(self, faulter, model, space, ctx, stats):
        window_size = self._window_size()
        executor = None
        window: list[FaultPoint] = []
        for point in space.enumerate(ctx):
            window.append(point)
            if window_size is not None and len(window) >= window_size:
                if executor is None:
                    executor = self._executor(faulter, space, ctx)
                yield from self._drain(executor, window, stats)
                window = []
        if window:
            if executor is None:
                executor = self._executor(faulter, space, ctx)
            yield from self._drain(executor, window, stats)

    @staticmethod
    def _drain(
        executor,
        window: list[FaultPoint],
        stats: ExecutionStats,
    ) -> Iterator[PointOutcome]:
        """Execute one window; reorder its rows back to enumeration
        order."""
        stats.observe_resident(len(window))
        outcomes = executor.run_window(window, stats)
        outcomes.sort(key=lambda pair: pair[0].order)
        yield from outcomes


class _WorkerTarget:
    """Duck-typed stand-in for a Faulter inside a pool worker.

    Carries only the probe's validated baseline — the continuation cap
    and the (pickled) fault-detection oracle — so workers never re-run
    the baseline validation.
    """

    def __init__(
        self,
        image,
        bad_input: bytes,
        oracle,
        continuation_cap: int,
        max_steps: int,
    ):
        self.image = image
        self.bad_input = bad_input
        self.oracle = oracle
        self.watches = oracle.watches()
        self.continuation_cap = continuation_cap
        self.max_steps = max_steps

    def classify(self, result) -> str:
        return self.oracle.classify(result)


# Per-process memo for pool workers: re-deriving the trace and space
# context is deterministic, so each worker process does it once per
# (binary, input, model) and reuses it across its queue of partitions.
_WORKER_CONTEXTS: dict = {}


def _worker_context(
    elf_bytes: bytes,
    bad_input: bytes,
    model_name: str,
    master_max_steps: int,
):
    key = (elf_bytes, bad_input, model_name, master_max_steps)
    cached = _WORKER_CONTEXTS.get(key)
    if cached is None:
        image = read_elf(elf_bytes)
        model = model_by_name(model_name)
        tracer = Machine(image, stdin=bad_input)
        probe_run = tracer.run(
            max_steps=master_max_steps, record_trace=True
        )
        ctx = build_space_context(
            image, bad_input, model, probe_run.trace
        )
        cached = (image, model, ctx)
        _WORKER_CONTEXTS.clear()  # one live target per worker process
        _WORKER_CONTEXTS[key] = cached
    return cached


def _worker(job):
    """Pool worker: stream one declarative partition of the space.

    The job carries a :class:`~repro.faulter.space.SpacePartition`
    spec, not a point list — the worker re-records the bad-input trace
    (deterministic, so identical to the probe's) and re-enumerates its
    own window locally.
    """
    (
        elf_bytes,
        bad_input,
        oracle,
        model_name,
        continuation_cap,
        partition,
        checkpoint_interval,
        master_max_steps,
        stream,
        max_resident_points,
        trace_compile,
    ) = job
    image, model, ctx = _worker_context(
        elf_bytes, bad_input, model_name, master_max_steps
    )
    target = _WorkerTarget(
        image,
        bad_input,
        oracle,
        continuation_cap,
        master_max_steps,
    )
    backend = SequentialBackend(
        checkpoint_interval=checkpoint_interval,
        stream=stream,
        max_resident_points=max_resident_points,
        trace_compile=trace_compile,
    )
    stats = ExecutionStats()
    outcomes = list(
        backend.iter_outcomes(target, model, partition, ctx, stats)
    )
    return (
        outcomes,
        stats.emulated_steps,
        stats.peak_resident_points,
        stats.compiled_steps,
        stats.divergences,
        stats.compile_seconds,
    )


def default_workers() -> int:
    """Pool size when the caller does not pick one: 2..8 by core count."""
    return max(2, min(8, os.cpu_count() or 2))


class MultiprocessBackend(ExecutionBackend):
    """Partition the space across a process pool (the paper's fork).

    Partitions are contiguous enumeration-order windows shipped as
    declarative sub-specs (O(1) bytes per job).  When streaming, each
    partition is additionally capped at ``max_resident_points``, and
    partitions are dispatched in waves of ``workers`` jobs: every
    process (and the returning shard) holds at most one reorder
    window's worth of points, so aggregate residency is
    O(workers x window) instead of O(population).  Each worker
    process re-derives the trace/context once and reuses it across
    its queue of partitions.
    """

    name = "multiprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        checkpoint_interval: int | float | None = None,
        stream: bool = True,
        max_resident_points: int | None = None,
        trace_compile: bool = True,
    ):
        self.workers = workers
        self.checkpoint_interval = _normalize_interval(checkpoint_interval)
        _validate_streaming_knobs(stream, max_resident_points)
        self.stream = stream
        self.max_resident_points = max_resident_points
        self.trace_compile = trace_compile

    def _partition_count(self, total: int, workers: int) -> int:
        """Enough partitions for the pool, capped at the window size."""
        parts = workers
        if self.stream:
            window = self.max_resident_points or DEFAULT_MAX_RESIDENT
            parts = max(parts, math.ceil(total / window))
        return parts

    def iter_outcomes(self, faulter, model, space, ctx, stats):
        workers = self.workers
        if workers is None:
            workers = default_workers()
        total = space.count(ctx)
        partitions = space.partition(
            ctx, self._partition_count(total, workers)
        )
        if len(partitions) <= 1:
            fallback = SequentialBackend(
                checkpoint_interval=self.checkpoint_interval,
                stream=self.stream,
                max_resident_points=self.max_resident_points,
                trace_compile=self.trace_compile,
            )
            yield from fallback.iter_outcomes(
                faulter, model, space, ctx, stats
            )
            return
        image = faulter.image
        if isinstance(image, (bytes, bytearray)):
            elf_bytes = bytes(image)
        else:
            elf_bytes = write_elf(image)
        jobs = [
            (
                elf_bytes,
                faulter.bad_input,
                faulter.oracle,
                model.name,
                faulter.continuation_cap,
                partition,
                self.checkpoint_interval,
                faulter.max_steps,
                self.stream,
                self.max_resident_points,
                self.trace_compile,
            )
            for partition in partitions
        ]
        if hasattr(os, "fork"):
            context = get_context("fork")
        else:
            context = get_context("spawn")
        pool_size = min(workers, len(jobs))
        with context.Pool(processes=pool_size) as pool:
            # wave scheduling: map() one pool-sized batch at a time, so
            # the parent never buffers more than `workers` shards (each
            # at most one reorder window) while keeping partition order
            for start in range(0, len(jobs), pool_size):
                wave = jobs[start:start + pool_size]
                for (
                    outcomes,
                    steps,
                    peak,
                    compiled,
                    divergences,
                    compile_seconds,
                ) in pool.map(_worker, wave):
                    stats.emulated_steps += steps
                    stats.observe_resident(peak)
                    stats.observe_resident(len(outcomes))
                    stats.compiled_steps += compiled
                    stats.divergences += divergences
                    stats.compile_seconds += compile_seconds
                    yield from outcomes


BACKENDS = {
    "sequential": SequentialBackend,
    "multiprocess": MultiprocessBackend,
    # common aliases
    "parallel": MultiprocessBackend,
}


def backend_by_name(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a backend by name (``sequential``/``multiprocess``)."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None
    return factory(**kwargs)


def resolve_backend(
    backend,
    *,
    workers: Optional[int] = None,
    checkpoint_interval: int | float | None = None,
    stream: bool | None = None,
    max_resident_points: int | None = None,
    trace_compile: bool | None = None,
) -> ExecutionBackend:
    """Coerce ``None``/name/instance into an ExecutionBackend.

    Conflicting knobs are an error, not a silent drop: ``workers``
    requires a multiprocess backend, and an already-constructed
    backend instance owns its own configuration.
    """
    checkpoint_interval = _normalize_interval(checkpoint_interval)
    streaming_kwargs: dict = {}
    if stream is not None:
        streaming_kwargs["stream"] = stream
    if max_resident_points is not None:
        streaming_kwargs["max_resident_points"] = max_resident_points
    if trace_compile is not None:
        streaming_kwargs["trace_compile"] = trace_compile
    if backend is None:
        if workers is not None:
            return MultiprocessBackend(
                workers=workers,
                checkpoint_interval=checkpoint_interval,
                **streaming_kwargs,
            )
        return SequentialBackend(
            checkpoint_interval=checkpoint_interval, **streaming_kwargs
        )
    if isinstance(backend, str):
        factory = BACKENDS.get(backend)
        if factory is None:
            backend_by_name(backend)  # raises naming the known backends
        kwargs: dict = {"checkpoint_interval": checkpoint_interval}
        kwargs.update(streaming_kwargs)
        if factory is MultiprocessBackend:
            kwargs["workers"] = workers
        elif workers is not None:
            raise ValueError(
                "workers= only applies to the multiprocess backend, "
                f"not {backend!r}"
            )
        return factory(**kwargs)
    conflicts = (
        ("checkpoint_interval", checkpoint_interval),
        ("workers", workers),
        ("stream", stream),
        ("max_resident_points", max_resident_points),
        ("trace_compile", trace_compile),
    )
    for knob, value in conflicts:
        if value is None:
            continue
        if getattr(backend, knob, None) != value:
            raise ValueError(
                f"pass {knob}= to the backend constructor, not "
                "alongside a backend instance"
            )
    return backend


@dataclass(frozen=True)
class EngineConfig:
    """Declarative engine configuration: every campaign knob, once.

    Replaces the ``backend``/``checkpoint_interval``/``workers``/
    ``k_faults``/``stream``/``max_resident_points`` parameter sprawl
    that every API entry point used to re-declare.  Validation happens
    at *construction* (not inside ``resolve_backend`` at campaign
    time), so a bad combination fails where it is written; ``resolve``
    turns the config into a concrete :class:`ExecutionBackend`.

    ``backend`` may name a registered backend (``"sequential"``/
    ``"multiprocess"``), be ``None`` (pick by the other knobs), or —
    for programmatic callers — an :class:`ExecutionBackend` instance,
    which owns its own knobs (and makes the config non-serializable).
    ``to_dict``/``from_dict`` roundtrip losslessly, including an
    infinite checkpoint interval (JSON-safe as ``"inf"``).
    """

    backend: object = None
    checkpoint_interval: int | float | None = None
    workers: Optional[int] = None
    k_faults: int = 1
    samples: int = 200
    seed: int = 0
    stream: Optional[bool] = None
    max_resident_points: Optional[int] = None
    trace_compile: Optional[bool] = None
    reduce: Optional[bool] = None
    chunk_units: Optional[bool] = None

    def __post_init__(self):
        backend = self.backend
        declarative = backend is None or isinstance(backend, str)
        if isinstance(backend, str) and backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; known: "
                f"{sorted(BACKENDS)}")
        if not declarative and not isinstance(backend,
                                              ExecutionBackend):
            raise ValueError(
                "backend must be None, a registered backend name, or "
                f"an ExecutionBackend instance, got {backend!r}")
        if self.workers is not None:
            if self.workers < 1:
                raise ValueError(
                    f"workers must be >= 1, got {self.workers}")
            if (isinstance(backend, str)
                    and BACKENDS[backend] is not MultiprocessBackend):
                raise ValueError(
                    "workers= only applies to the multiprocess "
                    f"backend, not {backend!r}")
        if self.k_faults < 1:
            raise ValueError(
                f"k_faults must be >= 1, got {self.k_faults}")
        if self.samples < 1:
            raise ValueError(
                f"samples must be >= 1, got {self.samples}")
        if self.max_resident_points is not None:
            if self.stream is False:
                raise ValueError(
                    "max_resident_points= requires streaming "
                    "execution (stream=True)")
            if self.max_resident_points < 1:
                raise ValueError(
                    "max_resident_points must be >= 1, got "
                    f"{self.max_resident_points}")
        if self.trace_compile is not None and not isinstance(
                self.trace_compile, bool):
            raise ValueError(
                "trace_compile must be True, False or None, got "
                f"{self.trace_compile!r}")
        if self.reduce is not None and not isinstance(
                self.reduce, bool):
            raise ValueError(
                "reduce must be True, False or None, got "
                f"{self.reduce!r}")
        if self.chunk_units is not None and not isinstance(
                self.chunk_units, bool):
            raise ValueError(
                "chunk_units must be True, False or None, got "
                f"{self.chunk_units!r}")
        if self.chunk_units and self.k_faults > 1:
            raise ValueError(
                "chunk_units= applies to single-fault campaigns only "
                f"(got k_faults={self.k_faults})")

    def resolve(self) -> ExecutionBackend:
        """Concrete backend for this configuration."""
        return resolve_backend(
            self.backend,
            workers=self.workers,
            checkpoint_interval=self.checkpoint_interval,
            stream=self.stream,
            max_resident_points=self.max_resident_points,
            trace_compile=self.trace_compile,
        )

    def to_dict(self) -> dict:
        if self.backend is not None and not isinstance(self.backend,
                                                       str):
            raise ValueError(
                "an EngineConfig carrying a backend *instance* is "
                "not serializable; name the backend instead")
        interval = self.checkpoint_interval
        if interval is not None and math.isinf(interval):
            interval = "inf"  # keep the payload strictly JSON-safe
        return {
            "backend": self.backend,
            "checkpoint_interval": interval,
            "workers": self.workers,
            "k_faults": self.k_faults,
            "samples": self.samples,
            "seed": self.seed,
            "stream": self.stream,
            "max_resident_points": self.max_resident_points,
            "trace_compile": self.trace_compile,
            "reduce": self.reduce,
            "chunk_units": self.chunk_units,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineConfig":
        interval = payload.get("checkpoint_interval")
        if interval == "inf":
            interval = math.inf
        return cls(
            backend=payload.get("backend"),
            checkpoint_interval=interval,
            workers=payload.get("workers"),
            k_faults=payload.get("k_faults", 1),
            samples=payload.get("samples", 200),
            seed=payload.get("seed", 0),
            stream=payload.get("stream"),
            max_resident_points=payload.get("max_resident_points"),
            trace_compile=payload.get("trace_compile"),
            reduce=payload.get("reduce"),
            chunk_units=payload.get("chunk_units"),
        )


class CampaignEngine:
    """Runs any fault space on any backend for one faulter target."""

    def __init__(self, faulter):
        self.faulter = faulter
        self._contexts: dict[str, SpaceContext] = {}

    def context(self, model: FaultModel | str) -> SpaceContext:
        """Space context for ``model`` over the cached bad-input trace."""
        if isinstance(model, str):
            model = model_by_name(model)
        cached = self._contexts.get(model.name)
        if cached is not None:
            return cached
        ctx = build_space_context(
            self.faulter.image,
            self.faulter.bad_input,
            model,
            self.faulter.trace(),
        )
        self._contexts[model.name] = ctx
        return ctx

    def run(
        self,
        model: FaultModel | str,
        space: FaultSpace,
        backend: ExecutionBackend | str | None = None,
        collect_outcomes: bool = False,
        target: Optional[str] = None,
        reduce: Optional[bool] = None,
    ) -> CampaignReport:
        """Execute ``space`` on ``backend``; fold the streamed
        outcomes into one report incrementally.

        ``reduce`` toggles equivalence reduction
        (:mod:`repro.faulter.reduction`): ``None``/``True`` prune the
        space when a plan applies (the report still covers every point
        of the full space, with elided points inheriting their proven
        verdicts and ``meta["reduction"]`` carrying the certificate);
        ``False`` forces the full enumeration, for bit-identity
        checks.
        """
        if isinstance(model, str):
            model = model_by_name(model)
        ctx = self.context(model)
        backend = resolve_backend(backend)
        plan = None
        if reduce is False:
            reduction_meta: dict = {
                "enabled": False, "reason": "disabled"
            }
        else:
            plan, reason = plan_reduction(
                self.faulter,
                model,
                ctx,
                space,
                trace_compile=getattr(backend, "trace_compile", True),
            )
            if plan is None:
                reduction_meta = {"enabled": False, "reason": reason}
        stats = ExecutionStats()
        builder = CampaignReportBuilder(
            target=target if target is not None else self.faulter.name,
            model=model.name,
            trace_length=len(ctx.trace),
            fault_for=lambda point: self._fault_for(point, ctx, model),
            collect_outcomes=collect_outcomes,
        )
        if plan is None:
            for point, outcome in backend.iter_outcomes(
                self.faulter, model, space, ctx, stats
            ):
                builder.add(point, outcome)
        else:
            executed = backend.iter_outcomes(
                self.faulter, model, plan.space, ctx, stats
            )
            for point, outcome in plan.expand(executed):
                builder.add(point, outcome)
            plan.merge_stats(stats)
            reduction_meta = plan.certificate().to_dict()
        return builder.finish(
            meta={
                "backend": backend.name,
                "space": space.describe(),
                "checkpoint_interval": _interval_meta(backend),
                "stream": getattr(backend, "stream", False),
                "max_resident_points": getattr(
                    backend, "max_resident_points", None
                ),
                "peak_resident_points": stats.peak_resident_points,
                "emulated_steps": stats.emulated_steps,
                "trace_compile": getattr(
                    backend, "trace_compile", False
                ),
                "compiled_steps": stats.compiled_steps,
                "precise_steps": (
                    stats.emulated_steps - stats.compiled_steps
                ),
                "compile_seconds": round(stats.compile_seconds, 6),
                "compile_divergences": stats.divergences,
                "reduction": reduction_meta,
            }
        )

    def run_chunked(
        self,
        model: FaultModel | str,
        plan,
        backend: ExecutionBackend | str | None = None,
        collect_outcomes: bool = False,
        target: Optional[str] = None,
    ) -> CampaignReport:
        """Exhaustive campaign chunked per rewrite unit.

        The bad-input trace is partitioned by which
        :class:`~repro.disasm.units.RewriteUnit` owns each executed
        address (trampoline/injected code falls into a residual
        ``<outside>`` chunk, so coverage stays total), and each chunk
        runs as its own :class:`WindowedSpace` sub-campaign — a large
        ``.text`` streams through the backend's
        ``max_resident_points`` bound one function at a time.  Each
        outcome's point is re-keyed to its global exhaustive order, so
        the merged report is bit-identical to an unchunked
        :class:`ExhaustiveSpace` run; ``meta["units"]`` carries
        per-function rollups.  Equivalence reduction is skipped (the
        reduced and unreduced reports are proven identical, so nothing
        is lost beyond the pruning speedup).
        """
        if isinstance(model, str):
            model = model_by_name(model)
        ctx = self.context(model)
        backend = resolve_backend(backend)

        chunks: dict[str, list[int]] = {}
        unit_info: dict[str, dict] = {}
        for step, address in enumerate(ctx.trace):
            unit = plan.unit_at(address)
            name = unit.name if unit is not None else "<outside>"
            chunks.setdefault(name, []).append(step)
            if unit is not None and name not in unit_info:
                unit_info[name] = {
                    "start": unit.start,
                    "end": unit.end,
                    "opaque": unit.opaque,
                    "origin": unit.origin,
                }

        stats = ExecutionStats()
        rollups: dict[str, dict] = {}
        rows: list[tuple[int, FaultPoint, str]] = []
        cumulative = ctx._cumulative_counts()
        for name in sorted(chunks, key=lambda n: chunks[n][0]):
            steps = chunks[name]
            chunk_stats = ExecutionStats()
            outcomes: dict[str, int] = {}
            variant_seen: dict[int, int] = {}
            space = WindowedSpace(indices=tuple(steps))
            for point, outcome in backend.iter_outcomes(
                self.faulter, model, space, ctx, chunk_stats
            ):
                first = point.first_step
                index = variant_seen.get(first, 0)
                variant_seen[first] = index + 1
                before = cumulative[first - 1] if first else 0
                order = before + index
                rows.append((
                    order,
                    FaultPoint(order, point.steps, point.details),
                    outcome,
                ))
                outcomes[outcome] = outcomes.get(outcome, 0) + 1
            stats.emulated_steps += chunk_stats.emulated_steps
            stats.observe_resident(chunk_stats.peak_resident_points)
            stats.compiled_steps += chunk_stats.compiled_steps
            stats.divergences += chunk_stats.divergences
            stats.compile_seconds += chunk_stats.compile_seconds
            rollups[name] = {
                **unit_info.get(name, {}),
                "trace_steps": len(steps),
                "points": sum(outcomes.values()),
                "outcomes": outcomes,
            }

        rows.sort(key=lambda row: row[0])
        builder = CampaignReportBuilder(
            target=target if target is not None else self.faulter.name,
            model=model.name,
            trace_length=len(ctx.trace),
            fault_for=lambda point: self._fault_for(point, ctx, model),
            collect_outcomes=collect_outcomes,
        )
        for _, point, outcome in rows:
            builder.add(point, outcome)
        return builder.finish(
            meta={
                "backend": backend.name,
                "space": f"unit-chunked[{len(chunks)}]",
                "checkpoint_interval": _interval_meta(backend),
                "stream": getattr(backend, "stream", False),
                "max_resident_points": getattr(
                    backend, "max_resident_points", None
                ),
                "peak_resident_points": stats.peak_resident_points,
                "emulated_steps": stats.emulated_steps,
                "trace_compile": getattr(
                    backend, "trace_compile", False
                ),
                "compiled_steps": stats.compiled_steps,
                "precise_steps": (
                    stats.emulated_steps - stats.compiled_steps
                ),
                "compile_seconds": round(stats.compile_seconds, 6),
                "compile_divergences": stats.divergences,
                "reduction": {"enabled": False, "reason": "chunked"},
                "units": rollups,
            }
        )

    @staticmethod
    def _fault_for(
        point: FaultPoint, ctx: SpaceContext, model: FaultModel
    ) -> Fault:
        first = point.first_step
        detail = point.details[0]
        if point.arity > 1:
            # legacy multi-fault format: (d0, s1, d1, s2, d2, ...)
            extra: list = []
            for step, d in zip(point.steps[1:], point.details[1:]):
                extra.extend((step, d))
            detail = (detail, *extra)
        return Fault(
            model.name,
            first,
            ctx.trace[first],
            ctx.mnemonic(first),
            detail,
        )


def _interval_meta(backend):
    interval = getattr(backend, "checkpoint_interval", None)
    if interval == float("inf"):
        return "inf"  # keep report.to_dict() strictly JSON-safe
    return interval
