"""The faulter: simulation-driven fault-injection vulnerability discovery.

Implements Section IV-B.1 of the paper: run the target binary with the
"bad" input, record the execution trace, then for every offset in that
trace inject each fault a chosen fault model can express — encoding
faults (skip the instruction, flip one encoding bit, stuck bus byte)
or state faults (flip a live register bit, force a status flag,
corrupt an accessed memory cell, invert a conditional branch) — and
observe whether the binary now exhibits the behaviour reserved for the
"good" input — a *successful fault*.  Crashes and still-incorrect runs
are ignored, exactly as the paper prescribes.

Campaign flavors are compositions over the unified engine: a
:class:`~repro.faulter.space.FaultSpace` enumerator executed on an
:class:`~repro.faulter.engine.ExecutionBackend`.
"""

from repro.faulter.models import (
    BranchInvert,
    ENCODING_MODELS,
    EncodingFaultModel,
    FaultModel,
    FlagStuck,
    InstructionSkip,
    MemOperandBitFlip,
    RegisterBitFlip,
    STATE_MODELS,
    SingleBitFlip,
    StateFaultModel,
    StuckAtZeroByte,
    model_by_name,
    MODELS,
)
from repro.faulter.artifacts import (
    ArtifactStats,
    ArtifactStore,
    default_cache_dir,
)
from repro.faulter.campaign import Fault, FaultOutcome, Faulter
from repro.faulter.engine import (
    BACKENDS,
    DEFAULT_MAX_RESIDENT,
    CampaignEngine,
    EngineConfig,
    ExecutionBackend,
    ExecutionStats,
    MultiprocessBackend,
    SequentialBackend,
    backend_by_name,
    shutdown_fleet,
)
from repro.faulter.oracle import (
    AllOf,
    AnyOf,
    ExitCodeOracle,
    MarkerOracle,
    MemoryPredicateOracle,
    Oracle,
    coerce_oracle,
    oracle_from_dict,
)
from repro.faulter.parallel import run_parallel_campaign
from repro.faulter.report import (
    CampaignReport,
    CampaignReportBuilder,
    VulnerablePoint,
)
from repro.faulter.space import (
    ExhaustiveSpace,
    ExplicitSpace,
    FaultPoint,
    FaultSpace,
    KFaultProductSpace,
    SampledSpace,
    SpacePartition,
    WindowedSpace,
)

__all__ = [
    "FaultModel",
    "EncodingFaultModel",
    "StateFaultModel",
    "InstructionSkip",
    "SingleBitFlip",
    "StuckAtZeroByte",
    "RegisterBitFlip",
    "FlagStuck",
    "MemOperandBitFlip",
    "BranchInvert",
    "ENCODING_MODELS",
    "STATE_MODELS",
    "model_by_name",
    "MODELS",
    "Fault",
    "FaultOutcome",
    "Faulter",
    "ArtifactStats",
    "ArtifactStore",
    "default_cache_dir",
    "shutdown_fleet",
    "BACKENDS",
    "DEFAULT_MAX_RESIDENT",
    "CampaignEngine",
    "EngineConfig",
    "ExecutionBackend",
    "ExecutionStats",
    "MultiprocessBackend",
    "SequentialBackend",
    "backend_by_name",
    "Oracle",
    "MarkerOracle",
    "ExitCodeOracle",
    "MemoryPredicateOracle",
    "AllOf",
    "AnyOf",
    "coerce_oracle",
    "oracle_from_dict",
    "run_parallel_campaign",
    "CampaignReport",
    "CampaignReportBuilder",
    "VulnerablePoint",
    "ExhaustiveSpace",
    "ExplicitSpace",
    "FaultPoint",
    "FaultSpace",
    "KFaultProductSpace",
    "SampledSpace",
    "SpacePartition",
    "WindowedSpace",
]
