"""Fault-detection oracles.

An :class:`Oracle` decides what a finished guest run *means*: it
classifies a :class:`~repro.emu.machine.RunResult` into the campaign
outcome vocabulary (``success``/``crash``/``ignored`` — Section
IV-B.1's three classes).  The paper hardwires one detector — "the
privileged marker appeared on stdout under a bad input" — but the
attacker's success predicate is really a parameter of the whole
methodology (Boespflug et al. treat it as a first-class, swappable
predicate), so the faulter, the campaign engine, and the differential
evaluation all consume an oracle instead of a baked-in marker check.

Built-in oracles:

* :class:`MarkerOracle` — the historical behaviour (and the default
  whenever a raw ``bytes`` marker is passed where an oracle is
  expected): success iff the marker substring appears on stdout.
* :class:`ExitCodeOracle` — success iff the run *exits* (no crash,
  no step-budget exhaustion) with the grant exit code; opens
  workloads whose privileged path is silent.
* :class:`MemoryPredicateOracle` — success iff a watched guest
  memory range holds an expected value (or satisfies a predicate)
  when the run finishes.  Declares the watch via :meth:`watches`;
  the machine captures the range into ``RunResult.memory``.
* :class:`AllOf` / :class:`AnyOf` — composites over other oracles.

Oracles are stateless, picklable (they cross process boundaries with
multiprocess campaigns) and — except for callable predicates —
losslessly serializable through ``to_dict``/:func:`oracle_from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.emu.machine import EXIT
from repro.faulter.report import CRASHED, IGNORED, SUCCESS

# (guest address, size) ranges an oracle wants captured at run end
Watch = tuple[int, int]

# registered oracle kinds, for deserialization
ORACLE_KINDS: dict[str, type] = {}


def register_oracle_kind(cls: type) -> type:
    """Class decorator: make ``cls`` reachable from
    :func:`oracle_from_dict`."""
    ORACLE_KINDS[cls.kind] = cls
    return cls


class Oracle:
    """Protocol: classify a finished run into an outcome class."""

    kind = "abstract"

    def classify(self, result) -> str:
        """Map ``result`` onto ``success``/``crash``/``ignored``.

        ``result`` is duck-typed — only the :class:`RunResult` fields
        the oracle consults are required.
        """
        raise NotImplementedError

    def watches(self) -> tuple[Watch, ...]:
        """Guest memory ranges to capture into ``RunResult.memory``."""
        return ()

    def describe(self) -> str:
        return self.kind

    def to_dict(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, payload: dict) -> "Oracle":
        raise NotImplementedError

    def _fallback(self, result) -> str:
        """Shared non-success classification: crash beats ignored."""
        return CRASHED if result.crashed else IGNORED


@register_oracle_kind
@dataclass(frozen=True)
class MarkerOracle(Oracle):
    """Success iff ``marker`` appears on stdout (the paper's
    detector)."""

    marker: bytes
    kind = "marker"

    def classify(self, result) -> str:
        if self.marker in result.stdout:
            return SUCCESS
        return self._fallback(result)

    def describe(self) -> str:
        return f"marker({self.marker!r})"

    def to_dict(self) -> dict:
        # latin-1 maps bytes 0..255 onto code points 0..255 losslessly
        return {"kind": self.kind,
                "marker": self.marker.decode("latin-1")}

    @classmethod
    def from_dict(cls, payload: dict) -> "MarkerOracle":
        return cls(marker=payload["marker"].encode("latin-1"))


@register_oracle_kind
@dataclass(frozen=True)
class ExitCodeOracle(Oracle):
    """Success iff the run exits cleanly with ``grant_code``.

    Crashes and step-budget exhaustion never count as a grant, even
    when the nominal code matches — the attacker needs the privileged
    *exit*, not a wreck that happens to share a number.
    """

    grant_code: int = 0
    kind = "exit-code"

    def classify(self, result) -> str:
        if result.reason == EXIT and result.exit_code == self.grant_code:
            return SUCCESS
        return self._fallback(result)

    def describe(self) -> str:
        return f"exit-code({self.grant_code})"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "grant_code": self.grant_code}

    @classmethod
    def from_dict(cls, payload: dict) -> "ExitCodeOracle":
        return cls(grant_code=payload["grant_code"])


@register_oracle_kind
@dataclass(frozen=True)
class MemoryPredicateOracle(Oracle):
    """Success iff a watched memory range satisfies a predicate.

    The range ``(address, size)`` is captured into
    ``RunResult.memory`` when the run finishes (see
    ``Machine.run(watches=...)``); classification then tests either
    ``equals`` (byte equality — serializable) or ``predicate`` (an
    arbitrary ``bytes -> bool`` callable — not serializable, and only
    picklable when defined at module level).  Exactly one of the two
    must be given.  A run that never produced the capture (e.g. the
    range was unmapped) can never be a success.
    """

    address: int
    size: int
    equals: Optional[bytes] = None
    predicate: Optional[Callable[[bytes], bool]] = None
    kind = "memory"

    def __post_init__(self):
        if (self.equals is None) == (self.predicate is None):
            raise ValueError(
                "MemoryPredicateOracle needs exactly one of equals= "
                "or predicate=")
        if self.size < 1:
            raise ValueError(f"watch size must be >= 1, got {self.size}")

    def watches(self) -> tuple[Watch, ...]:
        return ((self.address, self.size),)

    def classify(self, result) -> str:
        observed = getattr(result, "memory", {}).get(
            (self.address, self.size))
        if observed is not None:
            if self.predicate is not None:
                hit = bool(self.predicate(observed))
            else:
                hit = observed == self.equals
            if hit:
                return SUCCESS
        return self._fallback(result)

    def describe(self) -> str:
        what = (f"=={self.equals!r}" if self.equals is not None
                else "predicate")
        return f"memory({self.address:#x}+{self.size} {what})"

    def to_dict(self) -> dict:
        if self.predicate is not None:
            raise ValueError(
                "a callable-predicate MemoryPredicateOracle is not "
                "serializable; use equals= for to_dict support")
        return {"kind": self.kind, "address": self.address,
                "size": self.size,
                "equals": self.equals.decode("latin-1")}

    @classmethod
    def from_dict(cls, payload: dict) -> "MemoryPredicateOracle":
        return cls(address=payload["address"], size=payload["size"],
                   equals=payload["equals"].encode("latin-1"))


class _Composite(Oracle):
    """Shared machinery for AllOf/AnyOf."""

    def __init__(self, *oracles: Oracle):
        if not oracles:
            raise ValueError(f"{type(self).__name__} needs at least "
                             "one child oracle")
        self.oracles = tuple(coerce_oracle(o) for o in oracles)

    def watches(self) -> tuple[Watch, ...]:
        seen: list[Watch] = []
        for oracle in self.oracles:
            for watch in oracle.watches():
                if watch not in seen:
                    seen.append(watch)
        return tuple(seen)

    def describe(self) -> str:
        inner = ", ".join(o.describe() for o in self.oracles)
        return f"{self.kind}({inner})"

    def to_dict(self) -> dict:
        return {"kind": self.kind,
                "oracles": [o.to_dict() for o in self.oracles]}

    @classmethod
    def from_dict(cls, payload: dict) -> "_Composite":
        return cls(*(oracle_from_dict(entry)
                     for entry in payload["oracles"]))

    def __eq__(self, other):
        return (type(other) is type(self)
                and other.oracles == self.oracles)

    def __hash__(self):
        return hash((type(self).__name__, self.oracles))


@register_oracle_kind
class AllOf(_Composite):
    """Success iff *every* child oracle classifies the run a
    success."""

    kind = "all-of"

    def classify(self, result) -> str:
        if all(o.classify(result) == SUCCESS for o in self.oracles):
            return SUCCESS
        return self._fallback(result)


@register_oracle_kind
class AnyOf(_Composite):
    """Success iff *any* child oracle classifies the run a success."""

    kind = "any-of"

    def classify(self, result) -> str:
        if any(o.classify(result) == SUCCESS for o in self.oracles):
            return SUCCESS
        return self._fallback(result)


def coerce_oracle(value) -> Oracle:
    """Coerce ``value`` into an :class:`Oracle`.

    Raw ``bytes`` become a :class:`MarkerOracle` — the historical
    ``grant_marker`` parameter keeps working everywhere an oracle is
    now expected.
    """
    if isinstance(value, Oracle):
        return value
    if isinstance(value, (bytes, bytearray)):
        return MarkerOracle(marker=bytes(value))
    raise TypeError(
        f"expected an Oracle or a bytes grant marker, got "
        f"{type(value).__name__}")


def oracle_from_dict(payload: dict) -> Oracle:
    """Rebuild an oracle serialized with ``Oracle.to_dict``."""
    kind = payload.get("kind")
    cls = ORACLE_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown oracle kind {kind!r}; known: "
            f"{sorted(ORACLE_KINDS)}")
    return cls.from_dict(payload)
