"""Fault models.

A fault model enumerates, per dynamic instruction, the concrete faults
it can inject there, and knows how to apply one of them at the moment
the instruction is about to execute.

* :class:`InstructionSkip` — the classic glitch effect: the instruction
  is fetched but never executed (PC advances past it).
* :class:`SingleBitFlip` — one bit of the instruction *encoding* is
  flipped during fetch.  The mutated bytes are re-decoded at the same
  address: they may form a different valid instruction (possibly of a
  different length, consuming following bytes — as on silicon) or an
  invalid one, which crashes the run.
* :class:`StuckAtZeroByte` — an extension model: one encoding byte reads
  as zero (bus stuck-at), exercising multi-bit corruption.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.emu.cpu import CPU
from repro.isa.decoder import decode
from repro.isa.insn import Instruction


class FaultModel:
    """Base class for fault models."""

    name = "abstract"

    def variants(self, insn: Instruction) -> Sequence[tuple]:
        """Concrete fault parameters injectable at ``insn``."""
        raise NotImplementedError

    def apply(
        self, insn: Instruction, cpu: CPU, detail: tuple
    ) -> Optional[Instruction]:
        """Perform the fault.

        Returns the replacement instruction to execute, or ``None`` for
        "skip".  May raise :class:`~repro.errors.DecodingError`, which
        the machine surfaces as an invalid-opcode crash.
        """
        raise NotImplementedError

    def describe(self, detail: tuple) -> str:
        return self.name


class InstructionSkip(FaultModel):
    """Skip exactly one dynamic instruction."""

    name = "skip"

    def variants(self, insn: Instruction) -> Sequence[tuple]:
        return [()]

    def apply(self, insn, cpu, detail):
        return None

    def describe(self, detail: tuple) -> str:
        return "skip"


class SingleBitFlip(FaultModel):
    """Flip one bit of the instruction encoding during fetch."""

    name = "bitflip"

    def variants(self, insn: Instruction) -> Sequence[tuple]:
        return [(bit,) for bit in range(len(insn.raw) * 8)]

    def apply(self, insn, cpu, detail):
        (bit,) = detail
        raw = bytearray(cpu.memory.fetch(insn.address, 15))
        raw[bit // 8] ^= 1 << (bit % 8)
        return decode(bytes(raw), 0, insn.address)

    def describe(self, detail: tuple) -> str:
        return f"bitflip(bit={detail[0]})"


class StuckAtZeroByte(FaultModel):
    """One encoding byte reads as 0x00 (stuck-at-zero bus fault)."""

    name = "stuck0"

    def variants(self, insn: Instruction) -> Sequence[tuple]:
        return [(index,) for index in range(len(insn.raw))]

    def apply(self, insn, cpu, detail):
        (index,) = detail
        raw = bytearray(cpu.memory.fetch(insn.address, 15))
        raw[index] = 0
        return decode(bytes(raw), 0, insn.address)

    def describe(self, detail: tuple) -> str:
        return f"stuck0(byte={detail[0]})"


MODELS: dict[str, FaultModel] = {
    model.name: model
    for model in (InstructionSkip(), SingleBitFlip(), StuckAtZeroByte())
}


def model_by_name(name: str) -> FaultModel:
    """Look up a registered fault model (``skip``/``bitflip``/``stuck0``)."""
    try:
        return MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault model {name!r}; known: {sorted(MODELS)}"
        ) from None
