"""Fault models.

A fault model enumerates, per dynamic instruction, the concrete faults
it can inject there (:meth:`FaultModel.variants`), and maps each
variant onto the :class:`~repro.emu.effects.FaultEffect` the machine
applies at the faulted step (:meth:`FaultModel.effect`).

Models come in two families:

* **encoding** (:class:`EncodingFaultModel`) — the fault perturbs the
  instruction *fetch*: :class:`InstructionSkip`,
  :class:`SingleBitFlip` (one encoding bit), :class:`StuckAtZeroByte`
  (one encoding byte reads as zero).
* **state** (:class:`StateFaultModel`) — the fault perturbs machine
  *state* around one step: :class:`RegisterBitFlip` (one bit of one
  live register), :class:`FlagStuck` (force ZF/CF/SF at a
  flag-consuming instruction), :class:`MemOperandBitFlip` (one bit of
  the accessed memory cell), :class:`BranchInvert` (take/untake a
  conditional).  State models enumerate against the instruction's ISA
  metadata (:func:`repro.isa.metadata.effects`), so only faults with a
  live substrate are generated.

Every model is stateless and picklable; the unit that crosses process
boundaries is the ``(model name, detail tuple)`` pair, and variant
enumeration is a pure function of the traced instruction — which is
what keeps campaigns bit-identical across backends and checkpoint
replay.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.emu.effects import (
    BranchInvertEffect,
    EncodingBitFlipEffect,
    EncodingStuckByteEffect,
    FaultEffect,
    FlagForceEffect,
    MemoryBitFlipEffect,
    RegisterBitFlipEffect,
    SkipEffect,
)
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.metadata import Effects, effects as isa_effects
from repro.isa.operands import Mem
from repro.isa.registers import RIP, gpr64

# Status flags a stuck-at upset can force (the ones the subset's
# conditions consume most; see repro.isa.cond).
FORCEABLE_FLAGS = ("zf", "cf", "sf")

GPR_BITS = 64


class FaultModel:
    """Base class for fault models."""

    name = "abstract"
    family = "abstract"
    stage = "abstract"

    def variants(
        self, insn: Instruction, meta: Optional[Effects] = None
    ) -> Sequence[tuple]:
        """Concrete fault parameters injectable at ``insn``.

        ``meta`` carries the instruction's ISA metadata (registers and
        flags read/written); callers that already computed it pass it
        in, otherwise it is derived on demand.
        """
        raise NotImplementedError

    def effect(self, detail: tuple) -> FaultEffect:
        """The machine-level effect for one enumerated variant."""
        raise NotImplementedError

    def describe(self, detail: tuple) -> str:
        return self.name

    def prune_variant(self, step: int, detail: tuple, facts):
        """Equivalence-reduction hook: prove one variant redundant.

        ``facts`` is a :class:`repro.analysis.traceflow.TraceFacts`
        over the bad-input trace.  Returns a
        :class:`~repro.analysis.traceflow.VariantPrune` — a *dead*
        proof (the faulted run is bit-identical to the unfaulted
        continuation) or a *crash* proof (the faulted step itself
        raises) — or ``None`` when no proof applies.  The base model
        proves nothing; models whose faults persist beyond the step
        (``mem-bitflip``) or always redirect control
        (``branch-invert``) keep this default.
        """
        return None

    def variant_class(self, step: int, detail: tuple, facts):
        """Equivalence-reduction hook: key variants with identical
        live-state effect.

        Variants mapping to the same (hashable) key are interchangeable
        under a total-cap space: one representative is executed and its
        verdict reused for the class.  ``None`` leaves the variant
        unmerged.
        """
        return None


class EncodingFaultModel(FaultModel):
    """Faults perturbing the instruction fetch (encoding corruption)."""

    family = "encoding"
    stage = "fetch"


class StateFaultModel(FaultModel):
    """Faults perturbing CPU/memory state around one dynamic step."""

    family = "state"
    stage = "state"

    def _meta(self, insn: Instruction,
              meta: Optional[Effects]) -> Effects:
        return meta if meta is not None else isa_effects(insn)


class InstructionSkip(EncodingFaultModel):
    """Skip exactly one dynamic instruction."""

    name = "skip"

    def variants(self, insn, meta=None) -> Sequence[tuple]:
        return [()]

    def effect(self, detail):
        return SkipEffect()

    def describe(self, detail: tuple) -> str:
        return "skip"

    def prune_variant(self, step, detail, facts):
        # dead when the skipped instruction's definitions (registers
        # and flags) are all dead along the trace, or when it is a
        # conditional branch that fell through anyway
        return facts.skip_prune(step)


class SingleBitFlip(EncodingFaultModel):
    """Flip one bit of the instruction encoding during fetch."""

    name = "bitflip"

    def variants(self, insn, meta=None) -> Sequence[tuple]:
        return [(bit,) for bit in range(len(insn.raw) * 8)]

    def effect(self, detail):
        (bit,) = detail
        return EncodingBitFlipEffect(bit)

    def describe(self, detail: tuple) -> str:
        return f"bitflip(bit={detail[0]})"

    def prune_variant(self, step, detail, facts):
        (bit,) = detail

        def mutate(raw: bytearray) -> None:
            raw[bit // 8] ^= 1 << (bit % 8)

        # crash when the mutated window no longer decodes; dead when
        # it decodes to a same-length instruction whose definitions
        # are all dead
        return facts.encoding_prune(step, mutate)


class StuckAtZeroByte(EncodingFaultModel):
    """One encoding byte reads as 0x00 (stuck-at-zero bus fault)."""

    name = "stuck0"

    def variants(self, insn, meta=None) -> Sequence[tuple]:
        return [(index,) for index in range(len(insn.raw))]

    def effect(self, detail):
        (index,) = detail
        return EncodingStuckByteEffect(index)

    def describe(self, detail: tuple) -> str:
        return f"stuck0(byte={detail[0]})"

    def prune_variant(self, step, detail, facts):
        (index,) = detail

        def mutate(raw: bytearray) -> None:
            raw[index] = 0

        # an already-zero byte is an identity fault (dead); otherwise
        # as for bitflip
        return facts.encoding_prune(step, mutate)


class RegisterBitFlip(StateFaultModel):
    """Flip one bit of one *live* register before the step executes.

    Live means the instruction reads or writes the register (per the
    ISA metadata); faulting a dead register cannot change the step's
    semantics, so those points are not enumerated.  Details are
    ``(gpr code, bit)`` over the full 64-bit parent register.
    """

    name = "reg-bitflip"

    def variants(self, insn, meta=None) -> Sequence[tuple]:
        meta = self._meta(insn, meta)
        live = sorted(
            {register.code for register in (meta.reads | meta.writes)
             if register is not RIP}
        )
        return [(code, bit) for code in live for bit in range(GPR_BITS)]

    def effect(self, detail):
        code, bit = detail
        return RegisterBitFlipEffect(code, bit)

    def describe(self, detail: tuple) -> str:
        code, bit = detail
        return f"reg-bitflip({gpr64(code).name}, bit={bit})"

    def prune_variant(self, step, detail, facts):
        code, bit = detail
        # dead when the flipped bit is overwritten (width-aware, e.g.
        # a 32-bit mov destination zero-extends over all 64 bits)
        # before any instruction reads it
        return facts.reg_bit_prune(step, code, bit)


class FlagStuck(StateFaultModel):
    """Force one status flag at an instruction that consumes flags.

    Enumerated only where the fault has a consumer — conditional
    branches, ``set<cc>``/``cmov<cc>`` and ``pushfq`` — which is where
    a glitched comparison changes control flow.  Details are
    ``(flag name, forced value)`` over ZF/CF/SF.
    """

    name = "flag-stuck"

    def variants(self, insn, meta=None) -> Sequence[tuple]:
        meta = self._meta(insn, meta)
        if not meta.reads_flags:
            return []
        return [(flag, value)
                for flag in FORCEABLE_FLAGS for value in (0, 1)]

    def effect(self, detail):
        flag, value = detail
        return FlagForceEffect(flag, value)

    def describe(self, detail: tuple) -> str:
        flag, value = detail
        return f"flag-stuck({flag}={value})"

    def prune_variant(self, step, detail, facts):
        flag, value = detail
        # dead when the flag already holds the forced value at the
        # step (replayed), or is neither consumed at the step nor
        # live afterwards
        return facts.flag_prune(step, flag, value)

    def variant_class(self, step, detail, facts):
        flag, value = detail
        # forces of the same flag/value with no consumer or writer
        # between them coincide from the later point on
        return facts.flag_class_key(step, flag, value)


class MemOperandBitFlip(StateFaultModel):
    """Flip one bit of the memory cell an operand is about to *read*.

    Enumerated per explicit memory operand whose cell the instruction
    consumes, one variant per bit of the accessed width; the effective
    address is resolved at injection time against the live machine
    state, exactly like the access itself.  Write-only destinations
    (``mov``/``movzx``/``set<cc>`` stores) are excluded — the store
    immediately overwrites the flipped cell, so every such point would
    be a guaranteed no-op paid at full replay cost — as is ``lea``,
    whose memory operand is an address computation that never touches
    the cell.  Details are ``(memory-operand ordinal, bit)``.
    """

    name = "mem-bitflip"

    # first-operand mnemonics whose memory destination is written
    # without being read (metadata read_dest=False)
    _WRITE_ONLY_DEST = frozenset(
        (Mnemonic.MOV, Mnemonic.MOVZX, Mnemonic.SETCC, Mnemonic.POP))

    def variants(self, insn, meta=None) -> Sequence[tuple]:
        if insn.mnemonic is Mnemonic.LEA:
            return []
        out = []
        ordinal = 0
        for position, operand in enumerate(insn.operands):
            if not isinstance(operand, Mem):
                continue
            write_only = (position == 0
                          and insn.mnemonic in self._WRITE_ONLY_DEST)
            if not write_only:
                out.extend((ordinal, bit)
                           for bit in range(operand.size * 8))
            ordinal += 1
        return out

    def effect(self, detail):
        ordinal, bit = detail
        return MemoryBitFlipEffect(ordinal, bit)

    def describe(self, detail: tuple) -> str:
        ordinal, bit = detail
        return f"mem-bitflip(operand={ordinal}, bit={bit})"


class BranchInvert(StateFaultModel):
    """Invert one conditional branch: taken becomes fall-through and
    vice versa (a glitched branch unit / corrupted predicate)."""

    name = "branch-invert"

    def variants(self, insn, meta=None) -> Sequence[tuple]:
        return [()] if insn.is_conditional else []

    def effect(self, detail):
        return BranchInvertEffect()

    def describe(self, detail: tuple) -> str:
        return "branch-invert"


MODELS: dict[str, FaultModel] = {
    model.name: model
    for model in (
        InstructionSkip(),
        SingleBitFlip(),
        StuckAtZeroByte(),
        RegisterBitFlip(),
        FlagStuck(),
        MemOperandBitFlip(),
        BranchInvert(),
    )
}

ENCODING_MODELS = tuple(
    name for name, model in MODELS.items() if model.family == "encoding"
)
STATE_MODELS = tuple(
    name for name, model in MODELS.items() if model.family == "state"
)


def model_by_name(name: str) -> FaultModel:
    """Look up a registered fault model by name (see ``MODELS``)."""
    try:
        return MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault model {name!r}; known: {sorted(MODELS)}"
        ) from None
