"""Content-addressed on-disk artifact store for campaign derivations.

Every campaign re-derives the same deterministic products before the
first fault executes: the recorded bad-input trace, the lazy
checkpoint prefix, the traceflow flag replay, the equivalence-
reduction proofs, and the JIT'd superblock sources.  All of them are
pure functions of (target bytes, campaign
input, engine-config slice), so they are cacheable by content digest —
ARMORY's observation that exhaustive fault simulation only scales when
per-experiment setup cost is amortized.

Design:

* **Keys** are SHA-256 digests over length-prefixed canonical parts
  (kind tag, format version, image digest, inputs, knobs).  Any change
  to the binary, the input, or a relevant knob lands in a different
  key — invalidation is structural, never time-based.
* **Payloads** are pickled under a magic header plus a SHA-256 body
  digest.  :meth:`ArtifactStore.load` re-hashes on read, so a
  truncated, corrupted, or stale file is indistinguishable from a
  miss: the caller silently re-derives (never crashes, never returns
  a wrong payload).
* **Writes** are atomic: temp file in the destination directory, then
  ``os.replace``.  Concurrent writers (pool workers racing on the same
  key) last-write-win with identical bytes; readers never observe a
  partial file.  I/O errors on save are swallowed — a full disk slows
  campaigns down, it does not fail them.
* A small in-memory write-through memo fronts the disk (bounded at
  :data:`MEMO_ENTRIES`), so a persistent worker re-loading the same
  checkpoint state across partitions skips even the unpickle.

The store is *mechanism only*: key derivation helpers live here, the
derivation closures stay with their owners in ``engine.py``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

# bump to orphan every previously written payload (schema change)
FORMAT_VERSION = 1

# file header: magic + body sha256; anything shorter is corrupt
_MAGIC = b"r2rart\x01\x00"
_DIGEST_SIZE = hashlib.sha256().digest_size

# write-through memo bound (entries, not bytes; payloads are small —
# the largest, a checkpoint prefix, is a few MB)
MEMO_ENTRIES = 8


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/r2r/artifacts`` (or ``~/.cache/r2r/...``)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "r2r" / "artifacts"


def digest_key(*parts) -> str:
    """SHA-256 over length-prefixed canonical encodings of ``parts``.

    ``bytes`` parts hash as-is; everything else hashes its ``repr``
    (ints, floats, ``None``, strings — all the knob types that feed a
    key).  Length prefixes keep adjacent parts from aliasing.
    """
    h = hashlib.sha256()
    for part in parts:
        data = part if isinstance(part, bytes) else repr(part).encode()
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)
    return h.hexdigest()


@dataclass
class ArtifactStats:
    """Hit/miss/derive accounting, merged across processes.

    ``derive_seconds`` is wall time spent inside
    :meth:`ArtifactStore.load_or_derive` builders — the re-derivation
    cost the cache exists to amortize.
    """

    hits: int = 0
    misses: int = 0
    saves: int = 0
    derive_seconds: float = 0.0

    def snapshot(self) -> tuple:
        return (self.hits, self.misses, self.saves, self.derive_seconds)

    def delta(self, since: tuple) -> dict:
        return {
            "hits": self.hits - since[0],
            "misses": self.misses - since[1],
            "saves": self.saves - since[2],
            "derive_seconds": round(self.derive_seconds - since[3], 6),
        }

    def merge(self, counters: dict) -> None:
        self.hits += counters.get("hits", 0)
        self.misses += counters.get("misses", 0)
        self.saves += counters.get("saves", 0)
        self.derive_seconds += counters.get("derive_seconds", 0.0)


class ArtifactStore:
    """Content-addressed artifact cache rooted at one directory."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root else default_cache_dir()
        self.stats = ArtifactStats()
        self._memo: dict[tuple[str, str], object] = {}

    def __repr__(self):
        return f"ArtifactStore({str(self.root)!r})"

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.art"

    # -- read / write --------------------------------------------------

    def load(self, kind: str, key: str,
             validate: Optional[Callable] = None):
        """The payload for ``(kind, key)``, or ``None``.

        Any failure — missing file, short header, body digest
        mismatch (truncation, corruption, a stale format), unpickle
        error, or a ``validate`` rejection — counts as a miss and
        returns ``None``; the caller re-derives.
        """
        memo_key = (kind, key)
        payload = self._memo.get(memo_key)
        if payload is None:
            payload = self._read(self._path(kind, key))
        if payload is not None and (validate is None
                                    or self._check(validate, payload)):
            self._remember(memo_key, payload)
            self.stats.hits += 1
            return payload
        self.stats.misses += 1
        return None

    @staticmethod
    def _check(validate: Callable, payload) -> bool:
        try:
            return bool(validate(payload))
        except Exception:
            return False

    @staticmethod
    def _read(path: Path):
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        header = len(_MAGIC) + _DIGEST_SIZE
        if len(raw) < header or not raw.startswith(_MAGIC):
            return None
        body = raw[header:]
        if hashlib.sha256(body).digest() != raw[len(_MAGIC):header]:
            return None
        try:
            return pickle.loads(body)
        except Exception:
            return None

    def save(self, kind: str, key: str, payload) -> bool:
        """Atomically persist ``payload``; False on any I/O failure."""
        try:
            body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        blob = _MAGIC + hashlib.sha256(body).digest() + body
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent,
                                       prefix=f".{key[:16]}.")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self._remember((kind, key), payload)
        self.stats.saves += 1
        return True

    def load_or_derive(self, kind: str, key: str, builder: Callable,
                       validate: Optional[Callable] = None):
        """Cached payload, or ``builder()`` (timed, then persisted)."""
        payload = self.load(kind, key, validate=validate)
        if payload is not None:
            return payload
        started = time.perf_counter()
        payload = builder()
        self.stats.derive_seconds += time.perf_counter() - started
        self.save(kind, key, payload)
        return payload

    def _remember(self, memo_key: tuple, payload) -> None:
        # bounded write-through memo (FIFO eviction is plenty: a
        # campaign touches a handful of keys, all at once)
        if memo_key not in self._memo and len(self._memo) >= MEMO_ENTRIES:
            self._memo.pop(next(iter(self._memo)))
        self._memo[memo_key] = payload

    # -- maintenance ---------------------------------------------------

    def info(self) -> dict:
        """Per-kind entry/byte census of the on-disk store."""
        kinds: dict[str, dict] = {}
        total_entries = 0
        total_bytes = 0
        try:
            kind_dirs = sorted(p for p in self.root.iterdir()
                               if p.is_dir())
        except OSError:
            kind_dirs = []
        for kind_dir in kind_dirs:
            entries = 0
            size = 0
            try:
                for path in kind_dir.iterdir():
                    if path.suffix != ".art":
                        continue
                    entries += 1
                    try:
                        size += path.stat().st_size
                    except OSError:
                        pass
            except OSError:
                pass
            kinds[kind_dir.name] = {"entries": entries, "bytes": size}
            total_entries += entries
            total_bytes += size
        return {
            "root": str(self.root),
            "entries": total_entries,
            "bytes": total_bytes,
            "kinds": kinds,
        }

    def clear(self) -> int:
        """Delete every artifact file; returns the number removed."""
        removed = 0
        self._memo.clear()
        try:
            kind_dirs = [p for p in self.root.iterdir() if p.is_dir()]
        except OSError:
            return 0
        for kind_dir in kind_dirs:
            try:
                paths = list(kind_dir.iterdir())
            except OSError:
                continue
            for path in paths:
                if path.suffix != ".art":
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                kind_dir.rmdir()
            except OSError:
                pass
        return removed


# -- key derivation (the content-addressing scheme) ---------------------
#
# Every key starts with (kind, FORMAT_VERSION, image digest); the tail
# is the minimal knob slice the product depends on.  Model identity is
# deliberately absent from trace/checkpoint/jit keys — those products
# are model-independent, so campaigns across models share them.


def trace_key(image_digest: str, bad_input: bytes,
              max_steps: int) -> str:
    """The recorded bad-input trace."""
    return digest_key(b"trace", FORMAT_VERSION, image_digest,
                      bad_input, max_steps)


def flags_key(image_digest: str, bad_input: bytes,
              trace_length: int) -> str:
    """The traceflow flag replay (pre-step ZF/CF/SF per trace step)."""
    return digest_key(b"flags", FORMAT_VERSION, image_digest,
                      bad_input, trace_length)


def checkpoints_key(image_digest: str, bad_input: bytes,
                    interval: int | float, max_span: int) -> str:
    """The lazily built checkpoint prefix for one replay grid."""
    return digest_key(b"checkpoints", FORMAT_VERSION, image_digest,
                      bad_input, interval, max_span)


def jit_key(image_digest: str) -> str:
    """Serialized superblock sources (depend on code bytes only)."""
    return digest_key(b"jit", FORMAT_VERSION, image_digest)


def facts_key(image_digest: str, bad_input: bytes,
              trace_length: int, model_name: str) -> str:
    """Equivalence-reduction proofs (prune/class verdicts per variant).

    Verdicts come from the *model's* reduction hooks, so the key is
    model-scoped — ``skip`` proofs can never answer for ``bitflip``.
    """
    return digest_key(b"facts", FORMAT_VERSION, image_digest,
                      bad_input, trace_length, model_name)


def image_digest(elf_bytes: bytes) -> str:
    """Canonical content digest of a target image."""
    return hashlib.sha256(elf_bytes).hexdigest()
