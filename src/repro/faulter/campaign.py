"""The fault campaign driver (the *faulter* of Fig. 2).

Protocol, following Section IV-B.1:

1. run the "good" and "bad" inputs to establish baseline behaviours
   (the good run must exhibit the privileged marker, the bad run must
   not — otherwise there is nothing to protect),
2. record the bad input's execution trace,
3. for each offset in the trace and each fault the model can express
   there, re-run with that single fault injected and classify the
   outcome:

   * ``success`` — the privileged behaviour appears (a vulnerability),
   * ``crash``   — invalid opcode, memory fault, or runaway execution,
   * ``ignored`` — still behaves like a bad input.

The paper forks each fault simulation; we snapshot CPU/IO state and
journal memory writes at the fault point instead, replaying only the
suffix of the trace for each fault (see ``repro.emu.memory``).

The "privileged behaviour appeared" decision is delegated to a
pluggable :class:`~repro.faulter.oracle.Oracle` — a raw ``bytes``
marker still works everywhere (it coerces to the default
:class:`~repro.faulter.oracle.MarkerOracle`), but exit-code and
memory-predicate oracles open workloads whose grant path never
prints.

All campaign flavors route through the unified engine
(:mod:`repro.faulter.engine`): a campaign is a
:class:`~repro.faulter.space.FaultSpace` executed on an
:class:`~repro.faulter.engine.ExecutionBackend`.  The methods below
keep the historical signatures and produce bit-identical reports.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.binfmt.image import Executable
from repro.binfmt.writer import write_elf
from repro.emu.machine import Machine, RunResult
from repro.errors import ReproError
from repro.faulter import artifacts as artifacts_mod
from repro.faulter.artifacts import ArtifactStore
from repro.faulter.engine import (
    CampaignEngine,
    derive_trace,
    resolve_backend,
)
from repro.faulter.models import FaultModel
from repro.faulter.oracle import MarkerOracle, Oracle, coerce_oracle
from repro.faulter.report import (
    CRASHED,
    IGNORED,
    SUCCESS,
    CampaignReport,
    Fault,
    FaultOutcome,
)
from repro.faulter.space import (
    ExhaustiveSpace,
    KFaultProductSpace,
    WindowedSpace,
)

__all__ = [
    "SUCCESS",
    "CRASHED",
    "IGNORED",
    "Fault",
    "FaultOutcome",
    "Faulter",
]


class Faulter:
    """Runs fault campaigns against one binary."""

    def __init__(
        self,
        image: Executable | bytes,
        good_input: bytes,
        bad_input: bytes,
        oracle: Oracle | bytes,
        name: str = "target",
        max_steps: int = 100_000,
        baselines: Optional[tuple[RunResult, RunResult]] = None,
        artifacts: Optional[ArtifactStore] = None,
    ):
        self.image = image
        self.good_input = good_input
        self.bad_input = bad_input
        self.oracle = coerce_oracle(oracle)
        # historical attribute, kept for callers that introspect the
        # marker; None when the detector is not a marker check
        self.grant_marker = (self.oracle.marker
                             if isinstance(self.oracle, MarkerOracle)
                             else None)
        self.watches = self.oracle.watches()
        self.name = name
        self.max_steps = max_steps
        self._trace: Optional[list[int]] = None
        self._engine: Optional[CampaignEngine] = None
        self._plan = None
        self.artifacts = artifacts
        self._image_key: Optional[str] = None
        if baselines is not None:
            # an already-validated oracle (e.g. from a probe process)
            self.good_baseline, self.bad_baseline = baselines
        else:
            self._validate_baseline()

    # -- baselines --------------------------------------------------------

    def _run(self, stdin: bytes, **kwargs):
        return Machine(self.image, stdin=stdin).run(
            max_steps=self.max_steps, **kwargs
        )

    def _validate_baseline(self):
        good = self._run(self.good_input, watches=self.watches)
        bad = self._run(self.bad_input, watches=self.watches)
        if self.classify(good) != SUCCESS:
            raise ReproError(
                f"{self.name}: good input does not produce the "
                f"privileged behaviour under {self.oracle.describe()} "
                f"({good})"
            )
        if self.classify(bad) == SUCCESS:
            raise ReproError(
                f"{self.name}: bad input already produces the "
                f"privileged behaviour under "
                f"{self.oracle.describe()} — nothing to protect"
            )
        self.good_baseline = good
        self.bad_baseline = bad

    def classify(self, result) -> str:
        """Map a faulted run onto the paper's three outcome classes."""
        return self.oracle.classify(result)

    @property
    def continuation_cap(self) -> int:
        """Step budget for one faulted run (2x baseline + headroom)."""
        return self.bad_baseline.steps * 2 + 256

    # -- campaign ---------------------------------------------------------

    def image_digest(self) -> str:
        """Content digest of the target image (computed once)."""
        if self._image_key is None:
            image = self.image
            if isinstance(image, (bytes, bytearray)):
                elf_bytes = bytes(image)
            else:
                elf_bytes = write_elf(image)
            self._image_key = artifacts_mod.image_digest(elf_bytes)
        return self._image_key

    def trace(self) -> list[int]:
        """Instruction-address trace of the bad input (computed once,
        loaded from the artifact store when one is configured)."""
        if self._trace is None:
            self._trace = derive_trace(
                self.image,
                self.bad_input,
                self.max_steps,
                artifacts=self.artifacts,
                image_key=(self.image_digest()
                           if self.artifacts is not None else None),
            )
        return self._trace

    def engine(self) -> CampaignEngine:
        """The campaign engine bound to this target (shared contexts)."""
        if self._engine is None:
            self._engine = CampaignEngine(self)
        return self._engine

    def run_campaign(
        self,
        model: FaultModel | str,
        trace_window: Optional[Sequence[int]] = None,
        collect_outcomes: bool = False,
        backend=None,
        checkpoint_interval: int | float | None = None,
        stream: bool | None = None,
        max_resident_points: int | None = None,
        reduce: bool | None = None,
    ) -> CampaignReport:
        """Inject every fault ``model`` expresses along the bad-input
        trace.

        ``trace_window`` optionally restricts the dynamic offsets
        attacked (an iterable of trace indices) — the statistical-FI
        escape hatch for long traces.  ``backend`` picks the execution
        backend (name or instance; default sequential),
        ``checkpoint_interval`` switches the sequential backend from
        master-walk suffix replay to checkpoint replay, ``stream``
        toggles bounded streaming execution (default on),
        ``max_resident_points`` sizes its reorder window, and
        ``reduce`` toggles equivalence reduction (default on; the
        report covers the full space either way, see
        :mod:`repro.faulter.reduction`).
        """
        if trace_window is None:
            space = ExhaustiveSpace()
        else:
            space = WindowedSpace(indices=tuple(trace_window))
        backend = resolve_backend(
            backend,
            checkpoint_interval=checkpoint_interval,
            stream=stream,
            max_resident_points=max_resident_points,
        )
        return self.engine().run(
            model,
            space,
            backend=backend,
            collect_outcomes=collect_outcomes,
            reduce=reduce,
        )

    def rewrite_plan(self):
        """The target's :class:`~repro.disasm.units.RewritePlan`
        (recovered once and cached)."""
        if self._plan is None:
            from repro.binfmt.reader import read_elf
            from repro.disasm.units import recover_plan

            exe = self.image
            if isinstance(exe, bytes):
                exe = read_elf(exe)
            _, self._plan = recover_plan(exe)
        return self._plan

    def run_chunked_campaign(
        self,
        model: FaultModel | str,
        plan=None,
        collect_outcomes: bool = False,
        backend=None,
        checkpoint_interval: int | float | None = None,
        stream: bool | None = None,
        max_resident_points: int | None = None,
    ) -> CampaignReport:
        """Exhaustive campaign chunked per rewrite unit.

        The trace is partitioned along ``plan`` (recovered from the
        image when omitted) and each unit runs as its own sub-campaign
        within the backend's ``max_resident_points`` bound; the merged
        report is bit-identical to :meth:`run_campaign` over the full
        space, with per-function rollups in ``meta["units"]``.
        """
        if plan is None:
            plan = self.rewrite_plan()
        backend = resolve_backend(
            backend,
            checkpoint_interval=checkpoint_interval,
            stream=stream,
            max_resident_points=max_resident_points,
        )
        return self.engine().run_chunked(
            model,
            plan,
            backend=backend,
            collect_outcomes=collect_outcomes,
        )

    # -- multi-fault campaigns (extension) --------------------------------

    def run_k_fault_campaign(
        self,
        model: FaultModel | str,
        k: int = 2,
        samples: int = 200,
        seed: int = 0,
        backend=None,
        checkpoint_interval: int | float | None = None,
        stream: bool | None = None,
        max_resident_points: int | None = None,
        reduce: bool | None = None,
    ) -> CampaignReport:
        """``k`` faults per run, sampled along the bad-input trace.

        The paper notes the faulter is parametric in "the number of
        faults injected per run"; exhaustive k-fault products are
        O(population^k), so we sample deterministic random k-tuples.
        A countermeasure that defeats all single faults may still fall
        to a pair (e.g. skipping both duplicated compares).
        """
        space = KFaultProductSpace(k=k, samples=samples, seed=seed)
        backend = resolve_backend(
            backend,
            checkpoint_interval=checkpoint_interval,
            stream=stream,
            max_resident_points=max_resident_points,
        )
        suffix = "pairs" if k == 2 else f"{k}-faults"
        return self.engine().run(
            model,
            space,
            backend=backend,
            target=f"{self.name}({suffix})",
            reduce=reduce,
        )

    def run_pair_campaign(
        self,
        model: FaultModel | str,
        samples: int = 200,
        seed: int = 0,
        reduce: bool | None = None,
    ) -> CampaignReport:
        """Double-fault campaign: two faults per run, sampled."""
        return self.run_k_fault_campaign(
            model, k=2, samples=samples, seed=seed, reduce=reduce
        )

    # -- multi-model convenience ------------------------------------------

    def run_all(
        self,
        models: Sequence[str | FaultModel] = ("skip", "bitflip"),
        **campaign_kwargs,
    ):
        """Run several campaigns; returns {model_name: report}."""
        reports = {}
        for model in models:
            report = self.run_campaign(model, **campaign_kwargs)
            reports[report.model] = report
        return reports
