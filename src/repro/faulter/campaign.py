"""The fault campaign driver (the *faulter* of Fig. 2).

Protocol, following Section IV-B.1:

1. run the "good" and "bad" inputs to establish baseline behaviours
   (the good run must exhibit the privileged marker, the bad run must
   not — otherwise there is nothing to protect),
2. record the bad input's execution trace,
3. for each offset in the trace and each fault the model can express
   there, re-run with that single fault injected and classify the
   outcome:

   * ``success`` — the privileged behaviour appears (a vulnerability),
   * ``crash``   — invalid opcode, memory fault, or runaway execution,
   * ``ignored`` — still behaves like a bad input.

The paper forks each fault simulation; we snapshot CPU/IO state and
journal memory writes at the fault point instead, replaying only the
suffix of the trace for each fault (see ``repro.emu.memory``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.binfmt.image import Executable
from repro.emu.machine import CRASH, EXIT, HALT, MAX_STEPS, Machine
from repro.emu.cpu import ExitProgram, Halt
from repro.errors import EmulationError, DecodingError, ReproError
from repro.faulter.models import FaultModel, model_by_name
from repro.faulter.report import CampaignReport

SUCCESS = "success"
CRASHED = "crash"
IGNORED = "ignored"


@dataclass(frozen=True)
class Fault:
    """One concrete injected fault."""

    model: str
    trace_index: int
    address: int
    mnemonic: str
    detail: tuple = ()

    def describe(self) -> str:
        base = f"t={self.trace_index}"
        if self.detail:
            base += f" {self.detail}"
        return f"{self.model}[{base}]"


@dataclass(frozen=True)
class FaultOutcome:
    fault: Fault
    outcome: str


class Faulter:
    """Runs fault campaigns against one binary."""

    def __init__(self,
                 image: Executable | bytes,
                 good_input: bytes,
                 bad_input: bytes,
                 grant_marker: bytes,
                 name: str = "target",
                 max_steps: int = 100_000):
        self.image = image
        self.good_input = good_input
        self.bad_input = bad_input
        self.grant_marker = grant_marker
        self.name = name
        self.max_steps = max_steps
        self._validate_baseline()

    # -- baselines -----------------------------------------------------------

    def _run(self, stdin: bytes, **kwargs):
        return Machine(self.image, stdin=stdin).run(
            max_steps=self.max_steps, **kwargs)

    def _validate_baseline(self):
        good = self._run(self.good_input)
        bad = self._run(self.bad_input)
        if self.grant_marker not in good.stdout:
            raise ReproError(
                f"{self.name}: good input does not produce the marker "
                f"{self.grant_marker!r} (stdout={good.stdout!r})")
        if self.grant_marker in bad.stdout:
            raise ReproError(
                f"{self.name}: bad input already produces the marker — "
                f"nothing to protect")
        self.good_baseline = good
        self.bad_baseline = bad

    def classify(self, result) -> str:
        """Map a faulted run onto the paper's three outcome classes."""
        if self.grant_marker in result.stdout:
            return SUCCESS
        if result.reason in (CRASH, MAX_STEPS):
            return CRASHED
        return IGNORED

    # -- campaign ------------------------------------------------------------

    def trace(self) -> list[int]:
        """Instruction-address trace of the bad input."""
        return self._run(self.bad_input, record_trace=True).trace

    def run_campaign(self,
                     model: FaultModel | str,
                     trace_window: Optional[Sequence[int]] = None,
                     collect_outcomes: bool = False) -> CampaignReport:
        """Inject every fault ``model`` expresses along the bad-input trace.

        ``trace_window`` optionally restricts the dynamic offsets
        attacked (an iterable of trace indices) — the statistical-FI
        escape hatch for long traces.
        """
        if isinstance(model, str):
            model = model_by_name(model)
        trace = self.trace()
        indices = list(trace_window) if trace_window is not None \
            else list(range(len(trace)))
        index_set = set(indices)

        continuation_cap = self.bad_baseline.steps * 2 + 256
        report = CampaignReport(
            target=self.name, model=model.name,
            trace_length=len(trace), total_faults=0)
        outcomes_list: list[FaultOutcome] = []

        # master machine walks the trace once; each fault replays only
        # the suffix from the snapshot (fork substitute).
        master = Machine(self.image, stdin=self.bad_input)
        for step_index in range(len(trace)):
            rip = master.cpu.rip
            if step_index in index_set:
                try:
                    instruction = master.fetch_decode(rip)
                except DecodingError:
                    break
                for detail in model.variants(instruction):
                    fault = Fault(model.name, step_index, rip,
                                  instruction.name, detail)
                    outcome = self._inject(master, model, detail,
                                           continuation_cap)
                    report.total_faults += 1
                    report.outcomes[outcome] += 1
                    if outcome == SUCCESS:
                        report.successes.append(fault)
                    if collect_outcomes:
                        outcomes_list.append(FaultOutcome(fault, outcome))
            if not self._master_step(master):
                break
        if collect_outcomes:
            report.all_outcomes = outcomes_list
        return report

    def _inject(self, master: Machine, model: FaultModel, detail: tuple,
                cap: int) -> str:
        state = master.snapshot()
        master.memory.journal_begin()
        try:
            result = master.run(
                max_steps=cap,
                fault_step=0,
                fault_intercept=lambda insn, cpu: model.apply(
                    insn, cpu, detail),
            )
            outcome = self.classify(result)
        finally:
            master.memory.journal_rollback()
            master.restore(state)
        return outcome

    def _master_step(self, master: Machine) -> bool:
        """Advance the master machine one instruction; False when done."""
        try:
            instruction = master.fetch_decode(master.cpu.rip)
            master.cpu.execute(instruction)
        except (ExitProgram, Halt, EmulationError, DecodingError):
            return False
        return True

    # -- multi-fault campaigns (extension) -------------------------------

    def run_pair_campaign(self, model: FaultModel | str,
                          samples: int = 200,
                          seed: int = 0) -> CampaignReport:
        """Double-fault campaign: two faults per run, sampled.

        The paper notes the faulter is parametric in "the number of
        faults injected per run"; exhaustive pairs are quadratic, so we
        sample deterministic random pairs along the bad-input trace.
        A countermeasure that defeats all single faults may still fall
        to a pair (e.g. skipping both duplicated compares).
        """
        import random
        if isinstance(model, str):
            model = model_by_name(model)
        trace = self.trace()
        rng = random.Random(seed)
        cap = self.bad_baseline.steps * 2 + 256
        machine = Machine(self.image, stdin=self.bad_input)
        report = CampaignReport(
            target=f"{self.name}(pairs)", model=model.name,
            trace_length=len(trace), total_faults=0)

        variants_at: dict[int, list] = {}

        def variants(index: int):
            if index not in variants_at:
                insn = machine.fetch_decode(trace[index])
                variants_at[index] = list(model.variants(insn))
            return variants_at[index]

        for _ in range(samples):
            first = rng.randrange(len(trace))
            second = rng.randrange(len(trace))
            if first == second:
                continue
            first, second = sorted((first, second))
            first_detail = rng.choice(variants(first))
            second_detail = rng.choice(variants(second))
            runner = Machine(self.image, stdin=self.bad_input)
            plan = {
                first: (lambda insn, cpu, d=first_detail:
                        model.apply(insn, cpu, d)),
                second: (lambda insn, cpu, d=second_detail:
                         model.apply(insn, cpu, d)),
            }
            result = runner.run(max_steps=cap, fault_plan=plan)
            outcome = self.classify(result)
            report.total_faults += 1
            report.outcomes[outcome] += 1
            if outcome == SUCCESS:
                report.successes.append(Fault(
                    model.name, first, trace[first],
                    machine.fetch_decode(trace[first]).name,
                    (first_detail, second, second_detail)))
        return report

    # -- multi-model convenience ----------------------------------------------

    def run_all(self, models: Sequence[str | FaultModel] = ("skip",
                                                            "bitflip")):
        """Run several campaigns; returns {model_name: report}."""
        reports = {}
        for model in models:
            report = self.run_campaign(model)
            reports[report.model] = report
        return reports
