"""Vulnerability reports produced by fault campaigns.

This module also owns the campaign *vocabulary* — the three outcome
classes of Section IV-B.1, the :class:`Fault` record, and the outcome
classifier — so the campaign drivers, the engine, and worker processes
can all share it without importing each other.  The vocabulary is
fault-model-agnostic: a :class:`Fault` names its model (any member of
the ``repro.faulter.models`` registry, encoding or state family) and
carries the model's opaque detail tuple, and the differential rollups
key on those names, so new models flow through reporting untouched.

:class:`CampaignReportBuilder` assembles a report *incrementally*:
the engine folds each ``(point, outcome)`` row into it as execution
streams them in enumeration order, so a campaign never holds more
than its reorder window of pending points in memory.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.provenance import ProvenanceMap

SUCCESS = "success"
CRASHED = "crash"
IGNORED = "ignored"

# differential point classes (countermeasure evaluation)
ELIMINATED = "eliminated"
SURVIVING = "surviving"
INTRODUCED = "introduced"
UNMAPPED = "unmapped"

DIFF_STATUSES = (ELIMINATED, SURVIVING, INTRODUCED, UNMAPPED)


def classify_result(result, grant_marker: bytes) -> str:
    """Map a faulted run onto the paper's three outcome classes.

    ``result`` is a :class:`repro.emu.machine.RunResult` (duck-typed:
    only ``stdout`` and ``crashed`` are consulted).
    """
    if grant_marker in result.stdout:
        return SUCCESS
    if result.crashed:
        return CRASHED
    return IGNORED


@dataclass(frozen=True)
class Fault:
    """One concrete injected fault."""

    model: str
    trace_index: int
    address: int
    mnemonic: str
    detail: tuple = ()

    def describe(self) -> str:
        base = f"t={self.trace_index}"
        if self.detail:
            base += f" {self.detail}"
        return f"{self.model}[{base}]"

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "trace_index": self.trace_index,
            "address": self.address,
            "mnemonic": self.mnemonic,
            "detail": _detail_to_json(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Fault":
        return cls(
            model=payload["model"],
            trace_index=payload["trace_index"],
            address=payload["address"],
            mnemonic=payload["mnemonic"],
            detail=_detail_from_json(payload.get("detail", [])),
        )


@dataclass(frozen=True)
class FaultOutcome:
    fault: Fault
    outcome: str


def _detail_to_json(detail):
    """Fault details are nested tuples of ints; JSON has only lists."""
    if isinstance(detail, tuple):
        return [_detail_to_json(item) for item in detail]
    return detail


def _detail_from_json(detail):
    if isinstance(detail, list):
        return tuple(_detail_from_json(item) for item in detail)
    return detail


@dataclass
class VulnerablePoint:
    """A static instruction with at least one successful fault."""

    address: int
    mnemonic: str
    faults: list["Fault"] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.faults)


@dataclass
class CampaignReport:
    """Outcome of one faulter campaign (one binary x one fault model)."""

    target: str
    model: str
    trace_length: int
    total_faults: int
    outcomes: Counter = field(default_factory=Counter)
    successes: list["Fault"] = field(default_factory=list)
    all_outcomes: list = field(default_factory=list)
    # Execution metadata (backend, checkpoint interval, emulated-step
    # counts, ...).  Excluded from equality: the same campaign run on
    # different backends must compare bit-identical.
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def vulnerable(self) -> bool:
        return bool(self.successes)

    def vulnerable_points(self) -> list[VulnerablePoint]:
        """Successful faults grouped by static instruction address."""
        by_address: dict[int, VulnerablePoint] = {}
        for fault in self.successes:
            point = by_address.get(fault.address)
            if point is None:
                point = VulnerablePoint(fault.address, fault.mnemonic)
                by_address[fault.address] = point
            point.faults.append(fault)
        return sorted(by_address.values(), key=lambda p: p.address)

    def vulnerable_addresses(self) -> list[int]:
        return [point.address for point in self.vulnerable_points()]

    def summary(self) -> str:
        lines = [
            f"fault campaign: target={self.target} model={self.model}",
            f"  trace length       : {self.trace_length}",
            f"  faults injected    : {self.total_faults}",
        ]
        for outcome in ("success", "crash", "ignored"):
            lines.append(f"  {outcome:<19}: {self.outcomes.get(outcome, 0)}")
        points = self.vulnerable_points()
        lines.append(f"  vulnerable points  : {len(points)}")
        for point in points:
            details = ", ".join(f.describe() for f in point.faults[:4])
            more = "" if point.count <= 4 else f", +{point.count - 4} more"
            lines.append(
                f"    {point.address:#x} {point.mnemonic:<8} "
                f"{point.count:>3} fault(s): {details}{more}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Lossless, JSON-safe serialization (see :meth:`from_dict`)."""
        return {
            "target": self.target,
            "model": self.model,
            "trace_length": self.trace_length,
            "total_faults": self.total_faults,
            "outcomes": dict(self.outcomes),
            "successes": [fault.to_dict() for fault in self.successes],
            "all_outcomes": [
                {"fault": o.fault.to_dict(), "outcome": o.outcome}
                for o in self.all_outcomes
            ],
            "meta": dict(self.meta),
            "vulnerable_points": [
                {
                    "address": point.address,
                    "mnemonic": point.mnemonic,
                    "fault_count": point.count,
                }
                for point in self.vulnerable_points()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignReport":
        """Rebuild a report serialized by :meth:`to_dict`.

        Round-trips losslessly (``from_dict(r.to_dict()) == r``), which
        is what lets reports cross process boundaries and land in
        benchmark artifacts as plain JSON.
        """
        return cls(
            target=payload["target"],
            model=payload["model"],
            trace_length=payload["trace_length"],
            total_faults=payload["total_faults"],
            outcomes=Counter(payload.get("outcomes", {})),
            successes=[
                Fault.from_dict(f) for f in payload.get("successes", [])
            ],
            all_outcomes=[
                FaultOutcome(Fault.from_dict(o["fault"]), o["outcome"])
                for o in payload.get("all_outcomes", [])
            ],
            meta=dict(payload.get("meta", {})),
        )


class CampaignReportBuilder:
    """Streaming, enumeration-order assembly of a
    :class:`CampaignReport`.

    The engine calls :meth:`add` once per executed fault point, in
    enumeration order (backends guarantee that ordering through their
    reorder windows), and :meth:`finish` seals the report.  Folding a
    row touches only counters and the success list, so assembly is
    O(successes) resident instead of O(population).

    ``fault_for`` lazily materializes the :class:`Fault` record for a
    point; it is only invoked for successes (or for every row when
    ``collect_outcomes`` is set), keeping the common crash/ignored
    path allocation-free.
    """

    def __init__(
        self,
        target: str,
        model: str,
        trace_length: int,
        fault_for: Callable[[object], Fault],
        collect_outcomes: bool = False,
    ):
        self._report: Optional[CampaignReport] = CampaignReport(
            target=target,
            model=model,
            trace_length=trace_length,
            total_faults=0,
        )
        self._fault_for = fault_for
        self._collect = collect_outcomes
        self._last_order: Optional[int] = None

    def add(self, point, outcome: str) -> None:
        """Fold one executed fault point into the report."""
        report = self._report
        if report is None:
            raise ValueError("builder already finished")
        order = point.order
        if self._last_order is not None and order < self._last_order:
            raise ValueError(
                "outcome stream out of enumeration order: "
                f"{order} after {self._last_order}"
            )
        self._last_order = order
        report.total_faults += 1
        report.outcomes[outcome] += 1
        fault = None
        if outcome == SUCCESS or self._collect:
            fault = self._fault_for(point)
        if outcome == SUCCESS:
            report.successes.append(fault)
        if self._collect:
            report.all_outcomes.append(FaultOutcome(fault, outcome))

    def finish(self, meta: Optional[dict] = None) -> CampaignReport:
        """Seal and return the assembled report."""
        report = self._report
        if report is None:
            raise ValueError("builder already finished")
        if meta is not None:
            report.meta = dict(meta)
        self._report = None
        return report


# ---------------------------------------------------------------------------
# differential countermeasure evaluation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DiffPoint:
    """One classified point of a before/after campaign comparison.

    Baseline vulnerable points are classified ``eliminated``,
    ``surviving`` or ``unmapped`` (``original_address`` is the
    baseline point's address); post-hardening points with no baseline
    counterpart are ``introduced`` (``original_address`` is the
    pre-rewrite address they attribute to, if any).
    ``rewritten_addresses`` lists the post-hardening vulnerable
    addresses that map to this point (empty for eliminated/unmapped).
    """

    model: str
    status: str
    original_address: Optional[int]
    rewritten_addresses: tuple = ()
    mnemonic: str = ""
    baseline_faults: int = 0
    hardened_faults: int = 0
    section: str = "?"

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "status": self.status,
            "original_address": self.original_address,
            "rewritten_addresses": list(self.rewritten_addresses),
            "mnemonic": self.mnemonic,
            "baseline_faults": self.baseline_faults,
            "hardened_faults": self.hardened_faults,
            "section": self.section,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DiffPoint":
        return cls(
            model=payload["model"],
            status=payload["status"],
            original_address=payload.get("original_address"),
            rewritten_addresses=tuple(
                payload.get("rewritten_addresses", [])),
            mnemonic=payload.get("mnemonic", ""),
            baseline_faults=payload.get("baseline_faults", 0),
            hardened_faults=payload.get("hardened_faults", 0),
            section=payload.get("section", "?"),
        )


@dataclass
class DifferentialReport:
    """Point-level join of a baseline campaign against a post-hardening
    campaign through a :class:`~repro.provenance.ProvenanceMap`.

    Invariant (per model): every baseline vulnerable point appears as
    exactly one ``eliminated``/``surviving``/``unmapped`` point, so
    those three classes sum to the baseline vulnerable-point count;
    ``introduced`` points are additional post-hardening points with no
    vulnerable baseline counterpart.
    """

    target: str
    models: list[str] = field(default_factory=list)
    points: list["DiffPoint"] = field(default_factory=list)
    meta: dict = field(default_factory=dict, compare=False)

    # -- rollups -----------------------------------------------------------

    def counts(self, model: Optional[str] = None,
               section: Optional[str] = None) -> Counter:
        """Status census, optionally restricted to a model/section."""
        census: Counter = Counter({status: 0 for status in DIFF_STATUSES})
        for point in self.points:
            if model is not None and point.model != model:
                continue
            if section is not None and point.section != section:
                continue
            census[point.status] += 1
        return census

    def by_model(self) -> dict[str, Counter]:
        return {model: self.counts(model=model) for model in self.models}

    def by_section(self) -> dict[str, Counter]:
        sections = sorted({point.section for point in self.points})
        return {section: self.counts(section=section)
                for section in sections}

    def baseline_points(self, model: Optional[str] = None) -> int:
        """Number of baseline vulnerable points covered by the join."""
        census = self.counts(model=model)
        return census[ELIMINATED] + census[SURVIVING] + census[UNMAPPED]

    def eliminated_percent(self, model: Optional[str] = None) -> float:
        baseline = self.baseline_points(model)
        if baseline == 0:
            return 100.0
        return 100.0 * self.counts(model=model)[ELIMINATED] / baseline

    # -- rendering ---------------------------------------------------------

    def table(self) -> str:
        """Human-readable before/after comparison."""
        # local import: reduction imports the campaign vocabulary
        from repro.faulter.reduction import ReductionCertificate

        lines = [
            f"differential evaluation: target={self.target} "
            f"models={','.join(self.models) or '-'}"
        ]
        reduction = self.meta.get("reduction", {})
        for model in self.models:
            census = self.counts(model=model)
            lines.append(
                f"  [{model}] baseline points: "
                f"{self.baseline_points(model)}  "
                f"eliminated={census[ELIMINATED]} "
                f"surviving={census[SURVIVING]} "
                f"introduced={census[INTRODUCED]} "
                f"unmapped={census[UNMAPPED]} "
                f"({self.eliminated_percent(model):.0f}% eliminated)")
            for side in ("baseline", "hardened"):
                cert = reduction.get(model, {}).get(side)
                if cert:
                    summary = ReductionCertificate(cert).summary()
                    lines.append(f"    {side:<10} {summary}")
            for point in self.points:
                if point.model != model:
                    continue
                where = ("-" if point.original_address is None
                         else f"{point.original_address:#x}")
                moved = ",".join(f"{a:#x}"
                                 for a in point.rewritten_addresses)
                detail = f" -> {moved}" if moved else ""
                lines.append(
                    f"    {point.status:<10} {where:>10} "
                    f"{point.mnemonic:<8} [{point.section}] "
                    f"base={point.baseline_faults} "
                    f"hard={point.hardened_faults}{detail}")
        by_section = self.by_section()
        if by_section:
            lines.append("  by section:")
            for section, census in by_section.items():
                rendered = " ".join(f"{status}={census[status]}"
                                    for status in DIFF_STATUSES)
                lines.append(f"    {section:<12} {rendered}")
        return "\n".join(lines)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless, JSON-safe serialization (see :meth:`from_dict`)."""
        return {
            "target": self.target,
            "models": list(self.models),
            "points": [point.to_dict() for point in self.points],
            "rollup_by_model": {
                model: dict(census)
                for model, census in self.by_model().items()
            },
            "rollup_by_section": {
                section: dict(census)
                for section, census in self.by_section().items()
            },
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DifferentialReport":
        """Rebuild a report serialized by :meth:`to_dict`.

        Round-trips losslessly (``from_dict(r.to_dict()) == r``); the
        rollups are derived data and are recomputed, not read back.
        """
        return cls(
            target=payload["target"],
            models=list(payload.get("models", [])),
            points=[DiffPoint.from_dict(p)
                    for p in payload.get("points", [])],
            meta=dict(payload.get("meta", {})),
        )


def differential_report(
    baseline: dict[str, CampaignReport],
    hardened: dict[str, CampaignReport],
    provenance: ProvenanceMap,
    target: str = "target",
    section_of_original: Optional[Callable[[int], str]] = None,
    section_of_rewritten: Optional[Callable[[int], str]] = None,
) -> DifferentialReport:
    """Join per-model campaign pairs through a provenance map.

    Models present on only one side are skipped (recorded in
    ``meta["models_skipped"]``).  ``section_of_original`` /
    ``section_of_rewritten`` resolve addresses to section names for the
    per-section rollups (defaulting to ``"?"``).
    """
    def _section(resolver, address):
        if resolver is None or address is None:
            return "?"
        return resolver(address)

    models = [model for model in baseline if model in hardened]
    skipped = sorted((set(baseline) | set(hardened)) - set(models))
    points: list[DiffPoint] = []
    for model in models:
        base_points = {p.address: p
                       for p in baseline[model].vulnerable_points()}
        base_keys = {address: provenance.normalize_original(address)
                     for address in base_points}
        vulnerable_keys = {key for key in base_keys.values()
                           if key is not None}

        # attribute every post-hardening point to its original key
        survivors: dict[int, list[VulnerablePoint]] = {}
        intro_groups: dict[tuple, list[VulnerablePoint]] = {}
        intro_keys: dict[tuple, Optional[int]] = {}
        for point in hardened[model].vulnerable_points():
            key = provenance.to_original(point.address)
            if key is not None and key in vulnerable_keys:
                survivors.setdefault(key, []).append(point)
            else:
                group = (("mapped", key) if key is not None
                         else ("raw", point.address))
                intro_groups.setdefault(group, []).append(point)
                intro_keys[group] = key

        for address in sorted(base_points):
            base_point = base_points[address]
            key = base_keys[address]
            if key is None:
                status, mapped = UNMAPPED, []
            elif key in survivors:
                status, mapped = SURVIVING, survivors[key]
            else:
                status, mapped = ELIMINATED, []
            points.append(DiffPoint(
                model=model,
                status=status,
                original_address=address,
                rewritten_addresses=tuple(
                    sorted(p.address for p in mapped)),
                mnemonic=base_point.mnemonic,
                baseline_faults=base_point.count,
                hardened_faults=sum(p.count for p in mapped),
                section=_section(section_of_original, address),
            ))

        for group in sorted(intro_groups, key=lambda g: g[1]):
            mapped = intro_groups[group]
            key = intro_keys[group]
            section = (_section(section_of_original, key)
                       if key is not None else
                       _section(section_of_rewritten, mapped[0].address))
            points.append(DiffPoint(
                model=model,
                status=INTRODUCED,
                original_address=key,
                rewritten_addresses=tuple(
                    sorted(p.address for p in mapped)),
                mnemonic=mapped[0].mnemonic,
                baseline_faults=0,
                hardened_faults=sum(p.count for p in mapped),
                section=section,
            ))

    meta = {
        "provenance_path": provenance.path,
        "provenance_counts": provenance.counts(),
    }
    if skipped:
        meta["models_skipped"] = skipped
    reduction: dict[str, dict] = {}
    for model in models:
        sides = {}
        for side, report in (("baseline", baseline[model]),
                             ("hardened", hardened[model])):
            cert = report.meta.get("reduction")
            if cert:
                sides[side] = dict(cert)
        if sides:
            reduction[model] = sides
    if reduction:
        meta["reduction"] = reduction
    return DifferentialReport(
        target=target, models=models, points=points, meta=meta)
