"""Vulnerability reports produced by fault campaigns.

This module also owns the campaign *vocabulary* — the three outcome
classes of Section IV-B.1, the :class:`Fault` record, and the outcome
classifier — so the campaign drivers, the engine, and worker processes
can all share it without importing each other.

:class:`CampaignReportBuilder` assembles a report *incrementally*:
the engine folds each ``(point, outcome)`` row into it as execution
streams them in enumeration order, so a campaign never holds more
than its reorder window of pending points in memory.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional

SUCCESS = "success"
CRASHED = "crash"
IGNORED = "ignored"


def classify_result(result, grant_marker: bytes) -> str:
    """Map a faulted run onto the paper's three outcome classes.

    ``result`` is a :class:`repro.emu.machine.RunResult` (duck-typed:
    only ``stdout`` and ``crashed`` are consulted).
    """
    if grant_marker in result.stdout:
        return SUCCESS
    if result.crashed:
        return CRASHED
    return IGNORED


@dataclass(frozen=True)
class Fault:
    """One concrete injected fault."""

    model: str
    trace_index: int
    address: int
    mnemonic: str
    detail: tuple = ()

    def describe(self) -> str:
        base = f"t={self.trace_index}"
        if self.detail:
            base += f" {self.detail}"
        return f"{self.model}[{base}]"

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "trace_index": self.trace_index,
            "address": self.address,
            "mnemonic": self.mnemonic,
            "detail": _detail_to_json(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Fault":
        return cls(
            model=payload["model"],
            trace_index=payload["trace_index"],
            address=payload["address"],
            mnemonic=payload["mnemonic"],
            detail=_detail_from_json(payload.get("detail", [])),
        )


@dataclass(frozen=True)
class FaultOutcome:
    fault: Fault
    outcome: str


def _detail_to_json(detail):
    """Fault details are nested tuples of ints; JSON has only lists."""
    if isinstance(detail, tuple):
        return [_detail_to_json(item) for item in detail]
    return detail


def _detail_from_json(detail):
    if isinstance(detail, list):
        return tuple(_detail_from_json(item) for item in detail)
    return detail


@dataclass
class VulnerablePoint:
    """A static instruction with at least one successful fault."""

    address: int
    mnemonic: str
    faults: list["Fault"] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.faults)


@dataclass
class CampaignReport:
    """Outcome of one faulter campaign (one binary x one fault model)."""

    target: str
    model: str
    trace_length: int
    total_faults: int
    outcomes: Counter = field(default_factory=Counter)
    successes: list["Fault"] = field(default_factory=list)
    all_outcomes: list = field(default_factory=list)
    # Execution metadata (backend, checkpoint interval, emulated-step
    # counts, ...).  Excluded from equality: the same campaign run on
    # different backends must compare bit-identical.
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def vulnerable(self) -> bool:
        return bool(self.successes)

    def vulnerable_points(self) -> list[VulnerablePoint]:
        """Successful faults grouped by static instruction address."""
        by_address: dict[int, VulnerablePoint] = {}
        for fault in self.successes:
            point = by_address.get(fault.address)
            if point is None:
                point = VulnerablePoint(fault.address, fault.mnemonic)
                by_address[fault.address] = point
            point.faults.append(fault)
        return sorted(by_address.values(), key=lambda p: p.address)

    def vulnerable_addresses(self) -> list[int]:
        return [point.address for point in self.vulnerable_points()]

    def summary(self) -> str:
        lines = [
            f"fault campaign: target={self.target} model={self.model}",
            f"  trace length       : {self.trace_length}",
            f"  faults injected    : {self.total_faults}",
        ]
        for outcome in ("success", "crash", "ignored"):
            lines.append(f"  {outcome:<19}: {self.outcomes.get(outcome, 0)}")
        points = self.vulnerable_points()
        lines.append(f"  vulnerable points  : {len(points)}")
        for point in points:
            details = ", ".join(f.describe() for f in point.faults[:4])
            more = "" if point.count <= 4 else f", +{point.count - 4} more"
            lines.append(
                f"    {point.address:#x} {point.mnemonic:<8} "
                f"{point.count:>3} fault(s): {details}{more}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Lossless, JSON-safe serialization (see :meth:`from_dict`)."""
        return {
            "target": self.target,
            "model": self.model,
            "trace_length": self.trace_length,
            "total_faults": self.total_faults,
            "outcomes": dict(self.outcomes),
            "successes": [fault.to_dict() for fault in self.successes],
            "all_outcomes": [
                {"fault": o.fault.to_dict(), "outcome": o.outcome}
                for o in self.all_outcomes
            ],
            "meta": dict(self.meta),
            "vulnerable_points": [
                {
                    "address": point.address,
                    "mnemonic": point.mnemonic,
                    "fault_count": point.count,
                }
                for point in self.vulnerable_points()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignReport":
        """Rebuild a report serialized by :meth:`to_dict`.

        Round-trips losslessly (``from_dict(r.to_dict()) == r``), which
        is what lets reports cross process boundaries and land in
        benchmark artifacts as plain JSON.
        """
        return cls(
            target=payload["target"],
            model=payload["model"],
            trace_length=payload["trace_length"],
            total_faults=payload["total_faults"],
            outcomes=Counter(payload.get("outcomes", {})),
            successes=[
                Fault.from_dict(f) for f in payload.get("successes", [])
            ],
            all_outcomes=[
                FaultOutcome(Fault.from_dict(o["fault"]), o["outcome"])
                for o in payload.get("all_outcomes", [])
            ],
            meta=dict(payload.get("meta", {})),
        )


class CampaignReportBuilder:
    """Streaming, enumeration-order assembly of a
    :class:`CampaignReport`.

    The engine calls :meth:`add` once per executed fault point, in
    enumeration order (backends guarantee that ordering through their
    reorder windows), and :meth:`finish` seals the report.  Folding a
    row touches only counters and the success list, so assembly is
    O(successes) resident instead of O(population).

    ``fault_for`` lazily materializes the :class:`Fault` record for a
    point; it is only invoked for successes (or for every row when
    ``collect_outcomes`` is set), keeping the common crash/ignored
    path allocation-free.
    """

    def __init__(
        self,
        target: str,
        model: str,
        trace_length: int,
        fault_for: Callable[[object], Fault],
        collect_outcomes: bool = False,
    ):
        self._report: Optional[CampaignReport] = CampaignReport(
            target=target,
            model=model,
            trace_length=trace_length,
            total_faults=0,
        )
        self._fault_for = fault_for
        self._collect = collect_outcomes
        self._last_order: Optional[int] = None

    def add(self, point, outcome: str) -> None:
        """Fold one executed fault point into the report."""
        report = self._report
        if report is None:
            raise ValueError("builder already finished")
        order = point.order
        if self._last_order is not None and order < self._last_order:
            raise ValueError(
                "outcome stream out of enumeration order: "
                f"{order} after {self._last_order}"
            )
        self._last_order = order
        report.total_faults += 1
        report.outcomes[outcome] += 1
        fault = None
        if outcome == SUCCESS or self._collect:
            fault = self._fault_for(point)
        if outcome == SUCCESS:
            report.successes.append(fault)
        if self._collect:
            report.all_outcomes.append(FaultOutcome(fault, outcome))

    def finish(self, meta: Optional[dict] = None) -> CampaignReport:
        """Seal and return the assembled report."""
        report = self._report
        if report is None:
            raise ValueError("builder already finished")
        if meta is not None:
            report.meta = dict(meta)
        self._report = None
        return report
