"""Vulnerability reports produced by fault campaigns."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.faulter.campaign import Fault


@dataclass
class VulnerablePoint:
    """A static instruction with at least one successful fault."""

    address: int
    mnemonic: str
    faults: list["Fault"] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.faults)


@dataclass
class CampaignReport:
    """Outcome of one faulter campaign (one binary x one fault model)."""

    target: str
    model: str
    trace_length: int
    total_faults: int
    outcomes: Counter = field(default_factory=Counter)
    successes: list["Fault"] = field(default_factory=list)
    all_outcomes: list = field(default_factory=list)

    @property
    def vulnerable(self) -> bool:
        return bool(self.successes)

    def vulnerable_points(self) -> list[VulnerablePoint]:
        """Successful faults grouped by static instruction address."""
        by_address: dict[int, VulnerablePoint] = {}
        for fault in self.successes:
            point = by_address.get(fault.address)
            if point is None:
                point = VulnerablePoint(fault.address, fault.mnemonic)
                by_address[fault.address] = point
            point.faults.append(fault)
        return sorted(by_address.values(), key=lambda p: p.address)

    def vulnerable_addresses(self) -> list[int]:
        return [point.address for point in self.vulnerable_points()]

    def summary(self) -> str:
        lines = [
            f"fault campaign: target={self.target} model={self.model}",
            f"  trace length       : {self.trace_length}",
            f"  faults injected    : {self.total_faults}",
        ]
        for outcome in ("success", "crash", "ignored"):
            lines.append(f"  {outcome:<19}: {self.outcomes.get(outcome, 0)}")
        points = self.vulnerable_points()
        lines.append(f"  vulnerable points  : {len(points)}")
        for point in points:
            details = ", ".join(f.describe() for f in point.faults[:4])
            more = "" if point.count <= 4 else f", +{point.count - 4} more"
            lines.append(
                f"    {point.address:#x} {point.mnemonic:<8} "
                f"{point.count:>3} fault(s): {details}{more}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "model": self.model,
            "trace_length": self.trace_length,
            "total_faults": self.total_faults,
            "outcomes": dict(self.outcomes),
            "vulnerable_points": [
                {
                    "address": point.address,
                    "mnemonic": point.mnemonic,
                    "fault_count": point.count,
                }
                for point in self.vulnerable_points()
            ],
        }
