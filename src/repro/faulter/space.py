"""Fault spaces: declarative enumerators over (trace offset x variant).

A :class:`FaultSpace` is a pure-data *spec* of which fault points a
campaign visits — it holds no machine state, so it pickles cleanly
across process boundaries.  Binding a space to one concrete bad-input
trace happens through a :class:`SpaceContext`, which lazily decodes
instructions and memoizes the per-offset fault variants.  Spaces are
model-agnostic: variants are whatever the bound fault model expresses
at an offset (encoding or state family alike), including zero — the
cumulative-count machinery that powers flat-index location and
partition direct-jump simply skips variant-less offsets.

Enumerators:

* :class:`ExhaustiveSpace` — every variant at every trace offset (the
  paper's default single-fault campaign),
* :class:`WindowedSpace` — exhaustive over a subset of trace offsets
  (the long-trace escape hatch),
* :class:`SampledSpace` — uniform over the flat (offset x variant)
  population, seeded (statistical FI, Leveugle et al.),
* :class:`KFaultProductSpace` — sampled k-tuples of distinct offsets
  per run (the multi-fault extension; k=2 is the pair campaign),
* :class:`ProductSpace` — the *exhaustive* k-fault product over a
  bounded offset window (what equivalence reduction is measured
  against),
* :class:`ExplicitSpace` — a literal point list (legacy escape hatch),
* :class:`SpacePartition` — a contiguous enumeration-order window of
  any base space, re-enumerated locally (what a partition ships to a
  worker process: a (space spec, window) pair, never a point dump).

Each point carries its enumeration ``order`` so a backend may execute
points in whatever order is fastest (e.g. sorted by trace offset for
checkpoint reuse) while the report is still assembled in enumeration
order — making reports bit-identical across backends.

Every space is *streamable*: ``enumerate`` yields lazily,
``enumerate_window`` yields only the ``[start, stop)`` slice of the
enumeration sequence (re-enumerating locally, jumping directly where
the space's structure allows it), and ``count`` sizes the space
without materializing points.  ``partition`` composes these into
declarative, picklable sub-specs.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

# Cap policies: how a faulted run's step budget is accounted.
#   SUFFIX_CAP — the continuation after the fault point gets the full
#       cap (the exhaustive master-walk convention),
#   TOTAL_CAP  — prefix steps count against the cap, as if the run had
#       started from step 0 (the fresh-run convention of the
#       statistical and multi-fault drivers).
SUFFIX_CAP = "suffix"
TOTAL_CAP = "total"


@dataclass(frozen=True)
class FaultPoint:
    """One campaign run: ``k`` faults at dynamic trace offsets.

    ``steps`` are strictly increasing dynamic instruction indices along
    the bad-input trace; ``details[i]`` is the fault-model parameter
    applied at ``steps[i]``.
    """

    order: int
    steps: tuple[int, ...]
    details: tuple[tuple, ...]

    @property
    def first_step(self) -> int:
        return self.steps[0]

    @property
    def arity(self) -> int:
        return len(self.steps)


class SpaceContext:
    """Binds fault-space specs to one concrete bad-input trace."""

    def __init__(
        self,
        model,
        trace: Sequence[int],
        variants_at: Callable[[int], Sequence[tuple]],
        mnemonic_at: Callable[[int], str] | None = None,
        facts_factory: Callable[[], object] | None = None,
    ):
        self.model = model
        self.trace = list(trace)
        self._variants_at = variants_at
        self._mnemonic_at = mnemonic_at
        self._facts_factory = facts_factory
        self._facts: object | None = None
        self._variant_cache: dict[int, list[tuple]] = {}
        self._cumulative: list[int] | None = None

    @property
    def facts(self):
        """Lazily-built :class:`~repro.analysis.traceflow.TraceFacts`
        over this trace (``None`` when the binding supplies none)."""
        if self._facts is None and self._facts_factory is not None:
            self._facts = self._facts_factory()
        return self._facts

    def variants(self, step: int) -> list[tuple]:
        """Memoized fault variants injectable at trace offset ``step``."""
        cached = self._variant_cache.get(step)
        if cached is None:
            cached = list(self._variants_at(step))
            self._variant_cache[step] = cached
        return cached

    def mnemonic(self, step: int) -> str:
        if self._mnemonic_at is None:
            return "?"
        return self._mnemonic_at(step)

    def _cumulative_counts(self) -> list[int]:
        if self._cumulative is None:
            counts, total = [], 0
            for step in range(len(self.trace)):
                total += len(self.variants(step))
                counts.append(total)
            self._cumulative = counts
        return self._cumulative

    def population(self) -> int:
        """Total number of single-fault points (offset x variant)."""
        cumulative = self._cumulative_counts()
        return cumulative[-1] if cumulative else 0

    def locate(self, flat_index: int) -> tuple[int, int]:
        """Map a flat population index to (trace offset, variant index)."""
        cumulative = self._cumulative_counts()
        step = bisect.bisect_right(cumulative, flat_index)
        before = cumulative[step - 1] if step else 0
        return step, flat_index - before


class FaultSpace:
    """Base class: a declarative, picklable fault-space spec."""

    cap_policy = SUFFIX_CAP

    def enumerate(self, ctx: SpaceContext) -> Iterator[FaultPoint]:
        raise NotImplementedError

    def count(self, ctx: SpaceContext) -> int:
        """Number of points, without materializing them.

        The default streams the enumeration and counts; spaces whose
        size is closed-form override it.
        """
        return sum(1 for _ in self.enumerate(ctx))

    def enumerate_window(
        self, ctx: SpaceContext, start: int, stop: int
    ) -> Iterator[FaultPoint]:
        """Yield the ``[start, stop)`` slice of the enumeration.

        The default filters the full (lazy) enumeration; spaces whose
        structure supports random access override it to jump directly.
        Memory stays O(1): nothing outside the slice is retained.
        """
        return itertools.islice(self.enumerate(ctx), start, stop)

    def partition(
        self, ctx: SpaceContext, parts: int
    ) -> list["SpacePartition"]:
        """Split into up to ``parts`` declarative sub-specs.

        Each partition is a contiguous window of the enumeration order
        — which both balances variant-heavy offsets across workers and
        keeps each partition's report fragment in enumeration order —
        described as a ``(base space, start, stop)`` triple that
        re-enumerates locally.  Pickled size is O(1) in the number of
        points, so shipping a partition to a worker process costs the
        same for a hundred points as for a million.
        """
        total = self.count(ctx)
        if not total:
            return []
        parts = max(1, min(parts, total))
        size = (total + parts - 1) // parts
        return [
            SpacePartition(self, start, min(start + size, total))
            for start in range(0, total, size)
        ]

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class ExhaustiveSpace(FaultSpace):
    """Every fault variant at every trace offset."""

    def enumerate(self, ctx: SpaceContext) -> Iterator[FaultPoint]:
        order = 0
        for step in range(len(ctx.trace)):
            for detail in ctx.variants(step):
                yield FaultPoint(order, (step,), (detail,))
                order += 1

    def count(self, ctx: SpaceContext) -> int:
        return ctx.population()

    def enumerate_window(
        self, ctx: SpaceContext, start: int, stop: int
    ) -> Iterator[FaultPoint]:
        # enumeration order == flat population index, so the window
        # start is located directly instead of skipping toward it
        stop = min(stop, ctx.population())
        if start >= stop:
            return
        step, variant_index = ctx.locate(start)
        order = start
        while order < stop:
            variants = ctx.variants(step)
            while variant_index < len(variants) and order < stop:
                yield FaultPoint(order, (step,), (variants[variant_index],))
                order += 1
                variant_index += 1
            variant_index = 0
            step += 1

    def describe(self) -> str:
        return "exhaustive"


@dataclass(frozen=True)
class WindowedSpace(FaultSpace):
    """Exhaustive over a subset of trace offsets (ascending)."""

    indices: tuple[int, ...]

    def _valid(self, ctx: SpaceContext) -> list[int]:
        return sorted({i for i in self.indices if 0 <= i < len(ctx.trace)})

    def enumerate(self, ctx: SpaceContext) -> Iterator[FaultPoint]:
        order = 0
        for step in self._valid(ctx):
            for detail in ctx.variants(step):
                yield FaultPoint(order, (step,), (detail,))
                order += 1

    def count(self, ctx: SpaceContext) -> int:
        return sum(len(ctx.variants(step)) for step in self._valid(ctx))

    def describe(self) -> str:
        return f"windowed[{len(self.indices)}]"


@dataclass(frozen=True)
class SampledSpace(FaultSpace):
    """Uniform sample (without replacement) of the flat population.

    Reproduces the statistical-FI sampling discipline: a seeded
    ``random.sample`` over ``range(population)``, each flat index
    mapped back to its (offset, variant) pair.  The seeded draw makes
    the space splittable: any process can re-draw the same sample
    locally and slice out its own window.
    """

    samples: int
    seed: int = 0
    cap_policy = TOTAL_CAP

    def _chosen(self, ctx: SpaceContext) -> list[int]:
        population = ctx.population()
        count = min(self.samples, population)
        rng = random.Random(self.seed)
        return rng.sample(range(population), count) if count else []

    def enumerate(self, ctx: SpaceContext) -> Iterator[FaultPoint]:
        for order, flat_index in enumerate(self._chosen(ctx)):
            step, variant_index = ctx.locate(flat_index)
            detail = ctx.variants(step)[variant_index]
            yield FaultPoint(order, (step,), (detail,))

    def count(self, ctx: SpaceContext) -> int:
        return min(self.samples, ctx.population())

    def enumerate_window(
        self, ctx: SpaceContext, start: int, stop: int
    ) -> Iterator[FaultPoint]:
        chosen = self._chosen(ctx)
        for order in range(max(start, 0), min(stop, len(chosen))):
            step, variant_index = ctx.locate(chosen[order])
            detail = ctx.variants(step)[variant_index]
            yield FaultPoint(order, (step,), (detail,))

    def describe(self) -> str:
        return f"sampled[n={self.samples}, seed={self.seed}]"


@dataclass(frozen=True)
class KFaultProductSpace(FaultSpace):
    """Sampled k-tuples of faults at distinct trace offsets.

    Exhaustive k-fault products are O(population^k); following the
    multi-fault methodology we sample deterministic random tuples.
    Draw k offsets (rejecting tuples with repeats), sort them, then
    draw one variant per offset — for k=2 this is exactly the legacy
    pair-campaign RNG sequence, so reports stay bit-identical.

    Rejection sampling makes the point count data-dependent, so
    ``count`` and ``enumerate_window`` replay the RNG sequence from
    the seed — still O(1) memory, which is what partitioning needs.
    """

    k: int = 2
    samples: int = 200
    seed: int = 0
    cap_policy = TOTAL_CAP

    def __post_init__(self):
        if self.k < 1:
            raise ValueError(f"k_faults must be >= 1, got {self.k}")

    def enumerate(self, ctx: SpaceContext) -> Iterator[FaultPoint]:
        trace_length = len(ctx.trace)
        if trace_length < self.k:
            return
        rng = random.Random(self.seed)
        order = 0
        for _ in range(self.samples):
            draws = [rng.randrange(trace_length) for _ in range(self.k)]
            if len(set(draws)) < self.k:
                continue
            draws.sort()
            if any(not ctx.variants(step) for step in draws):
                # an offset with no injectable faults (e.g. the
                # undecodable tail of a crashing bad-input run);
                # reject before consuming any variant-choice RNG
                continue
            details = tuple(rng.choice(ctx.variants(step)) for step in draws)
            yield FaultPoint(order, tuple(draws), details)
            order += 1

    def describe(self) -> str:
        return f"k-fault[k={self.k}, n={self.samples}, seed={self.seed}]"


@dataclass(frozen=True)
class ProductSpace(FaultSpace):
    """Exhaustive k-fault combinations over a window of trace offsets.

    Every size-``k`` combination of the (valid) window offsets, with
    every variant combination per offset tuple — the full product the
    reduction layer's domination pruning is measured against.  The
    count is O(|window| choose k) times the variant fan-out, so this
    space is only practical over a bounded window; like the sampled
    k-fault space it uses the total-cap budget convention, which is
    what makes single-fault survivor domination exact.
    """

    k: int = 2
    indices: tuple[int, ...] = ()
    cap_policy = TOTAL_CAP

    def __post_init__(self):
        if self.k < 1:
            raise ValueError(f"k_faults must be >= 1, got {self.k}")

    def _valid(self, ctx: SpaceContext) -> list[int]:
        return sorted(
            {
                step
                for step in self.indices
                if 0 <= step < len(ctx.trace) and ctx.variants(step)
            }
        )

    def enumerate(self, ctx: SpaceContext) -> Iterator[FaultPoint]:
        valid = self._valid(ctx)
        order = 0
        for combo in itertools.combinations(valid, self.k):
            pools = [ctx.variants(step) for step in combo]
            for details in itertools.product(*pools):
                yield FaultPoint(order, combo, details)
                order += 1

    def count(self, ctx: SpaceContext) -> int:
        valid = self._valid(ctx)
        total = 0
        for combo in itertools.combinations(valid, self.k):
            product = 1
            for step in combo:
                product *= len(ctx.variants(step))
            total += product
        return total

    def describe(self) -> str:
        return f"product[k={self.k}, w={len(self.indices)}]"


@dataclass(frozen=True)
class ExplicitSpace(FaultSpace):
    """A literal list of fault points (legacy escape hatch).

    Worker partitions no longer use this — they ship a
    :class:`SpacePartition` instead — but explicit lists remain useful
    for replaying a known point set (e.g. re-checking a prior report's
    successes).  Enumeration yields the points sorted by their
    ``order`` field: reports were always assembled in that order, and
    ascending enumeration is what lets the streaming fold accept a
    hand-built list regardless of how it was arranged.
    """

    points: tuple[FaultPoint, ...]
    cap_policy: str = SUFFIX_CAP

    def enumerate(self, ctx: SpaceContext) -> Iterator[FaultPoint]:
        yield from sorted(self.points, key=lambda point: point.order)

    def count(self, ctx: SpaceContext) -> int:
        return len(self.points)

    def describe(self) -> str:
        return f"explicit[{len(self.points)}]"


@dataclass(frozen=True)
class SpacePartition(FaultSpace):
    """A contiguous enumeration-order window of a base space.

    The declarative form of one worker's share: pickling it ships the
    base space spec plus two integers, and the worker re-enumerates
    its ``[start, stop)`` slice locally against its own context —
    inter-process traffic is O(1) per worker instead of O(points).
    """

    base: FaultSpace
    start: int
    stop: int

    @property
    def cap_policy(self) -> str:  # type: ignore[override]
        return self.base.cap_policy

    def enumerate(self, ctx: SpaceContext) -> Iterator[FaultPoint]:
        return self.base.enumerate_window(ctx, self.start, self.stop)

    def count(self, ctx: SpaceContext) -> int:
        return max(0, self.stop - self.start)

    def partition(
        self, ctx: SpaceContext, parts: int
    ) -> list["SpacePartition"]:
        total = self.count(ctx)
        if not total:
            return []
        parts = max(1, min(parts, total))
        size = (total + parts - 1) // parts
        return [
            SpacePartition(
                self.base,
                self.start + offset,
                min(self.start + offset + size, self.stop),
            )
            for offset in range(0, total, size)
        ]

    def describe(self) -> str:
        return f"{self.base.describe()}[{self.start}:{self.stop}]"
