"""Fault-space equivalence reduction (dead points, classes, domination).

A campaign over ``N`` fault points pays one emulated run per point,
but most points provably cannot change what the oracle observes: a
``reg-bitflip`` into a register that is overwritten before any read, a
``skip`` of an instruction whose definitions are all dead, an encoding
flip that no longer decodes.  This module prunes those points *before*
execution, using the per-step def/use facts of
:mod:`repro.analysis.traceflow`, and emits a
:class:`ReductionCertificate` that maps every elided point back onto
the verdict it shares — so the reduced campaign's report covers the
**full** space, point for point, and the certificate is checkable by
re-running with ``--no-reduce``.

Three reductions, mirroring the multi-fault methodology (Boespflug et
al.) and ARMORY's fault-model reductions:

* **dead points** — a variant with a *dead* proof is bit-identical to
  the unfaulted continuation, so it inherits the bad baseline's
  verdict without running; a *crash* proof (undecodable mutated
  encoding) inherits ``CRASHED`` under oracles that classify crashes
  deterministically.
* **equivalence classes** — variants with identical live-state effect
  (e.g. two ``flag-stuck`` forces with no consumer between them) share
  one representative run.  Only total-cap spaces merge: suffix-cap
  budgets differ per point, so class members are not run-identical.
* **domination** (k-fault tuples) — a tuple whose leading faults are
  dead *and settled* before the first live fault diverges collapses
  onto that fault's single-fault outcome; the survivor outcomes come
  from a shared probe pass.  A tuple of all-dead faults collapses onto
  the baseline outcome outright.

The reduced spaces are first-class
:class:`~repro.faulter.space.FaultSpace` specs — picklable,
partitionable, streamable through both backends unchanged — because
every proof is a deterministic function of (image, bad input): worker
processes re-derive identical facts and re-enumerate identical
survivor sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.emu.cpu import ExitProgram, Halt
from repro.emu.jit import TraceCompiler
from repro.emu.machine import MAX_STEPS, Machine
from repro.errors import DecodingError, EmulationError
from repro.faulter.oracle import ExitCodeOracle, MarkerOracle
from repro.faulter.report import CRASHED, _detail_to_json
from repro.faulter.space import (
    TOTAL_CAP,
    ExhaustiveSpace,
    FaultPoint,
    FaultSpace,
    KFaultProductSpace,
    ProductSpace,
    SampledSpace,
    SpaceContext,
    WindowedSpace,
)

# Certificate example lists are capped so report.meta stays small even
# for million-point spaces; the *counts* are always exact.
EXAMPLE_CAP = 32

# A tuple component is probed only when it leads >= this many tuples:
# one probe costs about one campaign run, so probing a single-use
# component cannot win.
MIN_PROBE_USES = 2

_SINGLE_SPACES = (ExhaustiveSpace, WindowedSpace, SampledSpace)
_TUPLE_SPACES = (KFaultProductSpace, ProductSpace)


def _prune(ctx: SpaceContext, step: int, detail: tuple):
    """Memoized per-variant proof from the model's reduction hook."""
    facts = ctx.facts
    key = (step, detail)
    cached = facts.prune_cache.get(key, _MISSING)
    if cached is not _MISSING:
        return cached
    verdict = ctx.model.prune_variant(step, detail, facts)
    facts.prune_cache[key] = verdict
    return verdict


def _class_key(ctx: SpaceContext, step: int, detail: tuple):
    """Memoized equivalence-class key from the model's hook."""
    facts = ctx.facts
    key = (step, detail)
    cached = facts.class_cache.get(key, _MISSING)
    if cached is not _MISSING:
        return cached
    value = ctx.model.variant_class(step, detail, facts)
    facts.class_cache[key] = value
    return value


_MISSING = object()


@dataclass(frozen=True)
class ReducedSpace(FaultSpace):
    """The survivor subset of a single-fault base space.

    Enumerates the base space, drops every point with a dead proof
    (and, under crash-deterministic oracles, every guaranteed-crash
    point), keeps one representative per equivalence class when
    ``merge`` is set, and renumbers the survivors ``0..R-1`` so the
    engine's streaming/partitioning machinery applies unchanged.
    """

    base: FaultSpace
    allow_crash: bool = True
    merge: bool = False

    @property
    def cap_policy(self) -> str:  # type: ignore[override]
        return self.base.cap_policy

    def enumerate(self, ctx: SpaceContext) -> Iterator[FaultPoint]:
        order = 0
        seen: set = set()
        for point in self.base.enumerate(ctx):
            step = point.steps[0]
            detail = point.details[0]
            verdict = _prune(ctx, step, detail)
            if verdict is not None and (
                verdict.kind == "dead"
                or (verdict.kind == "crash" and self.allow_crash)
            ):
                continue
            if self.merge:
                key = _class_key(ctx, step, detail)
                if key is not None:
                    if key in seen:
                        continue
                    seen.add(key)
            yield FaultPoint(order, point.steps, point.details)
            order += 1

    def describe(self) -> str:
        return f"reduced({self.base.describe()})"


def _strip_leading_dead(
    ctx: SpaceContext, point: FaultPoint, allow_crash: bool
):
    """Walk a tuple's components past its provably-dead prefix.

    Returns ``("baseline", None)`` when every component is dead (no
    divergence ever happens, so the run is the bad baseline),
    ``("crash", None)`` for a static crash at the first live
    component, ``("live", index)`` at the first component that
    diverges — or ``None`` when a stripped fault has not settled by
    the divergence point, which voids the proof.
    """
    settled = -1.0
    for index in range(len(point.steps)):
        step = point.steps[index]
        detail = point.details[index]
        verdict = _prune(ctx, step, detail)
        if verdict is not None and verdict.kind == "dead":
            settled = max(settled, verdict.settled)
            continue
        if settled >= step:
            return None
        if (
            verdict is not None
            and verdict.kind == "crash"
            and allow_crash
        ):
            return ("crash", None)
        return ("live", index)
    return ("baseline", None)


def _tuple_disposition(
    ctx: SpaceContext,
    point: FaultPoint,
    began: dict,
    allow_crash: bool,
):
    """Elision decision for one k-fault tuple.

    ``None`` means the tuple must be executed.  Otherwise returns
    ``("baseline", None)``, ``("crash", None)``, or ``("probe", key)``
    — the last only when the first live component has a probed
    single-fault outcome *and* every later component's step is at or
    past the probe run's end, so the extra faults had no substrate.
    """
    stripped = _strip_leading_dead(ctx, point, allow_crash)
    if stripped is None:
        return None
    kind, index = stripped
    if kind != "live":
        return (kind, None)
    key = (point.steps[index], point.details[index])
    ends = began.get(key)
    if ends is None:
        return None
    if all(step >= ends for step in point.steps[index + 1:]):
        return ("probe", key)
    return None


@dataclass(frozen=True)
class ReducedTupleSpace(FaultSpace):
    """The survivor subset of a k-fault product space.

    ``probes`` carries ``((step, detail), resume point)`` pairs for
    the probed first-live components — data only, so the space still
    pickles in O(probes), independent of the point population.
    """

    base: FaultSpace
    probes: tuple = ()
    allow_crash: bool = True

    @property
    def cap_policy(self) -> str:  # type: ignore[override]
        return self.base.cap_policy

    def enumerate(self, ctx: SpaceContext) -> Iterator[FaultPoint]:
        began = dict(self.probes)
        order = 0
        for point in self.base.enumerate(ctx):
            if (
                _tuple_disposition(ctx, point, began, self.allow_crash)
                is not None
            ):
                continue
            yield FaultPoint(order, point.steps, point.details)
            order += 1

    def describe(self) -> str:
        return f"reduced({self.base.describe()})"


class _ProbeStats:
    """Step counters for the probe pass (merged into the campaign's
    :class:`~repro.faulter.engine.ExecutionStats` by the engine)."""

    def __init__(self):
        self.emulated_steps = 0
        self.compiled_steps = 0
        self.divergences = 0
        self.compile_seconds = 0.0


def _advance(machine: Machine) -> bool:
    """One precise master step; ``False`` when the run ended."""
    try:
        instruction = machine.fetch_decode(machine.cpu.rip)
        machine.cpu.execute(instruction)
    except (ExitProgram, Halt, EmulationError, DecodingError):
        return False
    return True


def _run_probes(faulter, model, components, trace_compile: bool):
    """Execute each ``(step, detail)`` as a single fault.

    A master machine walks the trace once (through the compiled tier
    when enabled); each probe snapshots, journals, replays the faulted
    continuation under the total-cap budget and rolls back — exactly
    the master-walk executor's discipline.  Returns
    ``{(step, detail): (outcome, resume point)}`` where the resume
    point is the absolute trace step at which the probe run ended (one
    past its last executed step, for terminated runs).
    """
    results: dict = {}
    stats = _ProbeStats()
    if not components:
        return results, stats
    machine = Machine(faulter.image, stdin=faulter.bad_input)
    compiler = TraceCompiler() if trace_compile else None
    if compiler is not None:
        compiler.attach(machine)
    classify = faulter.classify
    cap = faulter.continuation_cap
    watches = getattr(faulter, "watches", ())
    current = 0
    done = False
    for step, detail in sorted(components, key=lambda c: c[0]):
        while current < step and not done:
            if compiler is not None:
                advanced = compiler.execute(machine, step - current)
                if advanced:
                    stats.emulated_steps += advanced
                    current += advanced
                    continue
            if not _advance(machine):
                done = True
                break
            stats.emulated_steps += 1
            current += 1
        if done and current < step:
            continue  # past the master run's end: no substrate
        plan = {0: model.effect(detail)}
        state = machine.snapshot()
        machine.memory.journal_begin()
        try:
            result = machine.run(
                max_steps=max(1, cap - step),
                fault_plan=plan,
                watches=watches,
            )
        finally:
            machine.memory.journal_rollback()
            machine.restore(state)
        stats.emulated_steps += result.steps
        resumed = step + result.steps
        if result.reason != MAX_STEPS:
            resumed += 1
        results[(step, detail)] = (classify(result), resumed)
    if compiler is not None:
        compiler.drain_into(stats)
    return results, stats


def _json_settled(settled: float):
    if math.isinf(settled):
        return "inf"
    return int(settled)


@dataclass
class ReductionCertificate:
    """The checkable record of one reduced campaign.

    A thin wrapper over a JSON-native payload (it rides in
    ``report.meta["reduction"]`` and must survive
    ``report.to_dict``/``from_dict`` losslessly).  Counts are exact;
    the example lists are capped at :data:`EXAMPLE_CAP` entries.
    """

    payload: dict

    def to_dict(self) -> dict:
        return self.payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ReductionCertificate":
        return cls(dict(payload))

    @property
    def enabled(self) -> bool:
        return bool(self.payload.get("enabled"))

    @property
    def full_points(self) -> int:
        return self.payload.get("full_points", 0)

    @property
    def executed_points(self) -> int:
        return self.payload.get("executed_points", 0)

    @property
    def speedup(self) -> float:
        executed = self.executed_points
        if not executed:
            return float(self.full_points or 1)
        return self.full_points / executed

    def summary(self) -> str:
        if not self.enabled:
            reason = self.payload.get("reason", "?")
            return f"reduction: off ({reason})"
        parts = []
        for label in (
            "dead_points",
            "crash_points",
            "merged_points",
            "dominated_points",
        ):
            count = self.payload.get(label, 0)
            if count:
                parts.append(f"{label.split('_')[0]} {count}")
        probes = self.payload.get("probes", 0)
        if probes:
            parts.append(f"probes {probes}")
        detail = f" ({', '.join(parts)})" if parts else ""
        return (
            f"reduction: {self.full_points} -> "
            f"{self.executed_points} executed, "
            f"{self.speedup:.1f}x{detail}"
        )


class ReductionPlan:
    """One campaign's reduction: the survivor space plus the expansion
    that maps executed outcomes back onto the full space."""

    def __init__(
        self,
        ctx: SpaceContext,
        base: FaultSpace,
        space: FaultSpace,
        baseline_outcome: str,
        allow_crash: bool,
        merge: bool = False,
        probe_outcomes: Optional[dict] = None,
        probe_stats: Optional[_ProbeStats] = None,
    ):
        self.ctx = ctx
        self.base = base
        self.space = space
        self.baseline_outcome = baseline_outcome
        self.allow_crash = allow_crash
        self.merge = merge
        self.probe_outcomes = probe_outcomes or {}
        self.probe_stats = probe_stats or _ProbeStats()
        self._tuple = isinstance(space, ReducedTupleSpace)
        # certificate accumulators (filled by expand)
        self._full = 0
        self._executed = 0
        self._dead = 0
        self._crashed = 0
        self._merged = 0
        self._dominated = 0
        self._dead_reasons: dict[str, int] = {}
        self._dead_examples: list[dict] = []
        self._classes: dict = {}

    # -- expansion -----------------------------------------------------

    def expand(self, outcomes) -> Iterator[tuple[FaultPoint, str]]:
        """Merge the executed survivor outcomes (in enumeration order)
        back into the full base enumeration, yielding every base point
        with its verdict."""
        if self._tuple:
            return self._expand_tuple(outcomes)
        return self._expand_single(outcomes)

    @staticmethod
    def _take(executed, point: FaultPoint):
        reduced, outcome = next(executed)
        if (
            reduced.steps != point.steps
            or reduced.details != point.details
        ):
            raise RuntimeError(
                "reduced enumeration out of sync with its base space: "
                f"expected {point.steps}/{point.details}, executed "
                f"{reduced.steps}/{reduced.details}"
            )
        return outcome

    def _note_dead(self, point: FaultPoint, verdict) -> None:
        self._dead += 1
        self._dead_reasons[verdict.reason] = (
            self._dead_reasons.get(verdict.reason, 0) + 1
        )
        if len(self._dead_examples) < EXAMPLE_CAP:
            self._dead_examples.append(
                {
                    "step": point.steps[0],
                    "detail": _detail_to_json(point.details[0]),
                    "reason": verdict.reason,
                    "settled": _json_settled(verdict.settled),
                }
            )

    def _expand_single(self, outcomes):
        ctx = self.ctx
        executed = iter(outcomes)
        classes = self._classes
        for point in self.base.enumerate(ctx):
            self._full += 1
            step = point.steps[0]
            detail = point.details[0]
            verdict = _prune(ctx, step, detail)
            if verdict is not None and verdict.kind == "dead":
                self._note_dead(point, verdict)
                yield point, self.baseline_outcome
                continue
            if (
                verdict is not None
                and verdict.kind == "crash"
                and self.allow_crash
            ):
                self._crashed += 1
                yield point, CRASHED
                continue
            key = None
            if self.merge:
                key = _class_key(ctx, step, detail)
                if key is not None and key in classes:
                    entry = classes[key]
                    entry["members"] += 1
                    self._merged += 1
                    yield point, entry["outcome"]
                    continue
            outcome = self._take(executed, point)
            if key is not None:
                classes[key] = {
                    "key": repr(key),
                    "representative": {
                        "step": step,
                        "detail": _detail_to_json(detail),
                    },
                    "outcome": outcome,
                    "members": 1,
                }
            self._executed += 1
            yield point, outcome

    def _expand_tuple(self, outcomes):
        ctx = self.ctx
        executed = iter(outcomes)
        began = dict(self.space.probes)
        for point in self.base.enumerate(ctx):
            self._full += 1
            disposition = _tuple_disposition(
                ctx, point, began, self.allow_crash
            )
            if disposition is None:
                self._executed += 1
                yield point, self._take(executed, point)
                continue
            kind, key = disposition
            if kind == "baseline":
                self._dead += 1
                yield point, self.baseline_outcome
            elif kind == "crash":
                self._crashed += 1
                yield point, CRASHED
            else:
                self._dominated += 1
                yield point, self.probe_outcomes[key][0]

    # -- certificate ---------------------------------------------------

    def merge_stats(self, stats) -> None:
        """Fold the probe pass's step counters into the campaign's."""
        stats.emulated_steps += self.probe_stats.emulated_steps
        stats.compiled_steps += self.probe_stats.compiled_steps
        stats.divergences += self.probe_stats.divergences
        stats.compile_seconds += self.probe_stats.compile_seconds

    def certificate(self) -> ReductionCertificate:
        facts = self.ctx.facts
        payload: dict = {
            "enabled": True,
            "space": self.base.describe(),
            "reduced_space": self.space.describe(),
            "cap_policy": self.base.cap_policy,
            "full_points": self._full,
            "executed_points": self._executed,
            "dead_points": self._dead,
            "crash_points": self._crashed,
            "merged_points": self._merged,
            "dominated_points": self._dominated,
            "dead_reasons": dict(sorted(self._dead_reasons.items())),
            "dead_examples": self._dead_examples,
            "baseline_outcome": self.baseline_outcome,
            "analysis_steps": facts.scan_steps if facts else 0,
        }
        if self.merge:
            classes = [
                entry
                for entry in self._classes.values()
                if entry["members"] > 1
            ]
            payload["class_count"] = len(classes)
            payload["classes"] = classes[:EXAMPLE_CAP]
        if self._tuple:
            payload["probes"] = len(self.probe_outcomes)
            payload["probe_steps"] = self.probe_stats.emulated_steps
            payload["probe_points"] = [
                {
                    "step": step,
                    "detail": _detail_to_json(detail),
                    "outcome": outcome,
                    "resumed": resumed,
                }
                for (step, detail), (outcome, resumed) in sorted(
                    self.probe_outcomes.items(),
                    key=lambda item: item[0][0],
                )[:EXAMPLE_CAP]
            ]
        return ReductionCertificate(payload)


def plan_reduction(
    faulter,
    model,
    ctx: SpaceContext,
    space: FaultSpace,
    trace_compile: bool = True,
) -> tuple[Optional[ReductionPlan], Optional[str]]:
    """Build a :class:`ReductionPlan` for one campaign, or explain why
    reduction does not apply: ``(plan, None)`` or ``(None, reason)``.

    Gates, in order: the context must carry trace facts; the bad
    baseline must have terminated (an unterminated baseline makes
    "identical to the unfaulted continuation" cap-relative); the space
    must be a known single-fault or k-fault-tuple enumerator (suffix
    -cap tuples never arise; total-cap is what makes domination
    exact).
    """
    if ctx.facts is None:
        return None, "no-analysis-context"
    baseline = getattr(faulter, "bad_baseline", None)
    if baseline is None:
        return None, "no-baseline"
    if baseline.reason == MAX_STEPS:
        return None, "unterminated-baseline"
    if not isinstance(space, _SINGLE_SPACES + _TUPLE_SPACES):
        return None, f"unsupported-space:{space.describe()}"
    allow_crash = isinstance(
        faulter.oracle, (MarkerOracle, ExitCodeOracle)
    )
    baseline_outcome = faulter.classify(baseline)
    if isinstance(space, _SINGLE_SPACES):
        merge = space.cap_policy == TOTAL_CAP
        reduced = ReducedSpace(
            space, allow_crash=allow_crash, merge=merge
        )
        plan = ReductionPlan(
            ctx,
            space,
            reduced,
            baseline_outcome,
            allow_crash,
            merge=merge,
        )
        return plan, None
    if space.cap_policy != TOTAL_CAP:
        return None, "suffix-cap-tuple-space"
    uses: dict = {}
    for point in space.enumerate(ctx):
        stripped = _strip_leading_dead(ctx, point, allow_crash)
        if stripped is None or stripped[0] != "live":
            continue
        index = stripped[1]
        key = (point.steps[index], point.details[index])
        uses[key] = uses.get(key, 0) + 1
    components = {
        key for key, count in uses.items() if count >= MIN_PROBE_USES
    }
    probe_outcomes, probe_stats = _run_probes(
        faulter, model, components, trace_compile
    )
    probes = tuple(
        sorted(
            (
                (key, resumed)
                for key, (outcome, resumed) in probe_outcomes.items()
            ),
            key=lambda item: item[0][0],
        )
    )
    reduced = ReducedTupleSpace(
        space, probes=probes, allow_crash=allow_crash
    )
    plan = ReductionPlan(
        ctx,
        space,
        reduced,
        baseline_outcome,
        allow_crash,
        probe_outcomes=probe_outcomes,
        probe_stats=probe_stats,
    )
    return plan, None
