"""Statistical fault injection with quantified error.

Exhaustive single-bit-flip campaigns grow with trace length x encoding
bits; the paper cites Leveugle et al., "Statistical fault injection:
Quantified error and confidence" (DATE 2009) for the standard remedy:
sample the fault space uniformly and report the success probability
with a confidence interval, choosing the sample size for a target
error margin (with finite-population correction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faulter.campaign import Faulter
from repro.faulter.engine import SequentialBackend, resolve_backend
from repro.faulter.models import FaultModel, model_by_name
from repro.faulter.report import CRASHED, SUCCESS
from repro.faulter.space import SampledSpace

_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_score(confidence: float) -> float:
    try:
        return _Z[round(confidence, 2)]
    except KeyError:
        raise ValueError(f"confidence must be one of {sorted(_Z)}") from None


def required_samples(
    population: int,
    margin: float,
    confidence: float = 0.95,
    p: float = 0.5,
) -> int:
    """Sample size for a target error margin (Leveugle et al., eq. 4).

    ``n = N / (1 + e^2 (N-1) / (z^2 p (1-p)))`` — the finite-population
    corrected size; with ``N -> inf`` this is the familiar
    ``z^2 p(1-p) / e^2``.
    """
    if population <= 0:
        return 0
    z = z_score(confidence)
    numerator = population
    denominator = 1 + (margin**2) * (population - 1) / (z**2 * p * (1 - p))
    return min(population, math.ceil(numerator / denominator))


@dataclass
class StatisticalEstimate:
    """Sampled estimate of the successful-fault probability."""

    model: str
    population: int
    samples: int
    successes: int
    crashes: int
    confidence: float

    @property
    def point(self) -> float:
        return self.successes / self.samples if self.samples else 0.0

    @property
    def margin(self) -> float:
        """Half-width of the CI with finite-population correction."""
        if not self.samples:
            return 1.0
        if self.samples >= self.population:
            return 0.0  # complete census: no sampling error
        z = z_score(self.confidence)
        p = self.point
        base = z * math.sqrt(max(p * (1 - p), 1e-12) / self.samples)
        fpc = math.sqrt(
            (self.population - self.samples) / (self.population - 1)
        )
        return base * fpc

    @property
    def interval(self) -> tuple[float, float]:
        return (
            max(0.0, self.point - self.margin),
            min(1.0, self.point + self.margin),
        )

    def summary(self) -> str:
        low, high = self.interval
        return (
            f"statistical FI [{self.model}]: "
            f"{self.successes}/{self.samples} successful "
            f"(population {self.population}) -> "
            f"p = {100 * self.point:.3f}% "
            f"± {100 * self.margin:.3f}% "
            f"@ {100 * self.confidence:.0f}% confidence "
            f"[{100 * low:.3f}%, {100 * high:.3f}%]"
        )


DEFAULT_CHECKPOINT_INTERVAL = 64


def estimate_vulnerability(
    faulter: Faulter,
    model: FaultModel | str = "bitflip",
    margin: float = 0.02,
    confidence: float = 0.95,
    samples: int | None = None,
    seed: int = 0,
    backend=None,
    checkpoint_interval: int | float | None = None,
) -> StatisticalEstimate:
    """Sample the fault space of ``faulter``'s bad-input trace.

    ``samples`` overrides the Leveugle-sized default.  Sampling is
    uniform over the (trace offset x fault variant) population and
    deterministic for a given ``seed``.

    Execution goes through the campaign engine: by default a
    checkpointed sequential backend, which resumes each sampled run
    from the nearest trace checkpoint instead of re-executing the
    whole prefix.  The estimate is bit-identical for any backend or
    checkpoint interval (the emulator is deterministic).
    """
    if isinstance(model, str):
        model = model_by_name(model)
    engine = faulter.engine()
    population = engine.context(model).population()
    if samples is None:
        samples = required_samples(population, margin, confidence)
    samples = min(samples, population)

    if backend is None:
        if checkpoint_interval is None:
            interval = DEFAULT_CHECKPOINT_INTERVAL
        else:
            interval = checkpoint_interval
        backend = SequentialBackend(checkpoint_interval=interval)
    else:
        backend = resolve_backend(
            backend, checkpoint_interval=checkpoint_interval
        )
    space = SampledSpace(samples=samples, seed=seed)
    report = engine.run(
        model,
        space,
        backend=backend,
        target=f"{faulter.name}(sampled)",
    )
    return StatisticalEstimate(
        model=model.name,
        population=population,
        samples=samples,
        successes=report.outcomes.get(SUCCESS, 0),
        crashes=report.outcomes.get(CRASHED, 0),
        confidence=confidence,
    )
