"""Statistical fault injection with quantified error.

Exhaustive single-bit-flip campaigns grow with trace length x encoding
bits; the paper cites Leveugle et al., "Statistical fault injection:
Quantified error and confidence" (DATE 2009) for the standard remedy:
sample the fault space uniformly and report the success probability
with a confidence interval, choosing the sample size for a target
error margin (with finite-population correction).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.emu.machine import Machine
from repro.faulter.campaign import SUCCESS, Faulter
from repro.faulter.models import FaultModel, model_by_name

_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_score(confidence: float) -> float:
    try:
        return _Z[round(confidence, 2)]
    except KeyError:
        raise ValueError(
            f"confidence must be one of {sorted(_Z)}") from None


def required_samples(population: int, margin: float,
                     confidence: float = 0.95, p: float = 0.5) -> int:
    """Sample size for a target error margin (Leveugle et al., eq. 4).

    ``n = N / (1 + e^2 (N-1) / (z^2 p (1-p)))`` — the finite-population
    corrected size; with ``N -> inf`` this is the familiar
    ``z^2 p(1-p) / e^2``.
    """
    if population <= 0:
        return 0
    z = z_score(confidence)
    numerator = population
    denominator = 1 + (margin ** 2) * (population - 1) / \
        (z ** 2 * p * (1 - p))
    return min(population, math.ceil(numerator / denominator))


@dataclass
class StatisticalEstimate:
    """Sampled estimate of the successful-fault probability."""

    model: str
    population: int
    samples: int
    successes: int
    crashes: int
    confidence: float

    @property
    def point(self) -> float:
        return self.successes / self.samples if self.samples else 0.0

    @property
    def margin(self) -> float:
        """Half-width of the CI with finite-population correction."""
        if not self.samples:
            return 1.0
        if self.samples >= self.population:
            return 0.0  # complete census: no sampling error
        z = z_score(self.confidence)
        p = self.point
        base = z * math.sqrt(max(p * (1 - p), 1e-12) / self.samples)
        fpc = math.sqrt((self.population - self.samples)
                        / (self.population - 1))
        return base * fpc

    @property
    def interval(self) -> tuple[float, float]:
        return (max(0.0, self.point - self.margin),
                min(1.0, self.point + self.margin))

    def summary(self) -> str:
        low, high = self.interval
        return (f"statistical FI [{self.model}]: "
                f"{self.successes}/{self.samples} successful "
                f"(population {self.population}) -> "
                f"p = {100 * self.point:.3f}% "
                f"± {100 * self.margin:.3f}% "
                f"@ {100 * self.confidence:.0f}% confidence "
                f"[{100 * low:.3f}%, {100 * high:.3f}%]")


def estimate_vulnerability(faulter: Faulter,
                           model: FaultModel | str = "bitflip",
                           margin: float = 0.02,
                           confidence: float = 0.95,
                           samples: int | None = None,
                           seed: int = 0) -> StatisticalEstimate:
    """Sample the fault space of ``faulter``'s bad-input trace.

    ``samples`` overrides the Leveugle-sized default.  Sampling is
    uniform over the (trace offset x fault variant) population and
    deterministic for a given ``seed``.
    """
    if isinstance(model, str):
        model = model_by_name(model)
    trace = faulter.trace()
    machine = Machine(faulter.image, stdin=faulter.bad_input)

    variant_counts: list[int] = []
    for address in trace:
        insn = machine.fetch_decode(address)
        variant_counts.append(len(model.variants(insn)))
    cumulative: list[int] = []
    total = 0
    for count in variant_counts:
        total += count
        cumulative.append(total)
    population = total
    if samples is None:
        samples = required_samples(population, margin, confidence)
    samples = min(samples, population)

    rng = random.Random(seed)
    chosen = rng.sample(range(population), samples) if samples else []
    cap = faulter.bad_baseline.steps * 2 + 256

    successes = crashes = 0
    import bisect
    for flat_index in chosen:
        step = bisect.bisect_right(cumulative, flat_index)
        before = cumulative[step - 1] if step else 0
        variant_index = flat_index - before
        insn = machine.fetch_decode(trace[step])
        detail = list(model.variants(insn))[variant_index]
        runner = Machine(faulter.image, stdin=faulter.bad_input)
        result = runner.run(
            max_steps=cap, fault_step=step,
            fault_intercept=lambda i, c, d=detail: model.apply(i, c, d))
        outcome = faulter.classify(result)
        if outcome == SUCCESS:
            successes += 1
        elif outcome == "crash":
            crashes += 1
    return StatisticalEstimate(
        model=model.name, population=population, samples=samples,
        successes=successes, crashes=crashes, confidence=confidence)
