"""Original->rewritten address correspondence across rewriting paths.

Every rewriting path in the repo emits a :class:`ProvenanceMap` so a
fault campaign against the *rewritten* binary can be joined against a
campaign on the *original* binary (the paper's Tables III-V are exactly
such before/after comparisons):

* ``patcher.loop`` — instruction-exact: each surviving ``InsnEntry``
  keeps its originally decoded address, and pattern-emitted entries
  link back through ``origin``/``root_site()``; the assembler's tag map
  supplies the final addresses.
* ``detour.rewriter`` — identity over the (address-stable) ``.text``
  plus exact entries for every instruction displaced into the
  trampoline.
* ``lower.pipeline`` — block-granular: lifted IR blocks carry their
  guest address/extent as metadata, which the lowering pipeline maps to
  the final label layout of the regenerated code.

Three entry kinds keep the semantics apart:

* ``insn``    — the original instruction itself, relocated,
* ``derived`` — countermeasure code protecting an original site
  (pattern copies, trampoline instrumentation, validation blocks),
* ``block``   — a whole guest block mapped to a rewritten range.

The map answers two questions the differential report needs:
``to_original(rewritten_address)`` (attribute a post-hardening fault
back to a pre-rewrite address) and ``normalize_original(address)``
(the canonical join key for an original address — itself for exact
paths, the containing block head for block-granular paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

KIND_INSN = "insn"
KIND_DERIVED = "derived"
KIND_BLOCK = "block"

_KINDS = (KIND_INSN, KIND_DERIVED, KIND_BLOCK)


@dataclass(frozen=True)
class ProvenanceEntry:
    """One original->rewritten correspondence.

    Point entries (``insn``/``derived``) leave the ``*_end`` fields at
    zero; range entries (``block``-granular, including derived blocks)
    carry exclusive end addresses on both sides.
    """

    original: int
    rewritten: int
    kind: str = KIND_INSN
    original_end: int = 0
    rewritten_end: int = 0

    @property
    def is_range(self) -> bool:
        return self.rewritten_end > 0

    def covers_original(self, address: int) -> bool:
        if self.is_range:
            return self.original <= address < self.original_end
        return address == self.original

    def covers_rewritten(self, address: int) -> bool:
        if self.is_range:
            return self.rewritten <= address < self.rewritten_end
        return address == self.rewritten

    def to_dict(self) -> dict:
        payload = {
            "original": self.original,
            "rewritten": self.rewritten,
            "kind": self.kind,
        }
        if self.is_range:
            payload["original_end"] = self.original_end
            payload["rewritten_end"] = self.rewritten_end
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ProvenanceEntry":
        return cls(
            original=payload["original"],
            rewritten=payload["rewritten"],
            kind=payload.get("kind", KIND_INSN),
            original_end=payload.get("original_end", 0),
            rewritten_end=payload.get("rewritten_end", 0),
        )


@dataclass
class ProvenanceMap:
    """Address correspondence between a binary and its rewritten form.

    ``path`` names the rewriting path that produced the map
    (``"patcher"``/``"detour"``/``"lower"``).  ``identity`` regions are
    half-open ``[start, end)`` ranges where addresses did not move at
    all (the detour rewriter's untouched ``.text``).
    """

    path: str = ""
    entries: list[ProvenanceEntry] = field(default_factory=list)
    identity: list[tuple[int, int]] = field(default_factory=list)
    meta: dict = field(default_factory=dict, compare=False)

    # -- construction ------------------------------------------------------

    def add(self, original: int, rewritten: int,
            kind: str = KIND_INSN) -> None:
        """Record a point mapping (one instruction)."""
        if kind not in _KINDS:
            raise ValueError(f"unknown provenance kind {kind!r}")
        self.entries.append(ProvenanceEntry(original, rewritten, kind))

    def add_range(self, original: int, original_end: int,
                  rewritten: int, rewritten_end: int,
                  kind: str = KIND_BLOCK) -> None:
        """Record a range mapping (one guest block)."""
        if kind not in _KINDS:
            raise ValueError(f"unknown provenance kind {kind!r}")
        if original_end <= original or rewritten_end <= rewritten:
            raise ValueError("provenance range must be non-empty")
        self.entries.append(ProvenanceEntry(
            original, rewritten, kind, original_end, rewritten_end))

    def add_identity(self, start: int, end: int) -> None:
        """Record a region whose addresses are unchanged."""
        if end <= start:
            raise ValueError("identity region must be non-empty")
        self.identity.append((start, end))

    # -- queries -----------------------------------------------------------

    def _in_identity(self, address: int) -> bool:
        return any(start <= address < end
                   for start, end in self.identity)

    def to_original(self, rewritten: int) -> Optional[int]:
        """Canonical original address for a rewritten address.

        Exact (point) matches win over identity regions, which win over
        block ranges; a range match resolves to the block head.  Returns
        ``None`` when the address has no pre-rewrite counterpart
        (freshly injected code such as fault handlers).
        """
        best_range: Optional[ProvenanceEntry] = None
        for entry in self.entries:
            if not entry.covers_rewritten(rewritten):
                continue
            if not entry.is_range:
                return entry.original
            if best_range is None or entry.rewritten > best_range.rewritten:
                best_range = entry  # narrower/nearer block head wins
        if self._in_identity(rewritten):
            return rewritten
        if best_range is not None:
            return best_range.original
        return None

    def normalize_original(self, address: int) -> Optional[int]:
        """Canonical join key for an *original* address.

        Exact paths key each instruction on its own address; block
        paths key every address in a guest block on the block head.
        ``None`` means the rewrite carries no mapping for the address
        (the differential report's ``unmapped`` class).
        """
        best_range: Optional[ProvenanceEntry] = None
        for entry in self.entries:
            if not entry.covers_original(address):
                continue
            if not entry.is_range:
                return address
            if best_range is None or entry.original > best_range.original:
                best_range = entry
        if self._in_identity(address):
            return address
        if best_range is not None:
            return best_range.original
        return None

    def to_rewritten(self, original: int) -> list[int]:
        """All rewritten addresses an original address maps to."""
        targets = []
        for entry in self.entries:
            if entry.covers_original(original):
                targets.append(entry.rewritten)
        if self._in_identity(original):
            targets.append(original)
        return sorted(set(targets))

    def counts(self) -> dict[str, int]:
        """Entry census by kind (plus identity region count)."""
        census = {kind: 0 for kind in _KINDS}
        for entry in self.entries:
            census[entry.kind] += 1
        census["identity_regions"] = len(self.identity)
        return census

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "entries": [entry.to_dict() for entry in self.entries],
            "identity": [[start, end] for start, end in self.identity],
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProvenanceMap":
        return cls(
            path=payload.get("path", ""),
            entries=[ProvenanceEntry.from_dict(e)
                     for e in payload.get("entries", [])],
            identity=[(start, end)
                      for start, end in payload.get("identity", [])],
            meta=dict(payload.get("meta", {})),
        )


# -- per-unit composition ---------------------------------------------------
#
# Every rewriting path emits one ProvenanceMap per RewriteUnit and
# composes them through these helpers, so the final map carries a
# per-function census in ``meta["units"]`` regardless of which path
# produced it.

UNIT_OTHER = "<other>"


def split_by_plan(provenance: ProvenanceMap, plan) -> dict:
    """Split ``provenance`` into per-unit maps along ``plan`` extents.

    Entries are assigned by their *original* address; identity regions
    are cut at unit boundaries.  Addresses no unit owns collect under
    ``UNIT_OTHER``.
    """
    maps: dict[str, ProvenanceMap] = {}

    def map_for(name: str) -> ProvenanceMap:
        if name not in maps:
            maps[name] = ProvenanceMap(path=provenance.path)
        return maps[name]

    for entry in provenance.entries:
        unit = plan.unit_at(entry.original)
        map_for(unit.name if unit else UNIT_OTHER).entries.append(entry)
    for start, end in provenance.identity:
        for sub_start, sub_end, unit in plan.slice(start, end):
            map_for(unit.name if unit else UNIT_OTHER).identity.append(
                (sub_start, sub_end))
    return maps


def compose_maps(unit_maps, path: str, plan=None) -> ProvenanceMap:
    """Compose per-unit maps into one, recording per-unit rollups.

    ``unit_maps`` is ``{unit_name: ProvenanceMap}``; composition order
    follows ``plan.units`` when given (with stragglers appended), else
    insertion order.  The result's ``meta["units"]`` holds each unit's
    entry census.
    """
    ordered: list[str] = []
    if plan is not None:
        ordered = [u.name for u in plan.units if u.name in unit_maps]
    ordered += [name for name in unit_maps if name not in ordered]

    composed = ProvenanceMap(path=path)
    rollup = {}
    for name in ordered:
        unit_map = unit_maps[name]
        composed.entries.extend(unit_map.entries)
        composed.identity.extend(unit_map.identity)
        rollup[name] = unit_map.counts()
    composed.meta["units"] = rollup
    return composed


def with_unit_rollups(provenance: ProvenanceMap, plan) -> ProvenanceMap:
    """Re-express ``provenance`` as composed per-unit maps.

    The entry/identity *sets* are preserved (only regrouped by unit),
    so all address queries answer identically; the composed map gains
    the per-unit census in ``meta["units"]``.
    """
    composed = compose_maps(
        split_by_plan(provenance, plan), provenance.path, plan)
    composed.meta = {**provenance.meta, **composed.meta}
    return composed
