"""Whole-program lifting driver with call inlining."""

from __future__ import annotations

from typing import Optional

from repro.binfmt.image import Executable
from repro.disasm.recover import disassemble
from repro.emu.machine import Machine
from repro.errors import LiftError
from repro.gtirb.ir import CodeBlock, Module
from repro.ir.builder import IRBuilder
from repro.ir.module import BasicBlock, Function, IRModule
from repro.ir.types import FunctionType, I64, VOID
from repro.isa.insn import Mnemonic
from repro.isa.operands import Imm
from repro.isa.registers import reg as reg_by_name
from repro.lift.semantics import InstructionTranslator
from repro.lift.state import GuestState

MAX_INLINE_DEPTH = 16

_SYS_REGS = [reg_by_name(n) for n in ("rax", "rdi", "rsi", "rdx")]
RAX = reg_by_name("rax")


class Lifter:
    """Lifts one executable into a single-function IR module."""

    def __init__(self, exe: Executable, gtirb: Optional[Module] = None):
        self.exe = exe
        self.gtirb = gtirb if gtirb is not None else disassemble(exe)
        self.blocks_by_addr: dict[int, CodeBlock] = {
            block.address: block
            for block in self.gtirb.text().code_blocks()
            if block.address is not None
        }
        self.ir = IRModule(name="lifted")
        self.fn = self.ir.add_function(
            Function("entry", FunctionType(VOID, ())))
        self._ir_blocks: dict[tuple, BasicBlock] = {}
        self._worklist: list[tuple] = []

    # -- public --------------------------------------------------------------

    def lift(self) -> IRModule:
        setup = self.fn.add_block("setup")
        builder = IRBuilder(setup)
        self.state = GuestState(builder)
        entry_key = (self.exe.entry, ())
        builder.br(self._ir_block(entry_key))
        while self._worklist:
            key = self._worklist.pop()
            self._lift_guest_block(key)
        self.ir.aux["entry_address"] = self.exe.entry
        return self.ir

    # -- block management -----------------------------------------------------

    def _ir_block(self, key: tuple) -> BasicBlock:
        block = self._ir_blocks.get(key)
        if block is None:
            address, ctx = key
            suffix = f"_i{len(ctx)}" if ctx else ""
            block = self.fn.add_block(f"g{address:x}{suffix}_"
                                      f"{len(self._ir_blocks)}")
            guest = self.blocks_by_addr.get(address)
            block.set_guest_origin(
                address,
                size=sum(e.insn.length for e in guest.entries)
                if guest is not None else 0)
            self._ir_blocks[key] = block
            self._worklist.append(key)
        return block

    def _guest_block(self, address: int) -> CodeBlock:
        block = self.blocks_by_addr.get(address)
        if block is None:
            raise LiftError(f"no code block at {address:#x}")
        return block

    # -- lifting --------------------------------------------------------------

    def _lift_guest_block(self, key: tuple):
        address, ctx = key
        guest = self._guest_block(address)
        ir_block = self._ir_blocks[key]
        builder = IRBuilder(ir_block)
        translator = InstructionTranslator(self.state, builder)

        for entry in guest.entries:
            insn = entry.insn
            mnemonic = insn.mnemonic
            if mnemonic is Mnemonic.JMP:
                target = self._direct_target(entry)
                builder.br(self._ir_block((target, ctx)))
                return
            if mnemonic is Mnemonic.JCC:
                target = self._direct_target(entry)
                fallthrough = insn.address + insn.length
                cond = translator.cond_value(insn.cond)
                builder.condbr(cond,
                               self._ir_block((target, ctx)),
                               self._ir_block((fallthrough, ctx)))
                return
            if mnemonic is Mnemonic.CALL:
                target = self._direct_target(entry)
                if any(frame[1] == target for frame in ctx):
                    raise LiftError(
                        f"recursive call to {target:#x}; inlining "
                        f"lifter cannot translate recursion")
                if len(ctx) >= MAX_INLINE_DEPTH:
                    raise LiftError("inline depth exceeded")
                continuation = insn.address + insn.length
                new_ctx = ctx + ((continuation, target),)
                builder.br(self._ir_block((target, new_ctx)))
                return
            if mnemonic is Mnemonic.RET:
                if not ctx:
                    # returning from the entry function: end of program
                    builder.call(VOID, "halt", [])
                    builder.unreachable()
                    return
                continuation, _ = ctx[-1]
                builder.br(self._ir_block((continuation, ctx[:-1])))
                return
            if mnemonic is Mnemonic.SYSCALL:
                args = [self.state.read_reg(builder, r)
                        for r in _SYS_REGS]
                result = builder.call(I64, "syscall", args, "sysret")
                self.state.write_reg(builder, RAX, result)
                continue
            if mnemonic in (Mnemonic.HLT, Mnemonic.UD2, Mnemonic.INT3):
                builder.call(VOID, "halt", [])
                builder.unreachable()
                return
            translator.translate(insn)

        # guest block fell through (leader split): continue at next address
        last = guest.entries[-1].insn
        next_address = last.address + last.length
        if next_address not in self.blocks_by_addr:
            # running off the end (e.g. after an exit syscall)
            builder.call(VOID, "halt", [])
            builder.unreachable()
            return
        builder.br(self._ir_block((next_address, ctx)))

    def _direct_target(self, entry) -> int:
        expr = entry.sym_operands.get(0)
        if expr is not None and isinstance(expr.symbol.referent, CodeBlock):
            referent = expr.symbol.referent
            if referent.address is None:
                raise LiftError("branch to address-less block")
            return referent.address + expr.addend
        insn = entry.insn
        if insn.operands and isinstance(insn.operands[0], Imm):
            target = insn.branch_target()
            if target is not None:
                return target
        raise LiftError(
            f"indirect control flow at {insn.address:#x} ('{insn}') is "
            f"not supported by the inlining lifter")


def lift_executable(exe: Executable, optimize: bool = True) -> IRModule:
    """Lift ``exe`` and (optionally) run the standard cleanup pipeline."""
    module = Lifter(exe).lift()
    if optimize:
        from repro.ir.passes.pass_manager import standard_cleanup
        standard_cleanup().run(module)
    return module


def guest_memory(exe: Executable):
    """Memory image for interpreting a lifted module (same loader as the
    emulator, so differential runs see identical initial state)."""
    return Machine(exe).memory
