"""Per-instruction translation: x86-64 subset -> IR.

Documented approximations (safe for the supported workloads, checked by
the differential tests):

* AF and PF are not modeled (no workload reads them; ``jp``/``jnp``
  raise :class:`LiftError`),
* ``imul`` leaves CF/OF false,
* variable (``cl``) shift counts update only ZF/SF,
* ``pushfq``/``popfq`` are rejected — they require materializing the
  full RFLAGS image, which original (pre-hardening) binaries in our
  corpus never do.
"""

from __future__ import annotations

from repro.errors import LiftError
from repro.ir.builder import IRBuilder
from repro.ir.types import I1, I8, I64, IntType, int_type
from repro.ir.values import Constant
from repro.isa.cond import Cond
from repro.isa.insn import Instruction
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import reg as reg_by_name
from repro.lift.state import GuestState

RSP = reg_by_name("rsp")


class InstructionTranslator:
    """Translates non-control-flow instructions and condition codes."""

    def __init__(self, state: GuestState, builder: IRBuilder):
        self.state = state
        self.builder = builder

    # -- operand helpers ------------------------------------------------------

    def address_of(self, mem: Mem, insn: Instruction):
        b = self.builder
        if mem.is_rip_relative:
            return Constant(I64, insn.address + insn.length + mem.disp)
        address = None
        if mem.base is not None:
            address = self.state.read_reg(b, mem.base)
        if mem.index is not None:
            index = self.state.read_reg(b, mem.index)
            if mem.scale != 1:
                index = b.mul(index, Constant(I64, mem.scale))
            address = index if address is None else b.add(address, index)
        disp = mem.disp if isinstance(mem.disp, int) else 0
        if address is None:
            return Constant(I64, disp)
        if disp:
            address = b.add(address, Constant(I64, disp))
        return address

    def read(self, operand, insn: Instruction, width: int):
        """Operand value as IntType(width*8)."""
        b = self.builder
        vtype = int_type(width * 8)
        if isinstance(operand, Reg):
            value = self.state.read_reg(b, operand.register)
            return self._coerce(value, vtype)
        if isinstance(operand, Imm):
            return Constant(vtype, operand.value)
        pointer = b.inttoptr(self.address_of(operand, insn))
        return b.load(int_type(operand.size * 8), pointer)

    def write(self, operand, insn: Instruction, value):
        b = self.builder
        if isinstance(operand, Reg):
            expected = int_type(operand.register.size * 8)
            self.state.write_reg(b, operand.register,
                                 self._coerce(value, expected))
            return
        pointer = b.inttoptr(self.address_of(operand, insn))
        b.store(self._coerce(value, int_type(operand.size * 8)), pointer)

    def _coerce(self, value, vtype: IntType):
        if value.type == vtype:
            return value
        if value.type.bits > vtype.bits:
            return self.builder.trunc(value, vtype)
        return self.builder.zext(value, vtype)

    @staticmethod
    def _width(insn: Instruction) -> int:
        for operand in insn.operands:
            if isinstance(operand, (Reg, Mem)):
                return operand.size
        return 8

    # -- flag helpers ---------------------------------------------------------

    def _set_zf_sf(self, result):
        b = self.builder
        zero = Constant(result.type, 0)
        self.state.write_flag(b, "zf", b.icmp("eq", result, zero))
        self.state.write_flag(b, "sf", b.icmp("slt", result, zero))

    def _set_of_from_signs(self, x1, x2):
        """OF = sign bit of (x1 & x2)."""
        b = self.builder
        combined = b.and_(x1, x2)
        self.state.write_flag(
            b, "of", b.icmp("slt", combined, Constant(combined.type, 0)))

    def cond_value(self, cond: Cond):
        """The branch condition as an i1 value (paper's cmp_res)."""
        b = self.builder
        s = self.state
        base = cond.value & ~1

        if base == 0x0:
            value = s.read_flag(b, "of")
        elif base == 0x2:
            value = s.read_flag(b, "cf")
        elif base == 0x4:
            value = s.read_flag(b, "zf")
        elif base == 0x6:
            value = b.or_(s.read_flag(b, "cf"), s.read_flag(b, "zf"))
        elif base == 0x8:
            value = s.read_flag(b, "sf")
        elif base == 0xA:
            raise LiftError("parity conditions are not supported")
        elif base == 0xC:
            value = b.xor(s.read_flag(b, "sf"), s.read_flag(b, "of"))
        else:  # 0xE
            value = b.or_(s.read_flag(b, "zf"),
                          b.xor(s.read_flag(b, "sf"),
                                s.read_flag(b, "of")))
        if cond.value & 1:
            value = b.xor(value, Constant(I1, 1))
        return value

    # -- instruction translation ---------------------------------------------

    def translate(self, insn: Instruction):
        """Translate a non-control-flow instruction (mutates state)."""
        handler = getattr(self, f"_lift_{insn.mnemonic.name.lower()}",
                          None)
        if handler is None:
            raise LiftError(f"cannot lift '{insn}'")
        handler(insn)

    def _lift_mov(self, insn):
        width = self._width(insn)
        self.write(insn.operands[0], insn,
                   self.read(insn.operands[1], insn, width))

    def _lift_movzx(self, insn):
        dst, src = insn.operands
        value = self.read(src, insn, 1)
        self.write(dst, insn, self._coerce(
            value, int_type(dst.register.size * 8)))

    def _lift_lea(self, insn):
        dst, src = insn.operands
        self.write(dst, insn, self.address_of(src, insn))

    # arithmetic --------------------------------------------------------------

    def _arith(self, insn, op: str):
        b = self.builder
        width = self._width(insn)
        a = self.read(insn.operands[0], insn, width)
        c = self.read(insn.operands[1], insn, width)
        result = b.binop(op, a, c)
        zero = Constant(result.type, 0)
        if op == "sub":
            # ZF of a subtraction is equality of the inputs: lift it as
            # a *direct* compare so the hardening pass duplicates the
            # comparison itself instead of sharing one subtraction
            # result (and DCE can drop the subtraction when only ZF is
            # consumed).
            self.state.write_flag(b, "zf", b.icmp("eq", a, c))
        else:
            self.state.write_flag(b, "zf", b.icmp("eq", result, zero))
        self.state.write_flag(b, "sf", b.icmp("slt", result, zero))
        if op == "add":
            self.state.write_flag(b, "cf", b.icmp("ult", result, a))
            self._set_of_from_signs(b.not_(b.xor(a, c)), b.xor(a, result))
        else:  # sub
            self.state.write_flag(b, "cf", b.icmp("ult", a, c))
            self._set_of_from_signs(b.xor(a, c), b.xor(a, result))
        return result

    def _lift_add(self, insn):
        self.write(insn.operands[0], insn, self._arith(insn, "add"))

    def _lift_sub(self, insn):
        self.write(insn.operands[0], insn, self._arith(insn, "sub"))

    def _lift_cmp(self, insn):
        self._arith(insn, "sub")

    def _logic(self, insn, op: str):
        b = self.builder
        width = self._width(insn)
        a = self.read(insn.operands[0], insn, width)
        c = self.read(insn.operands[1], insn, width)
        result = b.binop(op, a, c)
        self._set_zf_sf(result)
        self.state.write_flag_const(b, "cf", 0)
        self.state.write_flag_const(b, "of", 0)
        return result

    def _lift_and(self, insn):
        self.write(insn.operands[0], insn, self._logic(insn, "and"))

    def _lift_or(self, insn):
        self.write(insn.operands[0], insn, self._logic(insn, "or"))

    def _lift_xor(self, insn):
        self.write(insn.operands[0], insn, self._logic(insn, "xor"))

    def _lift_test(self, insn):
        self._logic(insn, "and")

    def _lift_imul(self, insn):
        b = self.builder
        width = self._width(insn)
        a = self.read(insn.operands[0], insn, width)
        c = self.read(insn.operands[1], insn, width)
        result = b.mul(a, c)
        self._set_zf_sf(result)
        self.state.write_flag_const(b, "cf", 0)  # approximation
        self.state.write_flag_const(b, "of", 0)
        self.write(insn.operands[0], insn, result)

    def _lift_inc(self, insn):
        b = self.builder
        width = self._width(insn)
        a = self.read(insn.operands[0], insn, width)
        one = Constant(a.type, 1)
        result = b.add(a, one)
        self._set_zf_sf(result)  # CF preserved by inc
        self._set_of_from_signs(b.not_(b.xor(a, one)), b.xor(a, result))
        self.write(insn.operands[0], insn, result)

    def _lift_dec(self, insn):
        b = self.builder
        width = self._width(insn)
        a = self.read(insn.operands[0], insn, width)
        one = Constant(a.type, 1)
        result = b.sub(a, one)
        self._set_zf_sf(result)
        self._set_of_from_signs(b.xor(a, one), b.xor(a, result))
        self.write(insn.operands[0], insn, result)

    def _lift_neg(self, insn):
        b = self.builder
        width = self._width(insn)
        a = self.read(insn.operands[0], insn, width)
        zero = Constant(a.type, 0)
        result = b.sub(zero, a)
        self._set_zf_sf(result)
        self.state.write_flag(b, "cf", b.icmp("ne", a, zero))
        self._set_of_from_signs(b.xor(zero, a), b.xor(zero, result))
        self.write(insn.operands[0], insn, result)

    def _lift_not(self, insn):
        b = self.builder
        width = self._width(insn)
        a = self.read(insn.operands[0], insn, width)
        self.write(insn.operands[0], insn, b.not_(a))

    def _shift(self, insn, op: str):
        b = self.builder
        width = self._width(insn)
        bits = width * 8
        a = self.read(insn.operands[0], insn, width)
        amount = insn.operands[1]
        if isinstance(amount, Imm):
            count = amount.value & (0x3F if bits == 64 else 0x1F)
            if count == 0:
                return a
            result = b.binop(op, a, Constant(a.type, count))
            self._set_zf_sf(result)
            if op == "shl":
                carry_bit = b.lshr(a, Constant(a.type, bits - count))
            else:
                carry_bit = b.lshr(a, Constant(a.type, count - 1))
            carry = b.and_(carry_bit, Constant(a.type, 1))
            self.state.write_flag(
                b, "cf", b.icmp("ne", carry, Constant(a.type, 0)))
            return result
        # variable count: result + ZF/SF only (documented approximation)
        count = self._coerce(self.read(amount, insn, 1), a.type)
        masked = b.and_(count, Constant(a.type,
                                        0x3F if bits == 64 else 0x1F))
        result = b.binop(op, a, masked)
        self._set_zf_sf(result)
        return result

    def _lift_shl(self, insn):
        self.write(insn.operands[0], insn, self._shift(insn, "shl"))

    def _lift_shr(self, insn):
        self.write(insn.operands[0], insn, self._shift(insn, "lshr"))

    def _lift_sar(self, insn):
        self.write(insn.operands[0], insn, self._shift(insn, "ashr"))

    # stack -------------------------------------------------------------------

    def _lift_push(self, insn):
        b = self.builder
        value = self._coerce(self.read(insn.operands[0], insn, 8), I64)
        rsp = self.state.read_reg(b, RSP)
        new_rsp = b.sub(rsp, Constant(I64, 8))
        self.state.write_reg(b, RSP, new_rsp)
        b.store(value, b.inttoptr(new_rsp))

    def _lift_pop(self, insn):
        b = self.builder
        rsp = self.state.read_reg(b, RSP)
        value = b.load(I64, b.inttoptr(rsp))
        self.state.write_reg(b, RSP, b.add(rsp, Constant(I64, 8)))
        self.write(insn.operands[0], insn, value)

    # conditional data movement -----------------------------------------------

    def _lift_setcc(self, insn):
        b = self.builder
        cond = self.cond_value(insn.cond)
        self.write(insn.operands[0], insn, b.zext(cond, I8))

    def _lift_cmovcc(self, insn):
        b = self.builder
        dst = insn.operands[0]
        width = dst.register.size
        cond = self.cond_value(insn.cond)
        current = self.read(dst, insn, width)
        alternative = self.read(insn.operands[1], insn, width)
        self.write(dst, insn, b.select(cond, alternative, current))

    def _lift_nop(self, insn):
        pass

    def _lift_pushfq(self, insn):
        raise LiftError("pushfq requires full RFLAGS materialization")

    def _lift_popfq(self, insn):
        raise LiftError("popfq requires full RFLAGS materialization")
