"""Guest architectural state modeled as IR allocas."""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.types import I1, I64, int_type
from repro.ir.values import Constant
from repro.isa.registers import Register, all_gpr64, parent_gpr

# The lifted program simulates the guest stack in a region distinct from
# the lowered binary's own runtime stack (both live inside the emulator's
# mapped stack area; see DESIGN.md).
GUEST_STACK_INIT = 0x7FFF_0000

FLAG_NAMES = ("zf", "sf", "cf", "of")


class GuestState:
    """Registers + flags as entry-block allocas."""

    def __init__(self, builder: IRBuilder):
        self.reg_slots = {}
        for register in all_gpr64():
            slot = builder.alloca(I64, register.name)
            builder.store(Constant(I64, 0), slot)
            self.reg_slots[register.name] = slot
        builder.store(Constant(I64, GUEST_STACK_INIT),
                      self.reg_slots["rsp"])
        self.flag_slots = {}
        for name in FLAG_NAMES:
            slot = builder.alloca(I1, name)
            builder.store(Constant(I1, 0), slot)
            self.flag_slots[name] = slot

    # -- registers -----------------------------------------------------------

    def read_reg(self, builder: IRBuilder, register: Register):
        """Read a register view; returns a value of the view's width."""
        slot = self.reg_slots[parent_gpr(register).name]
        full = builder.load(I64, slot, register.name)
        if register.size == 8:
            return full
        return builder.trunc(full, int_type(register.size * 8))

    def write_reg(self, builder: IRBuilder, register: Register, value):
        """Write a register view with x86-64 merge semantics."""
        slot = self.reg_slots[parent_gpr(register).name]
        if register.size == 8:
            builder.store(value, slot)
        elif register.size == 4:
            builder.store(builder.zext(value, I64), slot)
        else:  # 1 byte: preserve the upper 56 bits
            old = builder.load(I64, slot)
            kept = builder.and_(old, Constant(I64, ~0xFF))
            merged = builder.or_(kept, builder.zext(value, I64))
            builder.store(merged, slot)

    # -- flags ----------------------------------------------------------------

    def read_flag(self, builder: IRBuilder, name: str):
        return builder.load(I1, self.flag_slots[name], name)

    def write_flag(self, builder: IRBuilder, name: str, value):
        builder.store(value, self.flag_slots[name])

    def write_flag_const(self, builder: IRBuilder, name: str, value: int):
        builder.store(Constant(I1, value), self.flag_slots[name])
