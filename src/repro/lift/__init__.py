"""Binary -> SSA-IR lifter (the reproduction's Rev.ng substitute).

Translates a recovered GTIRB module into one IR function with explicit
guest state (registers and status flags as allocas, promoted to SSA by
mem2reg), guest memory accessed through absolute addresses, and system
calls as intrinsics.  Direct guest calls are inlined at lift time
(recursion and indirect control flow are rejected with a diagnostic, a
documented simplification over Rev.ng's root-dispatcher design).
"""

from repro.lift.lifter import Lifter, lift_executable

__all__ = ["Lifter", "lift_executable"]
