"""Top-level session API.

One object — a :class:`Target` — bundles everything the paper's
pipeline re-threads through every step: the binary under test, the
good/bad campaign inputs, and the fault-detection :class:`Oracle`
deciding when a run counts as the privileged behaviour::

    from repro.api import EngineConfig, Target
    from repro.faulter.oracle import ExitCodeOracle

    target = Target(elf_bytes, good, bad, b"ACCESS GRANTED",
                    name="pincheck")          # bytes -> MarkerOracle
    # or: Target(path, good, bad, ExitCodeOracle(0), name="gate")
    # or: workload.target()

    reports = target.campaign(models=("skip", "bitflip"))
    result = target.harden(approach="faulter+patcher")
    evaluation = target.evaluate(
        approach="detour", models=("skip",),
        config=EngineConfig(backend="multiprocess", workers=4))
    print(evaluation.diff.table())

``EngineConfig`` replaces the per-call engine-knob sprawl (losslessly
serializable; validated at construction).  Hardening approaches live
in the :data:`repro.hardening.HARDENING_APPROACHES` registry —
``approach=`` strings, CLI choices, and the evaluation's dispatch all
derive from it, and :func:`repro.hardening.register_approach` plugs in
third-party rewriters without touching this module.

``Target.evaluate`` is the paper's actual evaluation loop (Tables
III-V): baseline campaign -> harden -> re-fault -> join the two
campaigns point-by-point through the rewrite's provenance map.

The pre-session free functions — :func:`find_vulnerabilities`,
:func:`harden_binary`, :func:`evaluate_countermeasures` — remain as
thin deprecated shims over :class:`Target` and produce bit-identical
reports (asserted by the tests).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.binfmt.image import Executable
from repro.binfmt.reader import read_elf
from repro.binfmt.writer import write_elf
from repro.detour.rewriter import DetourResult
from repro.faulter.campaign import Faulter
from repro.faulter.engine import EngineConfig
from repro.faulter.oracle import (
    AllOf,
    AnyOf,
    ExitCodeOracle,
    MarkerOracle,
    MemoryPredicateOracle,
    Oracle,
    coerce_oracle,
    oracle_from_dict,
)
from repro.faulter.report import (
    CampaignReport,
    DifferentialReport,
    differential_report,
)
from repro.hardening import (
    HARDENING_APPROACHES,
    HardeningApproach,
    approach_by_name,
    register_approach,
)
from repro.hybrid.pipeline import HybridResult
from repro.patcher.loop import HardenResult
from repro.provenance import ProvenanceMap

__all__ = [
    "APPROACHES",
    "AllOf",
    "AnyOf",
    "EngineConfig",
    "EvaluationResult",
    "ExitCodeOracle",
    "HARDENING_APPROACHES",
    "HardeningApproach",
    "HardeningResult",
    "MarkerOracle",
    "MemoryPredicateOracle",
    "Oracle",
    "Target",
    "approach_by_name",
    "coerce_oracle",
    "evaluate_countermeasures",
    "find_vulnerabilities",
    "harden_binary",
    "hardened_elf",
    "oracle_from_dict",
    "register_approach",
]

# import-time snapshot kept for backward compatibility; the live
# table is repro.hardening.HARDENING_APPROACHES
APPROACHES = tuple(HARDENING_APPROACHES)

HardeningResult = Union[HardenResult, HybridResult, DetourResult]


def _as_executable(
    image: Union[Executable, bytes, str, os.PathLike]
) -> Executable:
    if isinstance(image, (str, os.PathLike)):
        with open(image, "rb") as handle:
            return read_elf(handle.read())
    if isinstance(image, (bytes, bytearray)):
        return read_elf(bytes(image))
    return image


def _as_config(config) -> EngineConfig:
    if config is None:
        return EngineConfig()
    if isinstance(config, dict):
        return EngineConfig.from_dict(config)
    return config


def _section_namer(exe: Executable):
    def name_of(address: int) -> str:
        section = exe.section_at(address)
        return section.name if section is not None else "?"
    return name_of


class Target:
    """One binary under test, with its campaign inputs and oracle.

    ``image`` may be an :class:`Executable`, raw ELF bytes, or a
    filesystem path.  ``oracle`` is any
    :class:`~repro.faulter.oracle.Oracle`; raw ``bytes`` coerce to the
    default :class:`MarkerOracle` (the paper's stdout-marker check).
    The bound :class:`~repro.faulter.campaign.Faulter` — and therefore
    the validated baseline and the recorded bad-input trace — is
    created lazily on the first campaign and cached across
    ``campaign``/``evaluate`` calls.
    """

    def __init__(self,
                 image: Union[Executable, bytes, str, os.PathLike],
                 good_input: bytes,
                 bad_input: bytes,
                 oracle: Union[Oracle, bytes],
                 name: str = "target",
                 max_steps: int = 100_000):
        self.exe = _as_executable(image)
        self.good_input = good_input
        self.bad_input = bad_input
        self.oracle = coerce_oracle(oracle)
        self.name = name
        self.max_steps = max_steps
        self._faulter: Optional[Faulter] = None

    @classmethod
    def from_path(cls, path: Union[str, os.PathLike],
                  good_input: bytes, bad_input: bytes,
                  oracle: Union[Oracle, bytes],
                  name: Optional[str] = None,
                  max_steps: int = 100_000) -> "Target":
        """Load an ELF from ``path`` (named after it by default)."""
        return cls(path, good_input, bad_input, oracle,
                   name=name if name is not None else str(path),
                   max_steps=max_steps)

    def faulter(self) -> Faulter:
        """The campaign driver bound to this target (cached)."""
        if self._faulter is None:
            self._faulter = Faulter(
                self.exe, self.good_input, self.bad_input, self.oracle,
                name=self.name, max_steps=self.max_steps)
        return self._faulter

    @staticmethod
    def _configure_artifacts(faulter: Faulter,
                             config: EngineConfig) -> None:
        """Point ``faulter`` at the config's artifact store, if any.

        The cached faulter survives across ``campaign``/``evaluate``
        calls, so a store with the same root is kept (its in-memory
        memo and stats stay warm) and only a root change swaps it.
        """
        store = config.artifact_store()
        if store is None:
            return
        current = getattr(faulter, "artifacts", None)
        if current is not None and current.root == store.root:
            return
        faulter.artifacts = store

    # -- the paper's three methodologies ----------------------------------

    def campaign(self,
                 models: Sequence[str] = ("skip", "bitflip"),
                 config: Optional[EngineConfig] = None
                 ) -> dict[str, CampaignReport]:
        """Run fault campaigns (the faulter alone); {model: report}.

        ``models`` names members of the ``repro.faulter.models``
        registry — encoding faults (``skip``/``bitflip``/``stuck0``)
        and state faults (``reg-bitflip``/``flag-stuck``/
        ``mem-bitflip``/``branch-invert``) run through the same
        engine.  ``config`` carries every engine knob (backend,
        checkpointing, workers, streaming window, multi-fault
        sampling); ``config.k_faults > 1`` switches to the sampled
        multi-fault campaign.
        """
        config = _as_config(config)
        faulter = self.faulter()
        self._configure_artifacts(faulter, config)
        return self._run_reports(faulter, models, config,
                                 config.resolve())

    @staticmethod
    def _run_reports(faulter: Faulter, models: Sequence[str],
                     config: EngineConfig, backend
                     ) -> dict[str, CampaignReport]:
        """Campaigns for ``models`` honouring every config knob."""
        if config.k_faults > 1:
            reports = {}
            for model in models:
                report = faulter.run_k_fault_campaign(
                    model, k=config.k_faults, samples=config.samples,
                    seed=config.seed, backend=backend,
                    reduce=config.reduce)
                reports[report.model] = report
            return reports
        if config.chunk_units:
            reports = {}
            for model in models:
                report = faulter.run_chunked_campaign(
                    model, backend=backend)
                reports[report.model] = report
            return reports
        return faulter.run_all(models, backend=backend,
                               reduce=config.reduce)

    def harden(self,
               approach: str = "faulter+patcher",
               fault_models: Sequence[str] = ("skip",),
               **kwargs) -> HardeningResult:
        """Harden with a registered approach; see
        :mod:`repro.hardening`.

        ``approach`` names an entry of ``HARDENING_APPROACHES``
        (built-ins: ``faulter+patcher`` — the iterative Fig. 2 loop,
        extra kwargs ``max_iterations``/``symbolization``; ``hybrid``
        — the Fig. 3 lift-harden-lower pipeline, extra kwargs
        ``uid_seed``/``branch_filter``/``fold_constants``; ``detour``
        — duplication through trampolines).  All results carry a
        :class:`~repro.provenance.ProvenanceMap` for differential
        evaluation.  Approaches that consume fault models while
        hardening (the Fig. 2 loop) iterate only on the
        *encoding-family* members of ``fault_models``.
        """
        entry = approach_by_name(approach)
        return entry.harden(
            self.exe, self.good_input, self.bad_input, self.oracle,
            models=tuple(fault_models), name=self.name, **kwargs)

    def evaluate(self,
                 approach: str = "faulter+patcher",
                 models: Sequence[str] = ("skip",),
                 config: Optional[EngineConfig] = None,
                 harden_models: Optional[Sequence[str]] = None,
                 **harden_kwargs) -> "EvaluationResult":
        """The full differential evaluation loop (Tables III-V).

        1. baseline fault campaigns (``models``) against the original,
        2. harden with ``approach`` (approaches that consume fault
           models iterate on ``harden_models``, default ``("skip",)``;
           the others harden unconditionally),
        3. re-fault the hardened binary under the same ``models`` and
           engine ``config`` (streaming engine, any backend;
           ``config.k_faults > 1`` runs both campaigns as sampled
           multi-fault campaigns, exactly like :meth:`campaign`),
        4. join both campaigns through the rewrite's provenance map
           into a :class:`~repro.faulter.report.DifferentialReport`
           classifying every point as eliminated/surviving/introduced/
           unmapped.

        State-family models are evaluation-only here: the patcher's
        duplication patterns are designed against fetch faults, so
        steps 1 and 3 campaign under every requested model while the
        Fig. 2 loop iterates on the encoding members — which is
        exactly how one asks whether a countermeasure survives data
        faults it was never designed for.
        """
        config = _as_config(config)
        backend = config.resolve()
        faulter = self.faulter()
        self._configure_artifacts(faulter, config)
        baseline = self._run_reports(faulter, models, config,
                                     backend)

        if harden_models is None:
            harden_models = ("skip",)
        entry = approach_by_name(approach)
        # only approaches that *consume* fault models while hardening
        # receive them; for the others they would merely duplicate
        # step 3
        fault_models = (tuple(harden_models)
                        if entry.consumes_fault_models else ())
        result = entry.harden(
            self.exe, self.good_input, self.bad_input, self.oracle,
            models=fault_models, name=self.name, **harden_kwargs)

        hardened_faulter = Faulter(
            result.hardened, self.good_input, self.bad_input,
            self.oracle, name=f"{self.name}-hardened",
            max_steps=self.max_steps,
            # the hardened image has different bytes, hence different
            # artifact keys — sharing the store is safe and lets the
            # re-fault campaign cache its own derivations
            artifacts=config.artifact_store())
        hardened = self._run_reports(hardened_faulter, models, config,
                                     backend)

        diff = differential_report(
            baseline, hardened, result.provenance, target=self.name,
            section_of_original=_section_namer(self.exe),
            section_of_rewritten=_section_namer(result.hardened))
        return EvaluationResult(
            approach=approach,
            result=result,
            baseline_reports=baseline,
            hardened_reports=hardened,
            diff=diff,
        )

    def __repr__(self):
        return (f"Target({self.name!r}, "
                f"oracle={self.oracle.describe()})")


def hardened_elf(result: HardeningResult) -> bytes:
    """Serialize a hardening result to ELF bytes."""
    return write_elf(result.hardened)


@dataclass
class EvaluationResult:
    """Outcome of one baseline -> harden -> re-fault -> diff cycle."""

    approach: str
    result: HardeningResult
    baseline_reports: dict[str, CampaignReport] = field(
        default_factory=dict)
    hardened_reports: dict[str, CampaignReport] = field(
        default_factory=dict)
    diff: DifferentialReport = field(
        default_factory=lambda: DifferentialReport(target="target"))

    @property
    def hardened(self) -> Executable:
        return self.result.hardened

    @property
    def provenance(self) -> ProvenanceMap:
        return self.result.provenance

    def to_dict(self) -> dict:
        return {
            "approach": self.approach,
            "harden": self.result.to_dict(),
            "baseline_reports": {
                model: report.to_dict()
                for model, report in self.baseline_reports.items()
            },
            "hardened_reports": {
                model: report.to_dict()
                for model, report in self.hardened_reports.items()
            },
            "diff": self.diff.to_dict(),
        }

    def report(self) -> str:
        return "\n".join((self.result.report(), self.diff.table()))


# ---------------------------------------------------------------------------
# deprecated free-function shims (pre-session API)
# ---------------------------------------------------------------------------


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.api.{old} is deprecated; use {new} "
        "(see docs/api.md for the migration path)",
        DeprecationWarning, stacklevel=3)


def find_vulnerabilities(image: Union[Executable, bytes],
                         good_input: bytes,
                         bad_input: bytes,
                         grant_marker: Union[Oracle, bytes],
                         models: Sequence[str] = ("skip", "bitflip"),
                         name: str = "target",
                         backend: Union[str, object, None] = None,
                         checkpoint_interval: Union[int, float,
                                                    None] = None,
                         workers: Union[int, None] = None,
                         k_faults: int = 1,
                         samples: int = 200,
                         seed: int = 0,
                         stream: Union[bool, None] = None,
                         max_resident_points: Union[int, None] = None
                         ) -> dict[str, CampaignReport]:
    """Deprecated shim over :meth:`Target.campaign`
    (bit-identical reports)."""
    _deprecated("find_vulnerabilities", "Target.campaign")
    config = EngineConfig(
        backend=backend, checkpoint_interval=checkpoint_interval,
        workers=workers, k_faults=k_faults, samples=samples,
        seed=seed, stream=stream,
        max_resident_points=max_resident_points)
    target = Target(image, good_input, bad_input, grant_marker,
                    name=name)
    return target.campaign(models, config)


def harden_binary(image: Union[Executable, bytes],
                  good_input: bytes,
                  bad_input: bytes,
                  grant_marker: Union[Oracle, bytes],
                  approach: str = "faulter+patcher",
                  fault_models: Sequence[str] = ("skip",),
                  name: str = "target",
                  **kwargs) -> HardeningResult:
    """Deprecated shim over :meth:`Target.harden`
    (bit-identical results)."""
    _deprecated("harden_binary", "Target.harden")
    target = Target(image, good_input, bad_input, grant_marker,
                    name=name)
    return target.harden(approach, fault_models=fault_models,
                         **kwargs)


def evaluate_countermeasures(image: Union[Executable, bytes],
                             good_input: bytes,
                             bad_input: bytes,
                             grant_marker: Union[Oracle, bytes],
                             approach: str = "faulter+patcher",
                             models: Sequence[str] = ("skip",),
                             harden_models: Optional[Sequence[str]]
                             = None,
                             name: str = "target",
                             backend: Union[str, object, None] = None,
                             checkpoint_interval: Union[int, float,
                                                        None] = None,
                             workers: Union[int, None] = None,
                             stream: Union[bool, None] = None,
                             max_resident_points: Union[int, None]
                             = None,
                             **harden_kwargs) -> EvaluationResult:
    """Deprecated shim over :meth:`Target.evaluate`
    (bit-identical reports)."""
    _deprecated("evaluate_countermeasures", "Target.evaluate")
    config = EngineConfig(
        backend=backend, checkpoint_interval=checkpoint_interval,
        workers=workers, stream=stream,
        max_resident_points=max_resident_points)
    target = Target(image, good_input, bad_input, grant_marker,
                    name=name)
    return target.evaluate(approach=approach, models=models,
                           config=config, harden_models=harden_models,
                           **harden_kwargs)
