"""Top-level convenience API.

Two entry points mirror the paper's two methodologies::

    from repro.api import find_vulnerabilities, harden_binary

    report = find_vulnerabilities(exe, good, bad, marker,
                                  models=("skip", "bitflip"))

    result = harden_binary(exe, good_input=good, bad_input=bad,
                           grant_marker=marker,
                           approach="faulter+patcher")   # or "hybrid"
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.binfmt.image import Executable
from repro.binfmt.reader import read_elf
from repro.binfmt.writer import write_elf
from repro.faulter.campaign import Faulter
from repro.faulter.engine import resolve_backend
from repro.faulter.report import CampaignReport
from repro.hybrid.pipeline import HybridResult, hybrid_harden
from repro.patcher.loop import FaulterPatcherLoop, HardenResult

APPROACHES = ("faulter+patcher", "hybrid")


def _as_executable(image: Union[Executable, bytes]) -> Executable:
    if isinstance(image, (bytes, bytearray)):
        return read_elf(bytes(image))
    return image


def find_vulnerabilities(image: Union[Executable, bytes],
                         good_input: bytes,
                         bad_input: bytes,
                         grant_marker: bytes,
                         models: Sequence[str] = ("skip", "bitflip"),
                         name: str = "target",
                         backend: Union[str, object, None] = None,
                         checkpoint_interval: Union[int, float,
                                                    None] = None,
                         workers: Union[int, None] = None,
                         k_faults: int = 1,
                         samples: int = 200,
                         seed: int = 0,
                         stream: Union[bool, None] = None,
                         max_resident_points: Union[int, None] = None
                         ) -> dict[str, CampaignReport]:
    """Run fault campaigns against a binary (the faulter alone).

    Engine knobs: ``backend`` picks the execution backend
    (``"sequential"``/``"multiprocess"`` or an
    :class:`~repro.faulter.engine.ExecutionBackend` instance),
    ``checkpoint_interval`` enables trace-checkpoint replay,
    ``workers`` sizes the multiprocess pool, and ``k_faults`` > 1
    switches to the sampled multi-fault campaign (``samples`` runs
    drawn with ``seed``).  ``stream`` toggles bounded streaming
    execution (default on) and ``max_resident_points`` sizes its
    reorder window — the peak number of fault points resident at
    once, regardless of the population size.
    """
    faulter = Faulter(_as_executable(image), good_input, bad_input,
                      grant_marker, name=name)
    resolved = resolve_backend(backend, workers=workers,
                               checkpoint_interval=checkpoint_interval,
                               stream=stream,
                               max_resident_points=max_resident_points)
    if k_faults > 1:
        reports = {}
        for model in models:
            report = faulter.run_k_fault_campaign(
                model, k=k_faults, samples=samples, seed=seed,
                backend=resolved)
            reports[report.model] = report
        return reports
    return faulter.run_all(models, backend=resolved)


def harden_binary(image: Union[Executable, bytes],
                  good_input: bytes,
                  bad_input: bytes,
                  grant_marker: bytes,
                  approach: str = "faulter+patcher",
                  fault_models: Sequence[str] = ("skip",),
                  name: str = "target",
                  **kwargs) -> Union[HardenResult, HybridResult]:
    """Harden a binary with one of the paper's two approaches.

    ``approach="faulter+patcher"`` runs the iterative Fig. 2 loop
    (extra kwargs: ``max_iterations``, ``symbolization``);
    ``approach="hybrid"`` runs the lift-harden-lower pipeline of
    Fig. 3 (extra kwargs: ``uid_seed``, ``branch_filter``,
    ``fold_constants``).
    """
    exe = _as_executable(image)
    if approach == "faulter+patcher":
        loop = FaulterPatcherLoop(
            exe, good_input, bad_input, grant_marker,
            models=fault_models, name=name, **kwargs)
        return loop.run()
    if approach == "hybrid":
        return hybrid_harden(
            exe, good_input, bad_input, grant_marker, name=name,
            models=fault_models, **kwargs)
    raise ValueError(
        f"unknown approach {approach!r}; pick one of {APPROACHES}")


def hardened_elf(result: Union[HardenResult, HybridResult]) -> bytes:
    """Serialize a hardening result to ELF bytes."""
    return write_elf(result.hardened)
