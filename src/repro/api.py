"""Top-level convenience API.

Three entry points mirror the paper's methodologies::

    from repro.api import (find_vulnerabilities, harden_binary,
                           evaluate_countermeasures)

    report = find_vulnerabilities(exe, good, bad, marker,
                                  models=("skip", "bitflip"))

    result = harden_binary(exe, good_input=good, bad_input=bad,
                           grant_marker=marker,
                           approach="faulter+patcher")   # or "hybrid",
                                                         # or "detour"

    evaluation = evaluate_countermeasures(exe, good, bad, marker,
                                          approach="faulter+patcher")
    print(evaluation.diff.table())

``evaluate_countermeasures`` is the paper's actual evaluation loop
(Tables III-V): baseline campaign -> harden -> re-fault -> join the two
campaigns point-by-point through the rewrite's provenance map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.binfmt.image import Executable
from repro.binfmt.reader import read_elf
from repro.binfmt.writer import write_elf
from repro.detour.rewriter import DetourResult, detour_harden
from repro.faulter.campaign import Faulter
from repro.faulter.engine import resolve_backend
from repro.faulter.models import model_by_name
from repro.faulter.report import (
    CampaignReport,
    DifferentialReport,
    differential_report,
)
from repro.hybrid.pipeline import HybridResult, hybrid_harden
from repro.patcher.loop import FaulterPatcherLoop, HardenResult
from repro.provenance import ProvenanceMap

APPROACHES = ("faulter+patcher", "hybrid", "detour")

HardeningResult = Union[HardenResult, HybridResult, DetourResult]


def _as_executable(image: Union[Executable, bytes]) -> Executable:
    if isinstance(image, (bytes, bytearray)):
        return read_elf(bytes(image))
    return image


def _encoding_family(models: Sequence) -> tuple:
    """Restrict ``models`` to the encoding family, defaulting to skip.

    The Fig. 2 patch loop's duplication patterns protect against fetch
    faults; iterating it on a state model would churn expensive
    campaigns it can never converge.  State models stay
    evaluation-only (see :func:`evaluate_countermeasures`).
    """
    def family(model):
        if isinstance(model, str):
            return model_by_name(model).family
        return model.family

    return tuple(m for m in models if family(m) == "encoding") \
        or ("skip",)


def find_vulnerabilities(image: Union[Executable, bytes],
                         good_input: bytes,
                         bad_input: bytes,
                         grant_marker: bytes,
                         models: Sequence[str] = ("skip", "bitflip"),
                         name: str = "target",
                         backend: Union[str, object, None] = None,
                         checkpoint_interval: Union[int, float,
                                                    None] = None,
                         workers: Union[int, None] = None,
                         k_faults: int = 1,
                         samples: int = 200,
                         seed: int = 0,
                         stream: Union[bool, None] = None,
                         max_resident_points: Union[int, None] = None
                         ) -> dict[str, CampaignReport]:
    """Run fault campaigns against a binary (the faulter alone).

    ``models`` names members of the ``repro.faulter.models`` registry
    — encoding faults (``skip``/``bitflip``/``stuck0``) and state
    faults (``reg-bitflip``/``flag-stuck``/``mem-bitflip``/
    ``branch-invert``) run through the same engine.
    Engine knobs: ``backend`` picks the execution backend
    (``"sequential"``/``"multiprocess"`` or an
    :class:`~repro.faulter.engine.ExecutionBackend` instance),
    ``checkpoint_interval`` enables trace-checkpoint replay,
    ``workers`` sizes the multiprocess pool, and ``k_faults`` > 1
    switches to the sampled multi-fault campaign (``samples`` runs
    drawn with ``seed``).  ``stream`` toggles bounded streaming
    execution (default on) and ``max_resident_points`` sizes its
    reorder window — the peak number of fault points resident at
    once, regardless of the population size.
    """
    faulter = Faulter(_as_executable(image), good_input, bad_input,
                      grant_marker, name=name)
    resolved = resolve_backend(backend, workers=workers,
                               checkpoint_interval=checkpoint_interval,
                               stream=stream,
                               max_resident_points=max_resident_points)
    if k_faults > 1:
        reports = {}
        for model in models:
            report = faulter.run_k_fault_campaign(
                model, k=k_faults, samples=samples, seed=seed,
                backend=resolved)
            reports[report.model] = report
        return reports
    return faulter.run_all(models, backend=resolved)


def harden_binary(image: Union[Executable, bytes],
                  good_input: bytes,
                  bad_input: bytes,
                  grant_marker: bytes,
                  approach: str = "faulter+patcher",
                  fault_models: Sequence[str] = ("skip",),
                  name: str = "target",
                  **kwargs) -> HardeningResult:
    """Harden a binary with one of the paper's rewriting approaches.

    ``approach="faulter+patcher"`` runs the iterative Fig. 2 loop
    (extra kwargs: ``max_iterations``, ``symbolization``);
    ``approach="hybrid"`` runs the lift-harden-lower pipeline of
    Fig. 3 (extra kwargs: ``uid_seed``, ``branch_filter``,
    ``fold_constants``); ``approach="detour"`` applies the
    duplication countermeasure through trampolines (Section III-B's
    classic alternative).  All three results carry a
    :class:`~repro.provenance.ProvenanceMap` for differential
    evaluation.

    The Fig. 2 loop iterates only on the *encoding-family* members of
    ``fault_models`` (falling back to ``skip`` when none are given);
    state models are evaluated against a hardened binary with
    :func:`find_vulnerabilities` or :func:`evaluate_countermeasures`.
    """
    exe = _as_executable(image)
    if approach == "faulter+patcher":
        loop = FaulterPatcherLoop(
            exe, good_input, bad_input, grant_marker,
            models=_encoding_family(fault_models), name=name, **kwargs)
        return loop.run()
    if approach == "hybrid":
        return hybrid_harden(
            exe, good_input, bad_input, grant_marker, name=name,
            models=fault_models, **kwargs)
    if approach == "detour":
        return detour_harden(
            exe, good_input, bad_input, grant_marker, name=name,
            models=fault_models, **kwargs)
    raise ValueError(
        f"unknown approach {approach!r}; pick one of {APPROACHES}")


def hardened_elf(result: HardeningResult) -> bytes:
    """Serialize a hardening result to ELF bytes."""
    return write_elf(result.hardened)


# ---------------------------------------------------------------------------
# differential countermeasure evaluation (the paper's Tables III-V loop)
# ---------------------------------------------------------------------------


@dataclass
class EvaluationResult:
    """Outcome of one baseline -> harden -> re-fault -> diff cycle."""

    approach: str
    result: HardeningResult
    baseline_reports: dict[str, CampaignReport] = field(
        default_factory=dict)
    hardened_reports: dict[str, CampaignReport] = field(
        default_factory=dict)
    diff: DifferentialReport = field(
        default_factory=lambda: DifferentialReport(target="target"))

    @property
    def hardened(self) -> Executable:
        return self.result.hardened

    @property
    def provenance(self) -> ProvenanceMap:
        return self.result.provenance

    def to_dict(self) -> dict:
        return {
            "approach": self.approach,
            "harden": self.result.to_dict(),
            "baseline_reports": {
                model: report.to_dict()
                for model, report in self.baseline_reports.items()
            },
            "hardened_reports": {
                model: report.to_dict()
                for model, report in self.hardened_reports.items()
            },
            "diff": self.diff.to_dict(),
        }

    def report(self) -> str:
        return "\n".join((self.result.report(), self.diff.table()))


def _section_namer(exe: Executable):
    def name_of(address: int) -> str:
        section = exe.section_at(address)
        return section.name if section is not None else "?"
    return name_of


def evaluate_countermeasures(image: Union[Executable, bytes],
                             good_input: bytes,
                             bad_input: bytes,
                             grant_marker: bytes,
                             approach: str = "faulter+patcher",
                             models: Sequence[str] = ("skip",),
                             harden_models: Optional[Sequence[str]]
                             = None,
                             name: str = "target",
                             backend: Union[str, object, None] = None,
                             checkpoint_interval: Union[int, float,
                                                        None] = None,
                             workers: Union[int, None] = None,
                             stream: Union[bool, None] = None,
                             max_resident_points: Union[int, None]
                             = None,
                             **harden_kwargs) -> EvaluationResult:
    """Run the full differential evaluation loop against one binary.

    1. baseline fault campaigns (``models``) against the original,
    2. harden with ``approach`` (the Fig. 2 loop iterates on the
       *encoding-family* members of ``harden_models``, default
       ``("skip",)``; the other approaches harden unconditionally),
    3. re-fault the hardened binary under the same ``models`` and
       engine knobs (streaming engine, any backend),
    4. join both campaigns through the rewrite's provenance map into a
       :class:`~repro.faulter.report.DifferentialReport` classifying
       every point as eliminated/surviving/introduced/unmapped.

    State-family models (``reg-bitflip``, ``flag-stuck``,
    ``mem-bitflip``, ``branch-invert``) are evaluation-only here: the
    patcher's duplication patterns are designed against fetch faults,
    so the loop iterates on the encoding members (falling back to
    ``skip`` when none are given) while steps 1 and 3 campaign under
    every requested model — which is exactly how one asks whether a
    countermeasure survives data faults it was never designed for.
    """
    exe = _as_executable(image)
    resolved = resolve_backend(backend, workers=workers,
                               checkpoint_interval=checkpoint_interval,
                               stream=stream,
                               max_resident_points=max_resident_points)
    baseline_faulter = Faulter(exe, good_input, bad_input, grant_marker,
                               name=name)
    baseline = baseline_faulter.run_all(models, backend=resolved)

    if harden_models is None:
        harden_models = ("skip",)
    # only the Fig. 2 loop *consumes* fault models while hardening (and
    # harden_binary restricts it to the encoding family); for the
    # other approaches they would merely duplicate step 3
    fault_models = (harden_models if approach == "faulter+patcher"
                    else ())
    result = harden_binary(exe, good_input, bad_input, grant_marker,
                           approach=approach, fault_models=fault_models,
                           name=name, **harden_kwargs)

    hardened_faulter = Faulter(result.hardened, good_input, bad_input,
                               grant_marker, name=f"{name}-hardened")
    hardened = hardened_faulter.run_all(models, backend=resolved)

    diff = differential_report(
        baseline, hardened, result.provenance, target=name,
        section_of_original=_section_namer(exe),
        section_of_rewritten=_section_namer(result.hardened))
    return EvaluationResult(
        approach=approach,
        result=result,
        baseline_reports=baseline,
        hardened_reports=hardened,
        diff=diff,
    )
