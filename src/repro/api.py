"""Top-level convenience API.

Two entry points mirror the paper's two methodologies::

    from repro.api import find_vulnerabilities, harden_binary

    report = find_vulnerabilities(exe, good, bad, marker,
                                  models=("skip", "bitflip"))

    result = harden_binary(exe, good_input=good, bad_input=bad,
                           grant_marker=marker,
                           approach="faulter+patcher")   # or "hybrid"
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.binfmt.image import Executable
from repro.binfmt.reader import read_elf
from repro.binfmt.writer import write_elf
from repro.faulter.campaign import Faulter
from repro.faulter.report import CampaignReport
from repro.hybrid.pipeline import HybridResult, hybrid_harden
from repro.patcher.loop import FaulterPatcherLoop, HardenResult

APPROACHES = ("faulter+patcher", "hybrid")


def _as_executable(image: Union[Executable, bytes]) -> Executable:
    if isinstance(image, (bytes, bytearray)):
        return read_elf(bytes(image))
    return image


def find_vulnerabilities(image: Union[Executable, bytes],
                         good_input: bytes,
                         bad_input: bytes,
                         grant_marker: bytes,
                         models: Sequence[str] = ("skip", "bitflip"),
                         name: str = "target"
                         ) -> dict[str, CampaignReport]:
    """Run fault campaigns against a binary (the faulter alone)."""
    faulter = Faulter(_as_executable(image), good_input, bad_input,
                      grant_marker, name=name)
    return faulter.run_all(models)


def harden_binary(image: Union[Executable, bytes],
                  good_input: bytes,
                  bad_input: bytes,
                  grant_marker: bytes,
                  approach: str = "faulter+patcher",
                  fault_models: Sequence[str] = ("skip",),
                  name: str = "target",
                  **kwargs) -> Union[HardenResult, HybridResult]:
    """Harden a binary with one of the paper's two approaches.

    ``approach="faulter+patcher"`` runs the iterative Fig. 2 loop
    (extra kwargs: ``max_iterations``, ``symbolization``);
    ``approach="hybrid"`` runs the lift-harden-lower pipeline of
    Fig. 3 (extra kwargs: ``uid_seed``, ``branch_filter``,
    ``fold_constants``).
    """
    exe = _as_executable(image)
    if approach == "faulter+patcher":
        loop = FaulterPatcherLoop(
            exe, good_input, bad_input, grant_marker,
            models=fault_models, name=name, **kwargs)
        return loop.run()
    if approach == "hybrid":
        return hybrid_harden(
            exe, good_input, bad_input, grant_marker, name=name,
            models=fault_models, **kwargs)
    raise ValueError(
        f"unknown approach {approach!r}; pick one of {APPROACHES}")


def hardened_elf(result: Union[HardenResult, HybridResult]) -> bytes:
    """Serialize a hardening result to ELF bytes."""
    return write_elf(result.hardened)
