"""IR -> x86-64 lowering backend (the reproduction's ``llc`` substitute).

Pipeline: critical-edge splitting -> instruction selection to a virtual-
register machine IR (with phi-copy insertion) -> block-level liveness ->
linear-scan register allocation with spilling -> frame construction ->
assembly emission through the repro assembler.  The guest's data
sections are pinned at their original virtual addresses, because lifted
code references them as absolute constants; the regenerated code lives
at a fresh base above them.
"""

from repro.lower.pipeline import lower_module, lower_executable

__all__ = ["lower_module", "lower_executable"]
