"""Linear-scan register allocation with spilling.

Allocatable pool: callee-ish scratch GPRs that the syscall pseudo never
touches.  ``rax``/``rdx``/``rdi`` are reserved as spill/expansion
scratch; ``rsi``/``rcx``/``r11`` are syscall argument/clobber space;
``rsp``/``rbp`` hold the runtime stack and frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import LowerError
from repro.isa.registers import Register, reg
from repro.lower.mir import MFunction, MInsn, MMem, VReg

POOL = [reg(name) for name in
        ("rbx", "r8", "r9", "r10", "r12", "r13", "r14", "r15")]
SCRATCH = [reg(name) for name in ("rax", "rdx", "rdi")]


@dataclass
class Allocation:
    """Result of register allocation."""

    assignment: dict[VReg, Register] = field(default_factory=dict)
    slots: dict[VReg, int] = field(default_factory=dict)

    @property
    def frame_slots(self) -> int:
        return len(self.slots)

    def location(self, vreg: VReg) -> Union[Register, int]:
        if vreg in self.assignment:
            return self.assignment[vreg]
        return self.slots[vreg]


def _block_liveness(mfn: MFunction):
    """Live-in/out vreg sets per block (backward dataflow)."""
    successors: dict[str, list[str]] = {}
    for block in mfn.blocks:
        targets = []
        for insn in block.insns:
            if insn.op in ("jmp", "jcc"):
                targets.append(insn.operands[0])
        successors[block.name] = targets

    gen: dict[str, set] = {}
    kill: dict[str, set] = {}
    for block in mfn.blocks:
        used: set = set()
        defined: set = set()
        for insn in block.insns:
            for vreg in insn.uses():
                if vreg not in defined:
                    used.add(vreg)
            defined.update(insn.defs())
        gen[block.name] = used
        kill[block.name] = defined

    live_in = {b.name: set() for b in mfn.blocks}
    live_out = {b.name: set() for b in mfn.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(mfn.blocks):
            out: set = set()
            for successor in successors[block.name]:
                out |= live_in[successor]
            new_in = gen[block.name] | (out - kill[block.name])
            if out != live_out[block.name] or \
                    new_in != live_in[block.name]:
                live_out[block.name] = out
                live_in[block.name] = new_in
                changed = True
    return live_in, live_out


def _build_intervals(mfn: MFunction):
    """Coarse [start, end] live interval per vreg."""
    live_in, live_out = _block_liveness(mfn)
    position = 0
    start: dict[VReg, int] = {}
    end: dict[VReg, int] = {}

    def touch(vreg: VReg, where: int):
        if vreg not in start:
            start[vreg] = where
        end[vreg] = max(end.get(vreg, where), where)

    for block in mfn.blocks:
        block_start = position
        for vreg in live_in[block.name]:
            touch(vreg, block_start)
        for insn in block.insns:
            for vreg in insn.uses():
                touch(vreg, position)
            for vreg in insn.defs():
                touch(vreg, position)
            position += 1
        block_end = position
        for vreg in live_out[block.name]:
            touch(vreg, block_end)
    return sorted(((start[v], end[v], v) for v in start),
                  key=lambda t: (t[0], t[1]))


def allocate(mfn: MFunction) -> Allocation:
    """Poletto-style linear scan over coarse intervals."""
    intervals = _build_intervals(mfn)
    allocation = Allocation()
    active: list[tuple[int, int, VReg]] = []  # (end, start, vreg)
    free = list(POOL)

    def expire(current_start: int):
        nonlocal active
        keep = []
        for interval_end, interval_start, vreg in active:
            if interval_end < current_start:
                free.append(allocation.assignment[vreg])
            else:
                keep.append((interval_end, interval_start, vreg))
        active = keep

    next_slot = 0
    for interval_start, interval_end, vreg in intervals:
        expire(interval_start)
        if free:
            register = free.pop()
            allocation.assignment[vreg] = register
            active.append((interval_end, interval_start, vreg))
            active.sort()
            continue
        # spill the active interval with the furthest end
        furthest = active[-1]
        if furthest[0] > interval_end:
            spilled_end, _, spilled_vreg = active.pop()
            register = allocation.assignment.pop(spilled_vreg)
            allocation.slots[spilled_vreg] = next_slot
            next_slot += 1
            allocation.assignment[vreg] = register
            active.append((interval_end, interval_start, vreg))
            active.sort()
        else:
            allocation.slots[vreg] = next_slot
            next_slot += 1
    return allocation


def rewrite_spills(mfn: MFunction, allocation: Allocation) -> MFunction:
    """Insert slot loads/stores; after this every operand is physical.

    Spill slots live at ``[rbp - 8*(slot+1)]``.  Scratch registers are
    assigned per instruction (an instruction references at most three
    spilled vregs: two uses + a def or memory base).
    """
    for block in mfn.blocks:
        new_insns: list[MInsn] = []
        for insn in block.insns:
            scratch_pool = list(SCRATCH)
            taken: dict[VReg, Register] = {}

            def physical(vreg: VReg) -> Register:
                location = allocation.location(vreg)
                if isinstance(location, Register):
                    return location
                if vreg in taken:
                    return taken[vreg]
                if not scratch_pool:
                    raise LowerError("out of spill scratch registers")
                register = scratch_pool.pop()
                taken[vreg] = register
                return register

            uses = insn.uses()
            defs = insn.defs()
            loads = []
            for vreg in dict.fromkeys(uses):
                location = allocation.location(vreg)
                if not isinstance(location, Register):
                    register = physical(vreg)
                    loads.append(MInsn(
                        "load", [register, MMem(reg("rbp"),
                                                -8 * (location + 1))]))
            stores = []
            for vreg in defs:
                location = allocation.location(vreg)
                if not isinstance(location, Register):
                    register = physical(vreg)
                    stores.append(MInsn(
                        "store", [MMem(reg("rbp"), -8 * (location + 1)),
                                  register]))

            new_operands = []
            for operand in insn.operands:
                if isinstance(operand, VReg):
                    new_operands.append(physical(operand))
                elif isinstance(operand, MMem) and \
                        isinstance(operand.base, VReg):
                    new_operands.append(MMem(physical(operand.base),
                                             operand.disp))
                else:
                    new_operands.append(operand)
            replaced = MInsn(insn.op, new_operands, cond=insn.cond,
                             width=insn.width)
            new_insns.extend(loads)
            new_insns.append(replaced)
            new_insns.extend(stores)
        block.insns = new_insns
    return mfn
