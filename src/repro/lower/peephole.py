"""MIR peephole cleanups: copy propagation, dead defs, self-moves.

These run between instruction selection and register allocation (plus a
post-allocation self-move sweep) and are what keeps the lift+lower
translation overhead in a realistic band rather than a naive-codegen
explosion.
"""

from __future__ import annotations

from collections import Counter

from repro.isa.registers import Register
from repro.lower.mir import MFunction, MImm, MMem, OPCODES, VReg

_INT32_MIN, _INT32_MAX = -(1 << 31), (1 << 31) - 1

# ops whose rhs/source position accepts an imm32
_IMM_RHS_OK = {"mov", "add", "sub", "and", "or", "xor", "cmp", "test",
               "store", "syscall"}

_PURE_OPS = {"mov", "load", "setcc", "cmov", "add", "sub", "and", "or",
             "xor", "imul", "shl", "shr", "sar", "neg", "not"}


def _fits32(value: int) -> bool:
    return _INT32_MIN <= value <= _INT32_MAX


def copy_propagate(mfn: MFunction) -> int:
    """Forward, per-block propagation of ``mov dst, src`` copies."""
    rewrites = 0
    for block in mfn.blocks:
        copies: dict[VReg, object] = {}

        def resolve(operand):
            seen = set()
            while isinstance(operand, VReg) and operand in copies and \
                    operand not in seen:
                seen.add(operand)
                operand = copies[operand]
            return operand

        for insn in block.insns:
            n_defs, reads_dst = OPCODES[insn.op]
            for index, operand in enumerate(insn.operands):
                is_def_slot = (index == 0 and n_defs == 1)
                if isinstance(operand, MMem) and \
                        isinstance(operand.base, VReg):
                    base = resolve(operand.base)
                    if isinstance(base, VReg) and \
                            base is not operand.base:
                        insn.operands[index] = MMem(base, operand.disp)
                        rewrites += 1
                    continue
                if is_def_slot or not isinstance(operand, VReg):
                    continue
                value = resolve(operand)
                if value is operand:
                    continue
                if isinstance(value, VReg):
                    insn.operands[index] = value
                    rewrites += 1
                elif isinstance(value, MImm):
                    if insn.op in _IMM_RHS_OK and index >= 1 and \
                            _fits32(value.value):
                        insn.operands[index] = value
                        rewrites += 1
            # update the copy environment
            defs = insn.defs()
            for defined in defs:
                copies.pop(defined, None)
                for key in [k for k, v in copies.items()
                            if isinstance(v, VReg) and v == defined]:
                    copies.pop(key)
            if insn.op == "mov":
                dst, src = insn.operands
                if isinstance(dst, VReg) and \
                        isinstance(src, (VReg, MImm)) and src != dst:
                    copies[dst] = src
    return rewrites


def eliminate_dead_defs(mfn: MFunction) -> int:
    """Remove pure instructions whose results nobody reads."""
    removed_total = 0
    changed = True
    while changed:
        changed = False
        use_counts: Counter = Counter()
        for block in mfn.blocks:
            for insn in block.insns:
                for used in insn.uses():
                    use_counts[used] += 1
        for block in mfn.blocks:
            kept = []
            for insn in block.insns:
                defs = insn.defs()
                if insn.op in _PURE_OPS and defs:
                    own_uses = Counter(insn.uses())
                    dead = all(
                        use_counts[d] - own_uses.get(d, 0) == 0
                        for d in defs)
                    if dead:
                        changed = True
                        removed_total += 1
                        continue
                kept.append(insn)
            block.insns = kept
    return removed_total


def remove_self_moves(mfn: MFunction) -> int:
    """Post-allocation: drop ``mov r, r``."""
    removed = 0
    for block in mfn.blocks:
        kept = []
        for insn in block.insns:
            if insn.op == "mov":
                dst, src = insn.operands
                if isinstance(dst, Register) and isinstance(src, Register) \
                        and dst is src:
                    removed += 1
                    continue
            kept.append(insn)
        block.insns = kept
    return removed


def optimize_mir(mfn: MFunction) -> dict:
    """Pre-allocation pipeline; returns a small stats dict."""
    stats = {"copy_prop": 0, "dead": 0}
    for _ in range(3):
        stats["copy_prop"] += copy_propagate(mfn)
        removed = eliminate_dead_defs(mfn)
        stats["dead"] += removed
        if not removed:
            break
    return stats
