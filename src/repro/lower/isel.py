"""Instruction selection: SSA IR -> MIR with virtual registers.

All SSA values live in 64-bit virtual registers, zero-extended to their
IR width.  Sub-64-bit operations re-mask their results; signed
comparisons and arithmetic shifts sign-extend their inputs first.  Phis
are lowered to parallel-safe copy sequences in predecessors (critical
edges must be split beforehand).
"""

from __future__ import annotations

from repro.errors import LowerError
from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, CondBr, ICmp, IntToPtr, Load, Phi, PtrToInt,
    Ret, Select, SExt, Store, Switch, Trunc, Unreachable, ZExt)
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, Undef
from repro.isa.cond import Cond
from repro.lower.mir import MBlock, MFunction, MImm, MInsn, MMem, VReg

_PRED_TO_COND = {
    "eq": Cond.E, "ne": Cond.NE,
    "ult": Cond.B, "ule": Cond.BE, "ugt": Cond.A, "uge": Cond.AE,
    "slt": Cond.L, "sle": Cond.LE, "sgt": Cond.G, "sge": Cond.GE,
}
_SIGNED_PREDS = {"slt", "sle", "sgt", "sge"}

_INT32_MIN, _INT32_MAX = -(1 << 31), (1 << 31) - 1


def split_critical_edges(function: Function) -> int:
    """Split edges from multi-successor blocks into multi-pred blocks."""
    count = 0
    for block in list(function.blocks):
        terminator = block.terminator
        if terminator is None:
            continue
        successors = terminator.successors()
        if len(successors) < 2:
            continue
        for successor in list(dict.fromkeys(successors)):
            if len(successor.predecessors()) < 2 or not successor.phis():
                continue
            middle = function.add_block(
                function.fresh_name("crit"), after=block)
            middle.copy_guest_origin(block)
            middle.append(Br(successor))
            terminator.replace_successor(successor, middle)
            for phi in successor.phis():
                phi.replace_incoming_block(block, middle)
            count += 1
    return count


class ISel:
    """Selects MIR for one IR function."""

    def __init__(self, function: Function):
        self.fn = function
        self.mfn = MFunction(function.name)
        self.values: dict[int, VReg] = {}
        self.block_names: dict[int, str] = {}
        self._fused: set[int] = set()  # icmp/xor ids folded into branches

    # -- value mapping -----------------------------------------------------

    def vreg_of(self, value) -> VReg:
        key = id(value)
        if key not in self.values:
            self.values[key] = self.mfn.new_vreg()
        return self.values[key]

    def operand(self, value, block: MBlock):
        """MIR operand for an IR value; constants fold into immediates."""
        if isinstance(value, Constant):
            return MImm(value.unsigned
                        if value.type.bits < 64 else value.value)
        if isinstance(value, Undef):
            return MImm(0)
        return self.vreg_of(value)

    def as_vreg(self, value, block: MBlock) -> VReg:
        """Force an IR value into a virtual register."""
        operand = self.operand(value, block)
        if isinstance(operand, VReg):
            return operand
        fresh = self.mfn.new_vreg()
        block.append(MInsn("mov", [fresh, operand]))
        return fresh

    def _imm_or_vreg(self, value, block: MBlock):
        """Immediate if it fits imm32, else a register."""
        operand = self.operand(value, block)
        if isinstance(operand, MImm) and not (
                _INT32_MIN <= operand.value <= _INT32_MAX):
            return self.as_vreg(value, block)
        return operand

    # -- driver ------------------------------------------------------------

    def run(self) -> MFunction:
        self.fn.renumber()
        for block in self.fn.blocks:
            name = f"L{block.name}"
            self.block_names[id(block)] = name
            self.mfn.blocks.append(MBlock(
                name,
                guest_address=block.guest_address,
                guest_size=block.guest_size,
                guest_derived=block.guest_derived))
        for block in self.fn.blocks:
            self._select_block(block)
        return self.mfn

    def _select_block(self, block: BasicBlock):
        mblock = self.mfn.block(self.block_names[id(block)])
        for instruction in block.instructions:
            if isinstance(instruction, Phi):
                self.vreg_of(instruction)  # assigned by predecessors
                continue
            if instruction.is_terminator:
                self._phi_copies(block, mblock)
                self._terminator(instruction, mblock)
                return
            self._select(instruction, mblock)
        raise LowerError(f"block {block.name} has no terminator")

    # -- phi copies -----------------------------------------------------------

    def _phi_copies(self, block: BasicBlock, mblock: MBlock):
        copies = []
        for successor in block.successors():
            for phi in successor.phis():
                value = phi.incoming_for(block)
                if value is None:
                    raise LowerError(
                        f"phi in {successor.name} missing incoming for "
                        f"{block.name}")
                copies.append((self.vreg_of(phi), value))
        if not copies:
            return
        # two-phase parallel copy: stage sources in temporaries first
        staged = []
        for destination, value in copies:
            temp = self.mfn.new_vreg()
            mblock.append(MInsn("mov",
                                [temp, self.operand(value, mblock)]))
            staged.append((destination, temp))
        for destination, temp in staged:
            mblock.append(MInsn("mov", [destination, temp]))

    # -- terminators ----------------------------------------------------------

    def _label(self, block: BasicBlock) -> str:
        return self.block_names[id(block)]

    def _terminator(self, instruction, mblock: MBlock):
        if isinstance(instruction, Br):
            mblock.append(MInsn("jmp", [self._label(instruction.target)]))
            return
        if isinstance(instruction, CondBr):
            fused = self._fusable_compare(instruction.cond)
            if fused is not None:
                icmp, invert = fused
                cond = _PRED_TO_COND[icmp.pred]
                if invert:
                    cond = cond.inverted
                self._emit_compare(icmp, mblock)
                mblock.append(MInsn(
                    "jcc", [self._label(instruction.if_true)], cond=cond))
            else:
                value = self.as_vreg(instruction.cond, mblock)
                mblock.append(MInsn("cmp", [value, MImm(0)]))
                mblock.append(MInsn(
                    "jcc", [self._label(instruction.if_true)],
                    cond=Cond.NE))
            mblock.append(MInsn("jmp",
                                [self._label(instruction.if_false)]))
            return
        if isinstance(instruction, Switch):
            value = self.as_vreg(instruction.value, mblock)
            if len(instruction.cases) == 1:
                # invert: fall through toward the case, jump to default
                constant, target = instruction.cases[0]
                case_operand = self._imm_or_vreg(constant, mblock)
                mblock.append(MInsn("cmp", [value, case_operand]))
                mblock.append(MInsn(
                    "jcc", [self._label(instruction.default)],
                    cond=Cond.NE))
                mblock.append(MInsn("jmp", [self._label(target)]))
                return
            for constant, target in instruction.cases:
                case_operand = self._imm_or_vreg(constant, mblock)
                mblock.append(MInsn("cmp", [value, case_operand]))
                mblock.append(MInsn("jcc", [self._label(target)],
                                    cond=Cond.E))
            mblock.append(MInsn("jmp",
                                [self._label(instruction.default)]))
            return
        if isinstance(instruction, (Ret, Unreachable)):
            mblock.append(MInsn("ud2" if isinstance(instruction,
                                                    Unreachable)
                                else "hlt", []))
            return
        raise LowerError(f"unhandled terminator {instruction.opcode}")

    # -- ordinary instructions -----------------------------------------------

    def _fusable_compare(self, cond):
        """(icmp, inverted) when the branch can consume flags directly.

        Requires the condition (and, for the xor-inverted form, the
        inner icmp) to have the branch as its only user, so skipping
        the standalone materialization is safe.
        """
        if isinstance(cond, ICmp) and len(cond.users) == 1:
            self._fused.add(id(cond))
            return cond, False
        if isinstance(cond, BinOp) and cond.op == "xor" and \
                len(cond.users) == 1 and \
                isinstance(cond.rhs, Constant) and \
                cond.rhs.unsigned == 1 and \
                isinstance(cond.lhs, ICmp) and len(cond.lhs.users) == 1:
            self._fused.add(id(cond))
            self._fused.add(id(cond.lhs))
            return cond.lhs, True
        return None

    def _emit_compare(self, i: ICmp, mblock: MBlock):
        """The cmp part of an icmp (shared by setcc and fused forms)."""
        bits = i.lhs.type.bits
        if i.pred in _SIGNED_PREDS and bits < 64:
            lhs = self._sign_extend_to_64(i.lhs, bits, mblock)
            rhs = self._sign_extend_to_64(i.rhs, bits, mblock)
        else:
            lhs = self.as_vreg(i.lhs, mblock)
            rhs = self._imm_or_vreg(i.rhs, mblock)
        mblock.append(MInsn("cmp", [lhs, rhs]))

    def _select(self, i, mblock: MBlock):
        if id(i) in self._fused:
            return  # folded into the consuming conditional branch
        if isinstance(i, BinOp):
            self._binop(i, mblock)
        elif isinstance(i, ICmp):
            self._icmp(i, mblock)
        elif isinstance(i, (ZExt, IntToPtr, PtrToInt)):
            source = self.operand(i.value, mblock)
            mblock.append(MInsn("mov", [self.vreg_of(i), source]))
        elif isinstance(i, SExt):
            self._sext(i, mblock)
        elif isinstance(i, Trunc):
            dst = self.vreg_of(i)
            mblock.append(MInsn("mov",
                                [dst, self.operand(i.value, mblock)]))
            if i.type.bits < 64:
                self._mask(dst, i.type.bits, mblock)
        elif isinstance(i, Load):
            base = self.as_vreg(i.pointer, mblock)
            mblock.append(MInsn("load", [self.vreg_of(i), MMem(base)],
                                width=i.type.bits // 8))
        elif isinstance(i, Store):
            self._store(i, mblock)
        elif isinstance(i, Select):
            cond, if_true, if_false = i.operands
            dst = self.vreg_of(i)
            mblock.append(MInsn("mov",
                                [dst, self.operand(if_false, mblock)]))
            true_reg = self.as_vreg(if_true, mblock)
            mblock.append(MInsn("cmp", [self.as_vreg(cond, mblock),
                                        MImm(0)]))
            mblock.append(MInsn("cmov", [dst, true_reg], cond=Cond.NE))
        elif isinstance(i, Call):
            self._call(i, mblock)
        elif isinstance(i, Alloca):
            raise LowerError(
                "alloca survived mem2reg; cannot lower stack slots")
        else:
            raise LowerError(f"unhandled instruction {i.opcode}")

    def _mask(self, dst: VReg, bits: int, mblock: MBlock):
        if bits >= 64:
            return
        if bits == 32:
            mask_reg = self.mfn.new_vreg()
            mblock.append(MInsn("mov", [mask_reg, MImm(0xFFFFFFFF)]))
            mblock.append(MInsn("and", [dst, mask_reg]))
        else:
            mblock.append(MInsn("and", [dst, MImm((1 << bits) - 1)]))

    def _sign_extend_to_64(self, value, bits: int, mblock: MBlock) -> VReg:
        reg = self.as_vreg(value, mblock)
        if bits >= 64:
            return reg
        extended = self.mfn.new_vreg()
        mblock.append(MInsn("mov", [extended, reg]))
        mblock.append(MInsn("shl", [extended, MImm(64 - bits)]))
        mblock.append(MInsn("sar", [extended, MImm(64 - bits)]))
        return extended

    def _binop(self, i: BinOp, mblock: MBlock):
        bits = i.type.bits
        dst = self.vreg_of(i)
        op = i.op
        if op in ("shl", "lshr", "ashr"):
            self._shift(i, mblock)
            return
        if op in ("udiv", "urem"):
            raise LowerError("integer division is not in the subset")
        mblock.append(MInsn("mov", [dst, self.operand(i.lhs, mblock)]))
        rhs = self._imm_or_vreg(i.rhs, mblock)
        mir_op = {"add": "add", "sub": "sub", "mul": "imul",
                  "and": "and", "or": "or", "xor": "xor"}[op]
        if mir_op == "imul" and isinstance(rhs, MImm):
            rhs = self.as_vreg(i.rhs, mblock)
        mblock.append(MInsn(mir_op, [dst, rhs]))
        if bits < 64 and op in ("add", "sub", "mul", "xor"):
            self._mask(dst, bits, mblock)

    def _shift(self, i: BinOp, mblock: MBlock):
        bits = i.type.bits
        dst = self.vreg_of(i)
        op = i.op
        if op == "ashr" and bits < 64:
            source = self._sign_extend_to_64(i.lhs, bits, mblock)
        else:
            source = self.as_vreg(i.lhs, mblock)
        mblock.append(MInsn("mov", [dst, source]))
        mir_op = {"shl": "shl", "lshr": "shr", "ashr": "sar"}[op]
        if isinstance(i.rhs, Constant):
            amount = i.rhs.unsigned & 63
            mblock.append(MInsn(mir_op, [dst, MImm(amount)]))
        else:
            mblock.append(MInsn(mir_op,
                                [dst, self.as_vreg(i.rhs, mblock)]))
        if bits < 64:
            self._mask(dst, bits, mblock)

    def _icmp(self, i: ICmp, mblock: MBlock):
        self._emit_compare(i, mblock)
        mblock.append(MInsn("setcc", [self.vreg_of(i)],
                            cond=_PRED_TO_COND[i.pred]))

    def _sext(self, i: SExt, mblock: MBlock):
        bits = i.value.type.bits
        extended = self._sign_extend_to_64(i.value, bits, mblock)
        dst = self.vreg_of(i)
        mblock.append(MInsn("mov", [dst, extended]))
        if i.type.bits < 64:
            self._mask(dst, i.type.bits, mblock)

    def _store(self, i: Store, mblock: MBlock):
        base = self.as_vreg(i.pointer, mblock)
        width = i.value.type.bits // 8
        operand = self.operand(i.value, mblock)
        if isinstance(operand, MImm) and not (
                _INT32_MIN <= operand.value <= _INT32_MAX and width >= 4
                or -128 <= operand.value <= 255 and width == 1):
            operand = self.as_vreg(i.value, mblock)
        mblock.append(MInsn("store", [MMem(base), operand], width=width))

    def _call(self, i: Call, mblock: MBlock):
        if i.callee == "syscall":
            args = [self._imm_or_vreg(a, mblock) for a in i.operands]
            while len(args) < 4:
                args.append(MImm(0))
            mblock.append(MInsn("syscall", [self.vreg_of(i)] + args))
            return
        if i.callee == "abort":
            mblock.append(MInsn("abort", []))
            return
        if i.callee == "halt":
            mblock.append(MInsn("hlt", []))
            return
        raise LowerError(f"unknown callee @{i.callee}")
