"""Machine IR: virtual-register instructions close to final assembly."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.isa.cond import Cond
from repro.isa.registers import Register


@dataclass(frozen=True)
class VReg:
    """Virtual register (64-bit)."""

    id: int

    def __str__(self):
        return f"v{self.id}"


@dataclass(frozen=True)
class MImm:
    value: int

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class MMem:
    """Memory operand: one register base, constant displacement."""

    base: Union[VReg, Register]
    disp: int = 0

    def __str__(self):
        if self.disp:
            return f"[{self.base}{self.disp:+d}]"
        return f"[{self.base}]"


MOperand = Union[VReg, Register, MImm, MMem, str]  # str = label


# opcode -> (n_defs, reads_dst) — two-address ALU ops read their dst.
OPCODES = {
    "mov": (1, False),       # mov dst, src
    "load": (1, False),      # mov dst, [mem]        (width)
    "store": (0, False),     # mov [mem], src        (width)
    "add": (1, True),
    "sub": (1, True),
    "and": (1, True),
    "or": (1, True),
    "xor": (1, True),
    "imul": (1, True),
    "shl": (1, True),        # shift by imm or by rcx (emitted as cl)
    "shr": (1, True),
    "sar": (1, True),
    "neg": (1, True),
    "not": (1, True),
    "cmp": (0, False),
    "test": (0, False),
    "setcc": (1, False),     # setcc dst8 + movzx dst, dst8
    "cmov": (1, True),       # cmovcc dst, src
    "jmp": (0, False),       # jmp label
    "jcc": (0, False),       # jcc label
    "syscall": (1, False),   # pseudo: dst, rax, rdi, rsi, rdx sources
    "abort": (0, False),     # call to the fault-response stub
    "hlt": (0, False),
    "ud2": (0, False),
}

TERMINATORS = {"jmp", "hlt", "ud2"}


@dataclass
class MInsn:
    """One machine instruction (pre-register-allocation)."""

    op: str
    operands: list = field(default_factory=list)
    cond: Optional[Cond] = None
    width: int = 8  # load/store access width

    def defs(self) -> list[VReg]:
        n_defs, _ = OPCODES[self.op]
        if n_defs and isinstance(self.operands[0], VReg):
            return [self.operands[0]]
        return []

    def uses(self) -> list[VReg]:
        n_defs, reads_dst = OPCODES[self.op]
        used: list[VReg] = []
        for index, operand in enumerate(self.operands):
            if index == 0 and n_defs and not reads_dst and \
                    self.op != "store":
                # pure definition
                if isinstance(operand, MMem) and \
                        isinstance(operand.base, VReg):
                    used.append(operand.base)
                continue
            if isinstance(operand, VReg):
                used.append(operand)
            elif isinstance(operand, MMem) and \
                    isinstance(operand.base, VReg):
                used.append(operand.base)
        return used

    def __str__(self):
        rendered = ", ".join(str(o) for o in self.operands)
        cond = f".{self.cond.suffix}" if self.cond else ""
        return f"{self.op}{cond} {rendered}".strip()


@dataclass
class MBlock:
    name: str
    insns: list[MInsn] = field(default_factory=list)
    # guest provenance carried down from the IR block (see
    # repro.ir.module.BasicBlock): original address/extent + whether
    # the block is derived countermeasure code
    guest_address: Optional[int] = None
    guest_size: int = 0
    guest_derived: bool = False

    def append(self, insn: MInsn) -> MInsn:
        self.insns.append(insn)
        return insn


@dataclass
class MFunction:
    name: str
    blocks: list[MBlock] = field(default_factory=list)
    _vreg_counter: itertools.count = field(
        default_factory=itertools.count)

    def new_vreg(self) -> VReg:
        return VReg(next(self._vreg_counter))

    def block(self, name: str) -> MBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(name)

    def instruction_count(self) -> int:
        return sum(len(b.insns) for b in self.blocks)

    def __str__(self):
        lines = [f"mfunction {self.name}:"]
        for block in self.blocks:
            lines.append(f"{block.name}:")
            lines.extend(f"    {i}" for i in block.insns)
        return "\n".join(lines)
