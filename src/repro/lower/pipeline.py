"""End-to-end lowering pipeline: IR module -> executable."""

from __future__ import annotations

from typing import Callable, Optional

from repro.asm.assembler import assemble
from repro.binfmt.image import Executable
from repro.ir.module import IRModule
from repro.ir.verifier import verify
from repro.lift.lifter import Lifter
from repro.lower.emit import Emitter
from repro.lower.isel import ISel, split_critical_edges
from repro.lower.peephole import optimize_mir, remove_self_moves
from repro.lower.regalloc import allocate, rewrite_spills

LOWERED_TEXT_BASE = 0x480000


def lower_module(ir_module: IRModule, original: Executable,
                 text_base: int = LOWERED_TEXT_BASE,
                 trap_after_jmp: bool = False) -> Executable:
    """Lower a (lifted, possibly hardened) IR module to an executable.

    The guest's data sections are pinned at their original addresses;
    the regenerated code is placed at ``text_base`` above them.
    ``trap_after_jmp`` plants ``ud2`` behind unconditional jumps so a
    glitched (skipped) jump cannot slide into the next block — used by
    the hardened lowering.
    """
    function = ir_module.function("entry")
    verify(function)
    split_critical_edges(function)
    verify(function)
    mfn = ISel(function).run()
    optimize_mir(mfn)
    allocation = allocate(mfn)
    rewrite_spills(mfn, allocation)
    remove_self_moves(mfn)
    emitter = Emitter(mfn, allocation.frame_slots, original,
                      text_base=text_base, trap_after_jmp=trap_after_jmp)
    program = emitter.emit()
    return assemble(program)


def lower_executable(exe: Executable,
                     transform: Optional[Callable[[IRModule], None]] = None,
                     optimize: bool = True) -> Executable:
    """Lift -> (optional IR transform) -> lower, in one call.

    This is the paper's Fig. 3 upper path: ``transform`` is where the
    hybrid countermeasure pass runs.
    """
    ir_module = Lifter(exe).lift()
    if optimize:
        from repro.ir.passes.pass_manager import standard_cleanup
        standard_cleanup().run(ir_module)
    if transform is not None:
        transform(ir_module)
        verify(ir_module)
    return lower_module(ir_module, exe)
