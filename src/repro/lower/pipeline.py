"""End-to-end lowering pipeline: IR module -> executable."""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Optional

from repro.asm.assembler import assemble
from repro.binfmt.image import Executable
from repro.ir.module import IRModule
from repro.ir.verifier import verify
from repro.lift.lifter import Lifter
from repro.lower.emit import Emitter
from repro.lower.isel import ISel, split_critical_edges
from repro.lower.mir import MFunction
from repro.lower.peephole import optimize_mir, remove_self_moves
from repro.lower.regalloc import allocate, rewrite_spills
from repro.provenance import KIND_BLOCK, KIND_DERIVED, ProvenanceMap

LOWERED_TEXT_BASE = 0x480000


def lower_module(ir_module: IRModule, original: Executable,
                 text_base: int = LOWERED_TEXT_BASE,
                 trap_after_jmp: bool = False,
                 with_provenance: bool = False):
    """Lower a (lifted, possibly hardened) IR module to an executable.

    The guest's data sections are pinned at their original addresses;
    the regenerated code is placed at ``text_base`` above them.
    ``trap_after_jmp`` plants ``ud2`` behind unconditional jumps so a
    glitched (skipped) jump cannot slide into the next block — used by
    the hardened lowering.  ``with_provenance=True`` additionally
    returns the block-granular
    :class:`~repro.provenance.ProvenanceMap` derived from the
    guest-block labels of the regenerated code.
    """
    function = ir_module.function("entry")
    verify(function)
    split_critical_edges(function)
    verify(function)
    mfn = ISel(function).run()
    optimize_mir(mfn)
    allocation = allocate(mfn)
    rewrite_spills(mfn, allocation)
    remove_self_moves(mfn)
    emitter = Emitter(mfn, allocation.frame_slots, original,
                      text_base=text_base, trap_after_jmp=trap_after_jmp)
    program = emitter.emit()
    exe = assemble(program)
    if not with_provenance:
        return exe
    return exe, lowering_provenance(mfn, exe)


def lowering_provenance(mfn: MFunction, exe: Executable) -> ProvenanceMap:
    """Map guest blocks onto the regenerated code's label layout.

    Every MIR block carrying guest metadata became a ``.text`` label in
    ``exe``; its rewritten extent runs to the next label (or the end of
    ``.text``).  Blocks the lifter translated map as ``block`` entries;
    inserted countermeasure blocks (validation chains, split edges)
    map as ``derived``.
    """
    text = exe.section(".text")
    text_end = text.addr + len(text.data)
    label_addr = {symbol.name: symbol.value
                  for symbol in exe.symbols
                  if symbol.section == ".text"}
    starts = sorted(set(label_addr.values()))

    def _span(address: int) -> int:
        """End of the block starting at ``address``: the next label
        strictly above it, or the end of ``.text``."""
        index = bisect_right(starts, address)
        return starts[index] if index < len(starts) else text_end

    provenance = ProvenanceMap(path="lower")
    for block in mfn.blocks:
        if block.guest_address is None:
            continue
        start = label_addr.get(block.name)
        if start is None:
            continue  # label elided (empty block)
        end = _span(start)
        if end <= start:
            continue  # empty span: nothing executable to attribute
        original_end = block.guest_address + max(block.guest_size, 1)
        provenance.add_range(
            block.guest_address, original_end, start, end,
            kind=KIND_DERIVED if block.guest_derived else KIND_BLOCK)
    return provenance


def lower_executable(exe: Executable,
                     transform: Optional[Callable[[IRModule], None]] = None,
                     optimize: bool = True) -> Executable:
    """Lift -> (optional IR transform) -> lower, in one call.

    This is the paper's Fig. 3 upper path: ``transform`` is where the
    hybrid countermeasure pass runs.
    """
    ir_module = Lifter(exe).lift()
    if optimize:
        from repro.ir.passes.pass_manager import standard_cleanup
        standard_cleanup().run(ir_module)
    if transform is not None:
        transform(ir_module)
        verify(ir_module)
    return lower_module(ir_module, exe)
