"""MIR -> assembler Program emission (post-register-allocation)."""

from __future__ import annotations

from repro.asm.source import (
    DataStmt, InsnStmt, LabelDef, Program, SpaceStmt)
from repro.binfmt.image import Executable
from repro.errors import LowerError
from repro.isa.insn import Instruction, Mnemonic
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import Register, reg, sub_register
from repro.lower.mir import MFunction, MImm, MMem

ABORT_MESSAGE = b"FAULT DETECTED\n"
ABORT_EXIT_CODE = 42

RAX, RDI, RSI, RDX = (reg(n) for n in ("rax", "rdi", "rsi", "rdx"))
RCX, RBP, RSP = (reg(n) for n in ("rcx", "rbp", "rsp"))

_WIDTH_LOAD = {1: "movzx", 4: "mov", 8: "mov"}


class Emitter:
    """Turns allocated MIR into an assembler Program."""

    def __init__(self, mfn: MFunction, frame_slots: int,
                 original: Executable, text_base: int = 0x480000,
                 trap_after_jmp: bool = False):
        self.mfn = mfn
        self.frame_slots = frame_slots
        self.original = original
        self.text_base = text_base
        self.trap_after_jmp = trap_after_jmp
        self.program = Program()
        self.items = self.program.items(".text")
        self.needs_abort_stub = False

    # -- public ------------------------------------------------------------

    def emit(self) -> Program:
        self.program.text_base = self.text_base
        self.program.entry = "_start"
        self.program.globals.add("_start")
        self._prologue()
        for index, block in enumerate(self.mfn.blocks):
            next_name = (self.mfn.blocks[index + 1].name
                         if index + 1 < len(self.mfn.blocks) else None)
            self.items.append(LabelDef(block.name))
            for position, insn in enumerate(block.insns):
                if insn.op == "jmp" and position == len(block.insns) - 1 \
                        and insn.operands[0] == next_name:
                    continue  # pure fall-through: elide the jump
                self._emit_insn(insn)
                if insn.op == "jmp" and self.trap_after_jmp:
                    # a skipped jump must not fall into the next block
                    self._ins(Mnemonic.UD2)
        if self.needs_abort_stub:
            self._abort_stub()
        self._pin_guest_sections()
        return self.program

    # -- helpers ------------------------------------------------------------

    def _ins(self, mnemonic: Mnemonic, *operands, cond=None):
        self.items.append(InsnStmt(
            Instruction(mnemonic, tuple(operands), cond=cond)))

    def _prologue(self):
        self.items.append(LabelDef("_start"))
        self._ins(Mnemonic.MOV, Reg(RBP), Reg(RSP))
        frame = (self.frame_slots * 8 + 15) // 16 * 16
        if frame:
            self._ins(Mnemonic.SUB, Reg(RSP), Imm(frame))

    def _abort_stub(self):
        self.items.append(LabelDef("fi_abort"))
        self._ins(Mnemonic.MOV, Reg(RAX), Imm(1))
        self._ins(Mnemonic.MOV, Reg(RDI), Imm(2))
        self.items.append(InsnStmt(Instruction(
            Mnemonic.LEA, (Reg(RSI), Mem(base=None,
                                         disp=Label("fi_abort_msg"),
                                         size=8)))))
        self._ins(Mnemonic.MOV, Reg(RDX), Imm(len(ABORT_MESSAGE)))
        self._ins(Mnemonic.SYSCALL)
        self._ins(Mnemonic.MOV, Reg(RAX), Imm(60))
        self._ins(Mnemonic.MOV, Reg(RDI), Imm(ABORT_EXIT_CODE))
        self._ins(Mnemonic.SYSCALL)
        data = self.program.items(".ldata")
        data.append(LabelDef("fi_abort_msg"))
        data.append(DataStmt([ABORT_MESSAGE]))

    def _pin_guest_sections(self):
        for section in self.original.sections:
            if section.executable:
                continue  # code is regenerated, not copied
            name = f".guest{section.name.replace('.', '_')}"
            self.program.section_addresses[name] = section.addr
            items = self.program.items(name)
            if section.nobits:
                items.append(SpaceStmt(section.mem_size))
            else:
                data = section.data
                if section.mem_size > len(data):
                    data += bytes(section.mem_size - len(data))
                items.append(DataStmt([data]))

    # -- operand conversion ---------------------------------------------------

    @staticmethod
    def _require_reg(operand) -> Register:
        if isinstance(operand, Register):
            return operand
        raise LowerError(f"expected a physical register, got {operand!r}")

    @staticmethod
    def _operand(operand):
        if isinstance(operand, Register):
            return Reg(operand)
        if isinstance(operand, MImm):
            return Imm(operand.value)
        raise LowerError(f"unexpected operand {operand!r}")

    @staticmethod
    def _mem(operand: MMem, width: int) -> Mem:
        base = operand.base
        if not isinstance(base, Register):
            raise LowerError(f"unallocated memory base {base!r}")
        return Mem(base=base, disp=operand.disp, size=width)

    # -- instruction emission ------------------------------------------------

    def _emit_insn(self, insn):
        op = insn.op
        if op == "mov":
            dst, src = insn.operands
            self._ins(Mnemonic.MOV, self._operand(dst),
                      self._operand(src))
        elif op == "load":
            dst, mem = insn.operands
            register = self._require_reg(dst)
            if insn.width == 1:
                self._ins(Mnemonic.MOVZX, Reg(register),
                          self._mem(mem, 1))
            elif insn.width == 4:
                self._ins(Mnemonic.MOV, Reg(sub_register(register, 4)),
                          self._mem(mem, 4))
            else:
                self._ins(Mnemonic.MOV, Reg(register), self._mem(mem, 8))
        elif op == "store":
            mem, src = insn.operands
            if isinstance(src, Register):
                self._ins(Mnemonic.MOV, self._mem(mem, insn.width),
                          Reg(sub_register(src, insn.width)))
            else:
                self._ins(Mnemonic.MOV, self._mem(mem, insn.width),
                          Imm(src.value))
        elif op in ("add", "sub", "and", "or", "xor", "imul"):
            dst, src = insn.operands
            mnemonic = {"add": Mnemonic.ADD, "sub": Mnemonic.SUB,
                        "and": Mnemonic.AND, "or": Mnemonic.OR,
                        "xor": Mnemonic.XOR, "imul": Mnemonic.IMUL}[op]
            self._ins(mnemonic, self._operand(dst), self._operand(src))
        elif op in ("neg", "not"):
            self._ins(Mnemonic.NEG if op == "neg" else Mnemonic.NOT,
                      self._operand(insn.operands[0]))
        elif op in ("shl", "shr", "sar"):
            dst, amount = insn.operands
            mnemonic = {"shl": Mnemonic.SHL, "shr": Mnemonic.SHR,
                        "sar": Mnemonic.SAR}[op]
            if isinstance(amount, MImm):
                self._ins(mnemonic, self._operand(dst),
                          Imm(amount.value, 1))
            else:
                self._ins(Mnemonic.MOV, Reg(RCX), self._operand(amount))
                self._ins(mnemonic, self._operand(dst),
                          Reg(sub_register(RCX, 1)))
        elif op == "cmp":
            lhs, rhs = insn.operands
            self._ins(Mnemonic.CMP, self._operand(lhs),
                      self._operand(rhs))
        elif op == "test":
            lhs, rhs = insn.operands
            self._ins(Mnemonic.TEST, self._operand(lhs),
                      self._operand(rhs))
        elif op == "setcc":
            register = self._require_reg(insn.operands[0])
            low = sub_register(register, 1)
            self._ins(Mnemonic.SETCC, Reg(low), cond=insn.cond)
            self._ins(Mnemonic.MOVZX, Reg(register), Reg(low))
        elif op == "cmov":
            dst, src = insn.operands
            self._ins(Mnemonic.CMOVCC, self._operand(dst),
                      self._operand(src), cond=insn.cond)
        elif op == "jmp":
            self.items.append(InsnStmt(Instruction(
                Mnemonic.JMP, (Label(insn.operands[0]),))))
        elif op == "jcc":
            self.items.append(InsnStmt(Instruction(
                Mnemonic.JCC, (Label(insn.operands[0]),),
                cond=insn.cond)))
        elif op == "syscall":
            self._emit_syscall(insn)
        elif op == "abort":
            self.needs_abort_stub = True
            self.items.append(InsnStmt(Instruction(
                Mnemonic.CALL, (Label("fi_abort"),))))
        elif op == "hlt":
            self._ins(Mnemonic.HLT)
        elif op == "ud2":
            self._ins(Mnemonic.UD2)
        else:
            raise LowerError(f"cannot emit MIR op {op!r}")

    def _emit_syscall(self, insn):
        dst = insn.operands[0]
        sources = insn.operands[1:5]
        targets = [RAX, RDI, RSI, RDX]
        self._parallel_moves(list(zip(targets, sources)))
        self._ins(Mnemonic.SYSCALL)
        if isinstance(dst, Register) and dst is not RAX:
            self._ins(Mnemonic.MOV, Reg(dst), Reg(RAX))

    def _parallel_moves(self, pairs):
        """Emit ``target <- source`` moves without clobbering pending
        sources; cycles are broken through ``rcx`` (a syscall clobber)."""
        pending = [(t, s) for t, s in pairs
                   if not (isinstance(s, Register) and s is t)]
        while pending:
            progressed = False
            for index, (target, source) in enumerate(pending):
                target_is_source = any(
                    isinstance(s, Register) and s is target
                    for t, s in pending if t is not target)
                if target_is_source:
                    continue
                self._ins(Mnemonic.MOV, Reg(target),
                          self._operand(source))
                pending.pop(index)
                progressed = True
                break
            if not progressed:
                # cycle: rotate one value through rcx (never a target,
                # and at most one cycle can exist among the four
                # syscall argument registers)
                target, source = pending.pop(0)
                self._ins(Mnemonic.MOV, Reg(RCX), self._operand(source))
                pending.append((target, RCX))
