"""The hardening-approach registry.

Mirrors ``repro.faulter.models.MODELS``: each of the paper's rewriting
approaches — the iterative Fig. 2 faulter+patcher loop, the Fig. 3
lift-harden-lower hybrid, and the Section III-B trampoline detour — is
one :class:`HardeningApproach` entry carrying its harden callable and
its provenance contract.  ``approach=`` strings in the session API,
``r2r --approach`` CLI choices, and the differential evaluation's
dispatch all derive from this one table, and third-party approaches
plug in with :func:`register_approach` without touching ``repro.api``
or ``repro.cli``::

    from repro.hardening import HardeningApproach, register_approach

    register_approach(HardeningApproach(
        name="my-rewriter",
        harden=my_harden,            # (exe, good, bad, oracle,
                                     #  *, models, name, **kw) -> result
        provenance="identity",
        description="..."))

A harden callable returns a result object exposing ``hardened`` (the
rewritten :class:`~repro.binfmt.image.Executable`), ``provenance`` (a
:class:`~repro.provenance.ProvenanceMap` honouring the declared
contract — the differential evaluation joins campaigns through it),
and ``report()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.detour.rewriter import detour_harden
from repro.faulter.models import model_by_name
from repro.hybrid.pipeline import hybrid_harden
from repro.patcher.loop import FaulterPatcherLoop


def encoding_family(models: Sequence) -> tuple:
    """Restrict ``models`` to the encoding family, defaulting to skip.

    The Fig. 2 patch loop's duplication patterns protect against fetch
    faults; iterating it on a state model would churn expensive
    campaigns it can never converge.  State models stay
    evaluation-only (see ``Target.evaluate``).
    """
    def family(model):
        if isinstance(model, str):
            return model_by_name(model).family
        return model.family

    return tuple(m for m in models if family(m) == "encoding") \
        or ("skip",)


@dataclass(frozen=True)
class HardeningApproach:
    """One registered way to rewrite a binary against faults.

    ``harden`` has the normalized signature
    ``(exe, good_input, bad_input, oracle, *, models, name, **kwargs)``
    and returns a result with ``hardened``/``provenance``/``report()``.
    ``consumes_fault_models`` marks approaches whose hardening loop
    *iterates* on fault campaigns (the Fig. 2 loop) — the differential
    evaluation forwards its ``harden_models`` only to those.
    ``provenance`` states the contract of the emitted provenance map
    (how original points join to rewritten ones).
    """

    name: str
    harden: Callable
    consumes_fault_models: bool = False
    provenance: str = ""
    description: str = ""


HARDENING_APPROACHES: dict[str, HardeningApproach] = {}


def register_approach(approach: HardeningApproach,
                      replace: bool = False) -> HardeningApproach:
    """Add ``approach`` to the registry (error on duplicate names)."""
    if approach.name in HARDENING_APPROACHES and not replace:
        raise ValueError(
            f"hardening approach {approach.name!r} is already "
            "registered (pass replace=True to override)")
    HARDENING_APPROACHES[approach.name] = approach
    return approach


def approach_by_name(name: str) -> HardeningApproach:
    """Look up a registered approach by name."""
    try:
        return HARDENING_APPROACHES[name]
    except KeyError:
        raise ValueError(
            f"unknown approach {name!r}; pick one of "
            f"{tuple(sorted(HARDENING_APPROACHES))}") from None


# ---------------------------------------------------------------------------
# built-in approaches
# ---------------------------------------------------------------------------


def _harden_faulter_patcher(exe, good_input, bad_input, oracle, *,
                            models, name, **kwargs):
    loop = FaulterPatcherLoop(
        exe, good_input, bad_input, oracle,
        models=encoding_family(models), name=name, **kwargs)
    return loop.run()


def _harden_hybrid(exe, good_input, bad_input, oracle, *, models,
                   name, **kwargs):
    return hybrid_harden(exe, good_input, bad_input, oracle,
                         name=name, models=models, **kwargs)


def _harden_detour(exe, good_input, bad_input, oracle, *, models,
                   name, **kwargs):
    return detour_harden(exe, good_input, bad_input, oracle,
                         name=name, models=models, **kwargs)


register_approach(HardeningApproach(
    name="faulter+patcher",
    harden=_harden_faulter_patcher,
    consumes_fault_models=True,
    provenance="instruction-exact (assembler tag map)",
    description="iterative simulation-guided patching (Fig. 2); "
                "campaigns on the encoding-family fault models drive "
                "each patch round",
))

register_approach(HardeningApproach(
    name="hybrid",
    harden=_harden_hybrid,
    provenance="guest block ranges (lifter metadata), derived points "
               "for synthesized code",
    description="lift to IR, harden conditional branches, lower "
                "(Fig. 3)",
))

register_approach(HardeningApproach(
    name="detour",
    harden=_harden_detour,
    provenance="identity .text plus exact trampoline mappings",
    description="duplication countermeasure via trampolines "
                "(Section III-B)",
))
