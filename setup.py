"""Legacy installation shim.

``pip install -e .`` needs the ``wheel`` package for editable builds on
older setuptools; in fully offline environments ``python setup.py
develop`` (or the ``.pth`` trick in README.md) achieves the same.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["r2r = repro.cli:main"]},
)
