"""Table V — code-size overhead of the two approaches.

Paper reference (overhead in code size, %):

    case study          Faulter+Patcher   Hybrid
    pincheck                      17.61    85.88
    secure bootloader             19.67    48.67

Our substrate differs (hand-assembled case studies instead of compiled
binaries; our lifter/backend instead of Rev.ng/LLVM), so absolute
numbers shift — the *shape* assertions encode the paper's claims:
targeted patching is much cheaper than holistic hardening, and the
Faulter+Patcher approach stays far below the 300% duplication strawman.
See EXPERIMENTS.md for the full discussion.
"""

import pytest
from conftest import once

from repro.hybrid import hybrid_harden
from repro.patcher import FaulterPatcherLoop

PAPER = {
    "pincheck": {"fp": 17.61, "hybrid": 85.88},
    "secure bootloader": {"fp": 19.67, "hybrid": 48.67},
}


def _measure(wl):
    exe = wl.build()
    fp = FaulterPatcherLoop(exe, wl.good_input, wl.bad_input,
                            wl.grant_marker, models=("skip",),
                            name=wl.name).run()
    hy = hybrid_harden(exe, wl.good_input, wl.bad_input,
                       wl.grant_marker, name=wl.name)
    return fp, hy


def test_table5(benchmark, record, rich_pincheck_wl, rich_bootloader_wl):
    results = once(
        benchmark,
        lambda: {
            "pincheck": _measure(rich_pincheck_wl),
            "secure bootloader": _measure(rich_bootloader_wl),
        })

    lines = [
        "TABLE V: overhead of adding the protections "
        "(code size, %)",
        "",
        "  case study          paper F+P   ours F+P   "
        "paper Hybrid   ours Hybrid",
        "  ------------------  ---------   --------   "
        "------------   -----------",
    ]
    for case, (fp, hy) in results.items():
        paper = PAPER[case]
        lines.append(
            f"  {case:<18}  {paper['fp']:>9.2f}   "
            f"{fp.overhead_percent:>8.2f}   "
            f"{paper['hybrid']:>12.2f}   {hy.overhead_percent:>11.2f}")
    lines.append("")
    for case, (fp, hy) in results.items():
        ratio = hy.overhead_percent / fp.overhead_percent
        lines.append(
            f"  {case}: hybrid/F+P ratio = {ratio:.1f}x "
            f"(paper: {PAPER[case]['hybrid']/PAPER[case]['fp']:.1f}x); "
            f"translation alone {hy.translation_overhead_percent:+.1f}%")
    record("table5_overhead", "\n".join(lines))

    for case, (fp, hy) in results.items():
        # shape: targeted patching is cheap, holistic hardening is the
        # expensive option (paper: 2x-5x; ours is wider because our
        # backend's translation overhead exceeds Rev.ng's on these
        # hand-sized binaries)
        assert fp.overhead_percent < hy.overhead_percent
        assert fp.overhead_percent < 60.0
        assert fp.converged
        assert hy.overhead_percent / fp.overhead_percent >= 2.0
        # F+P stays far below the naive-duplication strawman
        assert fp.overhead_percent < 300.0
