"""Table I — local protection pattern for ``mov`` operations.

Regenerates the original/protected listings and verifies the pattern's
semantics: the protected load still works, and a corrupted destination
diverts into the fault handler.
"""

from conftest import once

from repro.asm import assemble
from repro.disasm import disassemble, reassemble
from repro.disasm.pprint import render_instruction
from repro.emu import Machine, run_executable
from repro.isa.insn import Mnemonic
from repro.patcher import Patcher

SOURCE = """
.text
.global _start
_start:
    mov rax, qword ptr [value]
    mov rdi, rax
    mov rax, 60
    syscall
.data
value: .quad 7
"""


def _protect_first_load():
    module = disassemble(assemble(SOURCE))
    patcher = Patcher(module)
    block = module.text().code_blocks()[0]
    target = block.entries[0]
    assert patcher.patch_entry(target)
    return module, target


def test_table1(benchmark, record):
    module, target = once(benchmark, _protect_first_load)

    # regenerate the table: original vs protected listing
    protected_block = module.text().code_blocks()[0]
    lines = [render_instruction(e) for e in protected_block.entries]
    following = module.text().code_blocks()[1]
    lines += [render_instruction(e) for e in following.entries[:1]]
    table = [
        "TABLE I: local protection pattern for mov operations",
        "  original              | protected",
        "  --------------------- | ---------------------------",
    ]
    original = ["mov rax, qword ptr [value]", "(happyflow) ..."]
    for index in range(max(len(original), len(lines))):
        left = original[index] if index < len(original) else ""
        right = lines[index] if index < len(lines) else ""
        table.append(f"  {left:<21} | {right}")
    record("table1_mov_pattern", "\n".join(table))

    # the pattern shape: mov; cmp; je happyflow; call faulthandler
    mnems = [e.insn.mnemonic for e in protected_block.entries]
    assert mnems[:3] == [Mnemonic.MOV, Mnemonic.CMP, Mnemonic.JCC]
    assert protected_block.entries[-1].insn.mnemonic is Mnemonic.CALL

    # semantics: the protected binary still computes exit code 7
    rebuilt = reassemble(module)
    assert run_executable(rebuilt).exit_code == 7

    # fault detection: corrupt the loaded value right after the mov and
    # observe the fault handler firing (exit 42)
    machine = Machine(rebuilt)
    trace = machine.run(record_trace=True).trace
    mov_step = 0  # the protected mov is the first instruction
    machine2 = Machine(rebuilt)

    def skip(insn, cpu):
        return None

    result = machine2.run(fault_step=mov_step, fault_intercept=skip)
    assert result.exit_code == 42  # faulthandler detected the fault
    assert b"FAULT DETECTED" in result.stderr
