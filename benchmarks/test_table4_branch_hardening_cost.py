"""Table IV — qualitative overhead of conditional branch hardening.

Regenerates the per-branch instruction census at both levels (IR and
x86-64), before vs after the hardening pass, on a minimal one-branch
program — the same setting the paper tabulates.

Paper reference (added instructions per protected branch):
  LLVM-IR : 1 cmp, 2 zext, 2 sub, 6 xor, 2 or, 4 and, 1 br, 4 switch
  x86-64  : 2 cmp, 6 mov, 2 sub, 6 xor, 2 or, 6 and, 2 test,
            4 jx, 5 jmp
"""

from collections import Counter

from conftest import once

from repro.asm import assemble
from repro.hybrid import harden_branches
from repro.ir.passes import instruction_histogram
from repro.ir.passes.pass_manager import standard_cleanup
from repro.isa.decoder import decode_all
from repro.lift import Lifter
from repro.lower.pipeline import lower_module

ONE_BRANCH = """
.text
.global _start
_start:
    xor rax, rax
    xor rdi, rdi
    lea rsi, [rel buf]
    mov rdx, 8
    syscall
    mov rbx, qword ptr [buf]
    cmp rbx, 42
    je other
    mov rdi, 1
    mov rax, 60
    syscall
other:
    mov rdi, 2
    mov rax, 60
    syscall
.bss
buf: .zero 8
"""

PAPER_IR = {"icmp": 1, "zext": 2, "sub": 2, "xor": 6, "or": 2,
            "and": 4, "br": 1, "switch": 4}


def _x86_histogram(exe) -> Counter:
    text = exe.section(".text")
    histogram = Counter()
    for insn in decode_all(text.data, text.addr):
        histogram[insn.name] += 1
    return histogram


def _run_experiment():
    exe = assemble(ONE_BRANCH)
    ir = Lifter(exe).lift()
    standard_cleanup().run(ir)
    fn = ir.function("entry")
    ir_before = instruction_histogram(fn)
    x86_before = _x86_histogram(lower_module(ir, exe))
    stats = harden_branches(ir)
    ir_after = instruction_histogram(fn)
    x86_after = _x86_histogram(lower_module(ir, exe))
    return exe, stats, ir_before, ir_after, x86_before, x86_after


def test_table4(benchmark, record):
    (exe, stats, ir_before, ir_after,
     x86_before, x86_after) = once(benchmark, _run_experiment)
    assert stats.branches_hardened == 1

    ir_delta = Counter({k: ir_after[k] - ir_before.get(k, 0)
                        for k in ir_after
                        if ir_after[k] - ir_before.get(k, 0)})
    x86_delta = Counter({k: x86_after[k] - x86_before.get(k, 0)
                         for k in x86_after
                         if x86_after[k] - x86_before.get(k, 0)})

    lines = [
        "TABLE IV: added instructions per protected branch",
        "",
        "  level    opcode      paper   measured",
        "  -----    ---------   -----   --------",
    ]
    for opcode in sorted(set(PAPER_IR) | set(ir_delta)):
        lines.append(f"  IR       {opcode:<9}   "
                     f"{PAPER_IR.get(opcode, 0):>5}   "
                     f"{ir_delta.get(opcode, 0):>8}")
    lines.append("")
    for opcode, count in sorted(x86_delta.items()):
        lines.append(f"  x86-64   {opcode:<9}   {'-':>5}   {count:>8}")
    lines.append("")
    lines.append(f"  total IR delta : {sum(ir_delta.values())} "
                 f"(paper: {sum(PAPER_IR.values())})")
    lines.append(f"  total x86 delta: {sum(x86_delta.values())} "
                 f"(paper: ~35)")
    record("table4_branch_hardening_cost", "\n".join(lines))

    # exact reproduction of the paper's checksum arithmetic census
    assert ir_delta["zext"] == PAPER_IR["zext"]
    assert ir_delta["sub"] == PAPER_IR["sub"]
    assert ir_delta["xor"] == PAPER_IR["xor"]
    assert ir_delta["or"] == PAPER_IR["or"]
    assert ir_delta["and"] == PAPER_IR["and"]
    assert ir_delta["switch"] == PAPER_IR["switch"]
    # the re-evaluated comparison (>= 1: chain recloning may add more)
    assert ir_delta.get("icmp", 0) >= PAPER_IR["icmp"]
    # overall shape: a couple of instructions become a few dozen
    assert 15 <= sum(ir_delta.values()) <= 40
    assert 20 <= sum(x86_delta.values()) <= 80
