"""Ablation A2 — the targeted-vs-holistic trade-off (Section IV-D).

Sweeps the number of branches the hybrid pass protects (the paper's
"overall overhead ... depends on the number of conditional branches
that we want to protect"), including the faulter-*guided* selective
hybrid the paper sketches as future work, and compares against the
targeted Faulter+Patcher loop.
"""

from conftest import once

from repro.faulter import Faulter
from repro.hybrid import hybrid_harden
from repro.patcher import FaulterPatcherLoop


def _sweep(wl):
    exe = wl.build()
    results = {}

    # protect the first k conditional branches (layout order)
    for k in (0, 1, 3, 999):
        counter = {"seen": 0}

        def first_k(block, terminator, k=k, counter=counter):
            counter["seen"] += 1
            return counter["seen"] <= k

        hy = hybrid_harden(exe, wl.good_input, wl.bad_input,
                           wl.grant_marker, name=wl.name,
                           branch_filter=first_k)
        results[f"first {k if k < 999 else 'all'}"] = hy

    # faulter-guided: only branches in guest blocks that contain a
    # vulnerable point (the paper's future-work iterative hybrid)
    from repro.hybrid import faulter_guided_filter
    guided = faulter_guided_filter(exe, wl.good_input, wl.bad_input,
                                   wl.grant_marker)
    results["faulter-guided"] = hybrid_harden(
        exe, wl.good_input, wl.bad_input, wl.grant_marker,
        name=wl.name, branch_filter=guided)

    fp = FaulterPatcherLoop(exe, wl.good_input, wl.bad_input,
                            wl.grant_marker, models=("skip",),
                            name=wl.name).run()
    return results, fp


def test_targeted_vs_holistic(benchmark, record, rich_bootloader_wl):
    results, fp = once(benchmark, lambda: _sweep(rich_bootloader_wl))

    lines = [
        "ABLATION A2: overhead vs number of protected branches "
        f"({rich_bootloader_wl.name})",
        "",
        "  configuration      branches   overhead",
        "  ----------------   --------   --------",
        f"  {'F+P (targeted)':<16}   {'-':>8}   "
        f"{fp.overhead_percent:>7.2f}%",
    ]
    overheads = []
    for label, hy in results.items():
        lines.append(f"  hybrid {label:<9}   "
                     f"{hy.hardening.branches_hardened:>8}   "
                     f"{hy.overhead_percent:>7.2f}%")
        overheads.append((hy.hardening.branches_hardened,
                          hy.overhead_percent))
    lines.append("")
    lines.append("  overhead grows monotonically with the number of "
                 "protected branches;")
    lines.append("  the faulter-guided hybrid approaches the targeted "
                 "cost while keeping the IR-level mechanism.")
    record("ablation_targeted_vs_holistic", "\n".join(lines))

    by_branches = sorted(overheads)
    for (b1, o1), (b2, o2) in zip(by_branches, by_branches[1:]):
        if b1 != b2:
            assert o1 < o2, "overhead must grow with protected branches"
    guided = results["faulter-guided"]
    full = results["first all"]
    assert guided.overhead_percent < full.overhead_percent
    assert fp.overhead_percent < full.overhead_percent
