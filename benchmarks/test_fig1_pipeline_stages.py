"""Fig. 1 — the four stages of static binary rewriting.

Runs a binary through disassembler -> structural recovery ->
transformation -> code generation and reports each stage's artifacts.
"""

from conftest import once

from repro.disasm import disassemble, pretty_print, reassemble
from repro.disasm.functions import find_functions
from repro.emu import run_executable
from repro.gtirb import build_cfg
from repro.patcher import Patcher


def _pipeline(wl):
    exe = wl.build()
    module = disassemble(exe)                      # stages 1+2
    cfg = build_cfg(module)
    functions = find_functions(module)
    patcher = Patcher(module)                      # stage 3
    target = next(e for b in module.text().code_blocks()
                  for e in b.entries if e.insn.name == "cmp")
    assert patcher.patch_entry(target)
    rebuilt = reassemble(module)                   # stage 4
    return exe, module, cfg, functions, rebuilt


def test_fig1(benchmark, record, pincheck_wl):
    exe, module, cfg, functions, rebuilt = once(
        benchmark, lambda: _pipeline(pincheck_wl))

    lines = [
        "FIG. 1: binary rewriting pipeline stages",
        "",
        "  (1) disassembler        : "
        f"{sum(len(b.entries) for b in module.text().code_blocks())} "
        "instructions decoded",
        "  (2) structural recovery : "
        f"{len(module.text().code_blocks())} blocks, "
        f"{len(cfg.edges)} CFG edges, "
        f"{len(functions)} function(s), "
        f"{len(module.symbols)} symbols",
        "  (3) transformation      : 1 compare patched "
        "(Table II pattern)",
        "  (4) code generation     : "
        f"{exe.code_size()}B -> {rebuilt.code_size()}B, "
        "still executable",
    ]
    record("fig1_pipeline_stages", "\n".join(lines))

    good = run_executable(rebuilt, stdin=pincheck_wl.good_input)
    assert pincheck_wl.grant_marker in good.stdout
    assert len(module.text().code_blocks()) >= 5
    assert len(cfg.edges) >= 6
    assert pretty_print(module)  # listing renders


def test_fig1_every_stage_has_output(record, bootloader_wl):
    module = disassemble(bootloader_wl.build())
    listing = pretty_print(module)
    assert ".section .text" in listing
    assert ".section .data" in listing
    assert "expected_hash" in listing
