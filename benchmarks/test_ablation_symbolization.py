"""Ablation A1 — symbolization heuristics (Section III-C narrative).

UROBOROS-style naive linear scan vs Ddisasm-style refined analysis on a
program with a planted address-looking decoy.  The naive mode falsely
symbolizes the decoy as ``block+addend``; when a patch shifts the
layout, the decoy value silently changes.  The refined mode keeps it a
plain constant, which survives rewriting.
"""

from conftest import once

from repro.asm import assemble
from repro.disasm import disassemble, reassemble
from repro.emu import run_executable
from repro.isa.insn import Mnemonic
from repro.patcher import Patcher

TEMPLATE = """
.text
.global _start
_start:
    mov rax, qword ptr [seed]     # patch target: shifts everything below
    mov rax, qword ptr [decoy]
    and rax, 0xff
    mov rdi, rax
    mov rax, 60
    syscall
tail:                             # the decoy 'points' just past here
    mov rdi, 99
    mov rax, 60
    syscall
.data
seed:    .quad 5
padding: .quad 1, 2, 3
decoy:   .quad {decoy:#x}         # inside .text, mid-instruction
real:    .quad tail               # a genuine code pointer
"""


def _build_program():
    probe = assemble(TEMPLATE.format(decoy=0))
    tail = probe.symbol("tail").value
    return assemble(TEMPLATE.format(decoy=tail + 1)), (tail + 1) & 0xFF


def _measure(mode: str):
    exe, expected = _build_program()
    baseline = run_executable(exe).exit_code
    assert baseline == expected
    module = disassemble(exe, mode=mode)
    words = module.aux["symbolized_words"]
    # a layout-shifting transformation: patch the first mov (Table I)
    patcher = Patcher(module)
    first = module.text().code_blocks()[0].entries[0]
    assert first.insn.mnemonic is Mnemonic.MOV
    assert patcher.patch_entry(first)
    rebuilt = reassemble(module)
    rewritten = run_executable(rebuilt).exit_code
    return baseline, rewritten, words


def test_symbolization_ablation(benchmark, record):
    results = once(benchmark, lambda: {
        mode: _measure(mode) for mode in ("naive", "refined")})

    lines = [
        "ABLATION A1: symbolization heuristics "
        "(UROBOROS-naive vs Ddisasm-refined)",
        "",
        "  mode      sym words   decoy before   decoy after   verdict",
        "  -------   ---------   ------------   -----------   -------",
    ]
    for mode, (before, after, words) in results.items():
        verdict = "PRESERVED" if before == after else "CORRUPTED"
        lines.append(f"  {mode:<7}   {words:>9}   {before:>12}   "
                     f"{after:>11}   {verdict}")
    lines.append("")
    lines.append("  naive linear scan symbolizes any in-range word; "
                 "after a layout-shifting patch")
    lines.append("  the falsely-symbolized decoy resolves to a moved "
                 "address (silent data corruption).")
    lines.append("  refined mode requires code targets to be recovered "
                 "block leaders; the decoy survives.")
    record("ablation_symbolization", "\n".join(lines))

    naive_before, naive_after, naive_words = results["naive"]
    refined_before, refined_after, refined_words = results["refined"]
    assert refined_before == refined_after, "refined must preserve"
    assert naive_before != naive_after, (
        "naive mode should corrupt the decoy (the UROBOROS "
        "false-positive the paper describes)")
    assert naive_words >= refined_words


def test_true_pointers_survive_both_modes(record):
    """Genuine code/data pointers must work in either mode."""
    from repro.workloads import corpus
    for mode in ("naive", "refined"):
        exe = corpus.build("indirect")
        rebuilt = reassemble(disassemble(exe, mode=mode))
        assert run_executable(rebuilt).exit_code == 9, mode
