"""Campaign-engine throughput: sequential vs checkpointed vs parallel.

Seeds the perf trajectory for the faulter hot loop.  A sampled
campaign over a long bootloader trace (>= 1k instructions) runs on
three engine backends:

* ``prefix-reexec``   — checkpoint_interval=inf: one step-0 checkpoint,
  i.e. every faulted run re-executes the whole prefix (the pre-engine
  statistical-FI behaviour),
* ``checkpointed``    — checkpoint_interval=64: faulted runs resume
  from the nearest trace checkpoint,
* ``multiprocess``    — the checkpointed strategy inside a process
  pool,
* ``trace-compiled``  — the master-walk strategy with the compiled
  tier (the default), recorded as its own row so the JIT's
  contribution stays visible in the trajectory.

All rows except ``precise-checkpointed`` run with the trace-compiled
tier on (the engine default); ``precise-checkpointed`` pins
``trace_compile=False`` so the interpreter-only trajectory — and the
tier's speedup over it — stays measured.

The checkpointed backend must *strictly* reduce the total number of
emulated steps vs prefix re-execution; faults/second, step counts,
peak RSS (``resource.getrusage``, so the streaming engine's memory
trajectory is visible alongside throughput) and the engine's
peak-resident-fault-points gauge are recorded in
``BENCH_campaign.json`` at the repo root.  A ``models`` section adds a
state-family row (a sampled ``reg-bitflip`` campaign on the
checkpointed backend), so the fault-effect protocol's hot path is on
the same perf trajectory as the classic fetch faults, and a
``k2-reduced`` row (a dense k=2 ``flag-stuck`` pair product with
equivalence reduction on, see ``repro.faulter.reduction``) that must
emulate at least 5x fewer steps than the full product while staying
bit-identical, and a ``chunked-pie`` row (a per-unit chunked
exhaustive campaign on the committed PIE ELF fixture, recording
faults/s and ``peak_resident_points`` — the real-binary path on the
same trajectory).  CI's ``bench`` job diffs a fresh run of this file
against the committed JSON and fails on >25% throughput regression
(``benchmarks/check_regression.py``).
"""

import json
import pathlib
import resource
import shutil
import tempfile
import time

from conftest import once

from repro.binfmt.reader import read_elf
from repro.faulter import (
    ArtifactStore, Faulter, MultiprocessBackend, SampledSpace,
    SequentialBackend, shutdown_fleet)
from repro.faulter.space import ExhaustiveSpace, ProductSpace
from repro.workloads import bootloader

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_campaign.json"

TRACE_SIZE = 200     # bootloader payload -> trace >= 1k instructions
# enough samples that campaign compute dominates fixed costs (pool
# spin-up, per-worker context derivation) — keeps the CI regression
# gate's faults/s comparison out of the noise floor
SAMPLES = 384
SEED = 2024
CHECKPOINT_INTERVAL = 64
# state-model row: fewer samples (register faults rarely short-circuit
# the run, so each faulted replay tends to execute the full suffix)
STATE_MODEL = "reg-bitflip"
STATE_SAMPLES = 192
# k=2 row: dense flag-stuck pair product over a strided subset of the
# flag-consuming offsets — the space equivalence reduction flattens
# hardest; the gate requires >= 5x fewer emulated steps than the full
# product, bit-identically
K2_MODEL = "flag-stuck"
K2_OFFSET_STRIDE = 9
K2_MIN_SPEEDUP = 5.0
# chunked-pie row: campaign inputs of the committed PIE fixture
# (tests/fixtures/README.md)
PIE_GOOD = bytes.fromhex("0d141b222930373e")
PIE_BAD = bytes.fromhex("0d141b223930373f")
PIE_MARKER = b"BOOT OK"
# multiprocess-warm must deliver at least this multiple of the cold
# multiprocess row's faults/s (gated here and in check_regression.py)
WARM_MIN_SPEEDUP = 2.0
# the two rows under that gate are ~0.15s measurements on a shared
# box: repeat each and keep the best pass so the gate compares
# schedulers, not scheduler noise
GATED_REPEATS = 3


def _measure(faulter, backend, model="skip", samples=SAMPLES):
    space = SampledSpace(samples=samples, seed=SEED)
    start = time.perf_counter()
    report = faulter.engine().run(model, space, backend=backend)
    elapsed = time.perf_counter() - start
    return report, elapsed


def _row(report, derive_seconds, execute_seconds):
    """One backends-section row: wall time split derive vs execute.

    *derive* is per-campaign setup (baseline validation + bad-input
    trace recording, or their artifact-store loads); *execute* is the
    engine run itself.  faults/s is quoted against the execute phase —
    the quantity the scheduler and the warm cache actually scale.
    """
    return {
        "wall_seconds": round(derive_seconds + execute_seconds, 4),
        "derive_seconds": round(derive_seconds, 4),
        "execute_seconds": round(execute_seconds, 4),
        "faults": report.total_faults,
        "faults_per_second": round(
            report.total_faults / execute_seconds, 2)
        if execute_seconds else None,
        "emulated_steps": report.meta["emulated_steps"],
        "compiled_steps": report.meta["compiled_steps"],
        "precise_steps": report.meta["precise_steps"],
        "checkpoint_interval": report.meta["checkpoint_interval"],
        "peak_resident_points": report.meta["peak_resident_points"],
        # ru_maxrss is a process-lifetime high-water mark (KiB on
        # Linux): monotone across backends, but its trajectory
        # over PRs is what the perf history tracks
        "peak_rss_kb": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss,
    }


def test_engine_throughput(benchmark, record):
    wl = bootloader.workload(size=TRACE_SIZE)
    image = wl.build()

    def provision(store=None):
        """Fresh faulter + its derive-phase seconds (validation and
        trace recording — what the artifact cache amortizes)."""
        started = time.perf_counter()
        faulter = Faulter(image, wl.good_input, wl.bad_input,
                          wl.grant_marker, name=wl.name,
                          artifacts=store)
        faulter.trace()
        return faulter, time.perf_counter() - started

    faulter, _ = provision()
    trace_length = len(faulter.trace())
    assert trace_length >= 1000, (
        f"need a >=1k-instruction trace, got {trace_length}")

    # every backend row provisions its own faulter, so the derive
    # phase is measured per row; the multiprocess row starts from a
    # cold fleet (spin-up included in its execute time)
    shutdown_fleet()

    backends = {
        "prefix-reexec": SequentialBackend(
            checkpoint_interval=float("inf")),
        "checkpointed": SequentialBackend(
            checkpoint_interval=CHECKPOINT_INTERVAL),
        "multiprocess": MultiprocessBackend(
            workers=4, checkpoint_interval=CHECKPOINT_INTERVAL),
        "trace-compiled": SequentialBackend(),
        "precise-checkpointed": SequentialBackend(
            checkpoint_interval=CHECKPOINT_INTERVAL,
            trace_compile=False),
    }

    results = {}
    reports = {}
    for name, backend in backends.items():
        row_faulter, derive_seconds = provision()
        if name == "checkpointed":
            # the headline number goes through pytest-benchmark
            report, elapsed = once(
                benchmark, lambda: _measure(row_faulter, backend))
        elif name == "multiprocess":
            # gated row: best of GATED_REPEATS genuinely-cold passes
            # (fleet torn down and the faulter re-provisioned each time)
            report, elapsed = _measure(row_faulter, backend)
            for _ in range(GATED_REPEATS - 1):
                shutdown_fleet()
                retry_faulter, retry_derive = provision()
                retry_report, retry_elapsed = _measure(
                    retry_faulter, backend)
                assert retry_report == report
                if retry_elapsed < elapsed:
                    elapsed = retry_elapsed
                    derive_seconds = retry_derive
            shutdown_fleet()
        else:
            report, elapsed = _measure(row_faulter, backend)
        reports[name] = report
        results[name] = _row(report, derive_seconds, elapsed)

    # multiprocess-warm: same backend, but the artifact store is
    # populated and the worker fleet already hot — one cold pass
    # fills both, the measured pass rides them
    cache_root = tempfile.mkdtemp(prefix="r2r-bench-cache-")
    try:
        warm_backend = MultiprocessBackend(
            workers=4, checkpoint_interval=CHECKPOINT_INTERVAL)
        cold_faulter, _ = provision(ArtifactStore(cache_root))
        cold_report, _ = _measure(cold_faulter, warm_backend)
        warm_faulter, warm_derive = provision(ArtifactStore(cache_root))
        warm_report, warm_elapsed = _measure(warm_faulter, warm_backend)
        for _ in range(GATED_REPEATS - 1):
            repeat_faulter, repeat_derive = provision(
                ArtifactStore(cache_root))
            repeat_report, repeat_elapsed = _measure(
                repeat_faulter, warm_backend)
            assert repeat_report == warm_report
            if repeat_elapsed < warm_elapsed:
                warm_elapsed = repeat_elapsed
                warm_derive = repeat_derive
        results["multiprocess-warm"] = _row(
            warm_report, warm_derive, warm_elapsed)
        warm_artifacts = dict(warm_report.meta["artifacts"])
        warm_artifacts.pop("cache_dir", None)  # tempdir path is noise
        results["multiprocess-warm"]["artifacts"] = warm_artifacts
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
        shutdown_fleet()

    # all backends classify the sampled space identically
    assert reports["checkpointed"] == reports["prefix-reexec"]
    assert reports["multiprocess"] == reports["prefix-reexec"]
    assert reports["trace-compiled"] == reports["prefix-reexec"]
    assert reports["precise-checkpointed"] == reports["prefix-reexec"]
    assert cold_report == reports["prefix-reexec"]
    assert warm_report == reports["prefix-reexec"]

    # the warm fleet's acceptance property: amortized setup plus work
    # stealing must at least double the cold multiprocess throughput
    warm_fps = results["multiprocess-warm"]["faults_per_second"]
    cold_fps = results["multiprocess"]["faults_per_second"]
    assert warm_fps >= WARM_MIN_SPEEDUP * cold_fps, (
        f"multiprocess-warm {warm_fps} f/s is below "
        f"{WARM_MIN_SPEEDUP}x the cold multiprocess {cold_fps} f/s")

    # the compiled tier does the bulk of the stepping — and never
    # changes the deterministic emulated-step count
    assert (results["checkpointed"]["emulated_steps"]
            == results["precise-checkpointed"]["emulated_steps"])
    meta = reports["checkpointed"].meta
    assert meta["compiled_steps"] > meta["precise_steps"]
    assert results["precise-checkpointed"]["compiled_steps"] == 0

    # the acceptance property: checkpoint replay strictly reduces the
    # emulated work vs whole-prefix re-execution
    saved = (results["prefix-reexec"]["emulated_steps"]
             - results["checkpointed"]["emulated_steps"])
    assert saved > 0, results

    # state-family row: the generalized fault-effect path must stay on
    # the same trajectory as fetch substitution
    state_report, state_elapsed = _measure(
        faulter,
        SequentialBackend(checkpoint_interval=CHECKPOINT_INTERVAL),
        model=STATE_MODEL, samples=STATE_SAMPLES)
    models = {
        STATE_MODEL: {
            "wall_seconds": round(state_elapsed, 4),
            "samples": STATE_SAMPLES,
            "faults": state_report.total_faults,
            "faults_per_second": round(
                state_report.total_faults / state_elapsed, 2)
            if state_elapsed else None,
            "emulated_steps": state_report.meta["emulated_steps"],
            "compiled_steps": state_report.meta["compiled_steps"],
            "checkpoint_interval":
                state_report.meta["checkpoint_interval"],
        }
    }

    # k=2 row: the reduced pair campaign must cover the full product
    # bit-identically while emulating >= K2_MIN_SPEEDUP x fewer steps
    ctx = faulter.engine().context(K2_MODEL)
    offsets = [step for step in range(len(ctx.trace))
               if ctx.variants(step)]
    pair_space = ProductSpace(
        k=2, indices=tuple(offsets[::K2_OFFSET_STRIDE]))
    full_start = time.perf_counter()
    full_pairs = faulter.engine().run(
        K2_MODEL, pair_space,
        backend=SequentialBackend(), reduce=False)
    full_elapsed = time.perf_counter() - full_start
    reduced_start = time.perf_counter()
    reduced_pairs = faulter.engine().run(
        K2_MODEL, pair_space,
        backend=SequentialBackend(), reduce=True)
    reduced_elapsed = time.perf_counter() - reduced_start
    assert reduced_pairs == full_pairs
    full_pair_steps = full_pairs.meta["emulated_steps"]
    reduced_pair_steps = reduced_pairs.meta["emulated_steps"]
    step_speedup = full_pair_steps / max(1, reduced_pair_steps)
    assert step_speedup >= K2_MIN_SPEEDUP, (
        f"k=2 reduction speedup {step_speedup:.1f}x is below the "
        f"{K2_MIN_SPEEDUP}x floor")
    models["k2-reduced"] = {
        "wall_seconds": round(reduced_elapsed, 4),
        "model": K2_MODEL,
        "k_faults": 2,
        "faults": reduced_pairs.total_faults,
        "faults_per_second": round(
            reduced_pairs.total_faults / reduced_elapsed, 2)
        if reduced_elapsed else None,
        "emulated_steps": reduced_pair_steps,
        "executed_points":
            reduced_pairs.meta["reduction"]["executed_points"],
        "full_emulated_steps": full_pair_steps,
        "full_wall_seconds": round(full_elapsed, 4),
        "step_speedup": round(step_speedup, 1),
    }

    # chunked-pie row: per-unit chunked exhaustive campaign on the
    # committed PIE fixture — the real-binary path (ET_DYN read,
    # function recovery, WindowedSpace sub-campaigns) on the same
    # perf trajectory as the in-process workloads
    pie_exe = read_elf(
        (REPO_ROOT / "tests/fixtures/bootloader_pie.elf").read_bytes())
    pie_faulter = Faulter(pie_exe, PIE_GOOD, PIE_BAD, PIE_MARKER,
                          name="bootloader-pie")
    chunked_start = time.perf_counter()
    chunked = pie_faulter.run_chunked_campaign("skip")
    chunked_elapsed = time.perf_counter() - chunked_start
    assert chunked == pie_faulter.engine().run(
        "skip", ExhaustiveSpace(), reduce=False)
    models["chunked-pie"] = {
        "wall_seconds": round(chunked_elapsed, 4),
        "model": "skip",
        "faults": chunked.total_faults,
        "faults_per_second": round(
            chunked.total_faults / chunked_elapsed, 2)
        if chunked_elapsed else None,
        "emulated_steps": chunked.meta["emulated_steps"],
        "peak_resident_points": chunked.meta["peak_resident_points"],
        "units": len(chunked.meta["units"]),
    }

    payload = {
        "benchmark": "engine-throughput",
        "workload": wl.name,
        "trace_length": trace_length,
        "model": "skip",
        "samples": SAMPLES,
        "seed": SEED,
        "backends": results,
        "models": models,
        "checkpoint_steps_saved": saved,
        "checkpoint_step_reduction_percent": round(
            100.0 * saved / results["prefix-reexec"]["emulated_steps"],
            2),
        "peak_rss_kb": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "ENGINE THROUGHPUT: sampled skip campaign "
        f"({wl.name}, trace={trace_length}, n={SAMPLES})",
        "",
        f"  {'backend':<16}{'faults/s':>12}{'emulated steps':>18}",
    ]
    for name, row in results.items():
        lines.append(f"  {name:<16}{row['faults_per_second']:>12}"
                     f"{row['emulated_steps']:>18}")
    for name, row in models.items():
        lines.append(f"  {name:<16}{row['faults_per_second']:>12}"
                     f"{row['emulated_steps']:>18}")
    lines += [
        "",
        f"  checkpoint replay saves {saved} emulated steps "
        f"({payload['checkpoint_step_reduction_percent']}%) vs "
        "prefix re-execution",
        f"  k=2 {K2_MODEL} pairs: equivalence reduction emulates "
        f"{step_speedup:.1f}x fewer steps than the full product "
        f"({full_pair_steps} -> {reduced_pair_steps}), bit-identically",
        f"  [written to {BENCH_PATH.name}]",
    ]
    record("BENCH_campaign", "\n".join(lines))
