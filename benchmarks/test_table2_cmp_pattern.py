"""Table II — local protection pattern for ``cmp`` operations.

Regenerates the protected listing (red-zone hop, duplicated compare,
RFLAGS snapshot comparison) and verifies both the preserved semantics
and the fault-detection behaviour.
"""

from conftest import once

from repro.asm import assemble
from repro.disasm import disassemble, reassemble
from repro.disasm.pprint import render_instruction
from repro.emu import Machine, run_executable
from repro.isa.insn import Mnemonic
from repro.patcher import Patcher

SOURCE = """
.text
.global _start
_start:
    mov rbx, 3
    mov rcx, 5
    cmp rbx, rcx
    setb dil            # rdi = 1 iff 3 < 5
    movzx rdi, dil
    mov rax, 60
    syscall
"""


def _protect_compare():
    module = disassemble(assemble(SOURCE))
    patcher = Patcher(module)
    block = module.text().code_blocks()[0]
    target = next(e for e in block.entries
                  if e.insn.mnemonic is Mnemonic.CMP)
    assert patcher.patch_entry(target)
    return module


def test_table2(benchmark, record):
    module = once(benchmark, _protect_compare)

    blocks = module.text().code_blocks()
    lines = []
    for block in blocks[:3]:
        lines.extend(render_instruction(e) for e in block.entries)
    table = [
        "TABLE II: local protection pattern for cmp operations",
        "  original: cmp rbx, rcx",
        "  protected:",
    ] + [f"    {line}" for line in lines]
    record("table2_cmp_pattern", "\n".join(table))

    rendered = "\n".join(lines)
    # pattern ingredients from the paper listing
    assert "lea rsp, qword ptr [rsp-128]" in rendered  # red-zone hop
    assert rendered.count("cmp rbx, rcx") >= 2         # duplicated cmp
    assert "pushfq" in rendered                        # flag snapshots
    assert "qword ptr [rsp]" in rendered               # snapshot compare

    # semantics: CF must survive the pattern (3 < 5 -> exit 1)
    rebuilt = reassemble(module)
    assert run_executable(rebuilt).exit_code == 1

    # fault detection: flip the first compare into a different compare
    # (bit flips on its ModRM) and check for detection or harmlessness
    machine = Machine(rebuilt)
    trace = machine.run(record_trace=True).trace
    from repro.faulter import Faulter
    # exit code 1 == 'grant marker' proxy: reuse campaign machinery by
    # defining the marker as the setb-true exit path output (none), so
    # instead verify by direct skip injection on the duplicated cmp:
    protected_block = module.text().code_blocks()[0]
    cmp_steps = [i for i, addr in enumerate(trace)
                 if machine.fetch_decode(addr).mnemonic is Mnemonic.CMP]
    detected = 0
    for step in cmp_steps[:2]:  # the two duplicated compares
        m2 = Machine(rebuilt)
        result = m2.run(fault_step=step,
                        fault_intercept=lambda insn, cpu: None)
        if result.exit_code == 42:
            detected += 1
        else:
            assert result.exit_code == 1  # fault was harmless
    assert detected >= 1
