"""R3 — the naive full-duplication strawman costs >= 300%.

"duplicating every instruction ... implies at least 300% overhead in
code size ... Therefore, both of our methods perform better than a
simple duplication scheme."  (Here "both methods" refers to the
targeted Faulter+Patcher loop; see EXPERIMENTS.md for the holistic
hybrid discussion.)
"""

from conftest import once

from repro.disasm import disassemble, reassemble
from repro.emu import run_executable
from repro.hybrid.duplication import duplicate_everything
from repro.patcher import FaulterPatcherLoop


def _duplicate(wl):
    exe = wl.build()
    module = disassemble(exe)
    stats = duplicate_everything(module)
    rebuilt = reassemble(module)
    return exe, rebuilt, stats


def test_duplication_overhead(benchmark, record, pincheck_wl,
                              bootloader_wl, rich_pincheck_wl):
    results = once(benchmark, lambda: {
        wl.name: _duplicate(wl)
        for wl in (pincheck_wl, bootloader_wl, rich_pincheck_wl)
    })
    lines = [
        "R3: full-duplication baseline (code size)",
        "",
        "  case study            original   duplicated   overhead",
        "  --------------------  --------   ----------   --------",
    ]
    for name, (exe, rebuilt, stats) in results.items():
        overhead = 100.0 * (rebuilt.code_size() - exe.code_size()) \
            / exe.code_size()
        lines.append(f"  {name:<20}  {exe.code_size():>7}B   "
                     f"{rebuilt.code_size():>9}B   {overhead:>7.1f}%")
        if name in ("pincheck", "secure-bootloader"):
            # the paper's >=300% estimate holds on its case studies
            assert overhead >= 300.0, (
                f"{name}: duplication cost only {overhead:.0f}%")
        else:
            # flag-liveness and control flow cap coverage on the
            # richer program; still far above both of our methods
            assert overhead >= 180.0
        assert stats.duplicated > stats.skipped
    lines.append("")
    lines.append("  paper: duplication implies >= 300% overhead -- "
                 "reproduced")
    record("r3_duplication_baseline", "\n".join(lines))


def test_duplicated_binaries_still_work(record, pincheck_wl,
                                        bootloader_wl):
    for wl in (pincheck_wl, bootloader_wl):
        exe = wl.build()
        module = disassemble(exe)
        duplicate_everything(module)
        rebuilt = reassemble(module)
        good = run_executable(rebuilt, stdin=wl.good_input)
        bad = run_executable(rebuilt, stdin=wl.bad_input)
        assert wl.grant_marker in good.stdout
        assert wl.grant_marker not in bad.stdout


def test_targeted_patching_beats_duplication(benchmark, record,
                                             pincheck_wl):
    wl = pincheck_wl
    exe = wl.build()

    def run():
        fp = FaulterPatcherLoop(exe, wl.good_input, wl.bad_input,
                                wl.grant_marker, models=("skip",),
                                name=wl.name).run()
        module = disassemble(exe)
        duplicate_everything(module)
        return fp, reassemble(module)

    fp, duplicated = once(benchmark, run)
    dup_overhead = 100.0 * (duplicated.code_size() - exe.code_size()) \
        / exe.code_size()
    text = [
        "targeted vs duplication:",
        f"  Faulter+Patcher : {fp.overhead_percent:+7.2f}%",
        f"  duplication     : {dup_overhead:+7.2f}%",
    ]
    record("r3_targeted_vs_duplication", "\n".join(text))
    assert fp.overhead_percent < dup_overhead / 3
