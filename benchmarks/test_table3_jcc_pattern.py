"""Table III — local protection pattern for conditional jumps.

Regenerates the protected listing (set<cc> verification on both edges,
re-executed jump) and verifies that condition-inverting faults are
caught.
"""

from conftest import once

from repro.asm import assemble
from repro.disasm import disassemble, reassemble
from repro.disasm.pprint import render_instruction
from repro.emu import Machine, run_executable
from repro.isa.cond import Cond
from repro.isa.insn import Instruction, Mnemonic
from repro.patcher import Patcher

SOURCE = """
.text
.global _start
_start:
    mov rbx, 3
    cmp rbx, 5
    je equal            # not taken for 3 != 5
    mov rdi, 7
    jmp done
equal:
    mov rdi, 9
done:
    mov rax, 60
    syscall
"""


def _protect_jump():
    module = disassemble(assemble(SOURCE))
    patcher = Patcher(module)
    target = next(
        entry
        for block in module.text().code_blocks()
        for entry in block.entries
        if entry.insn.mnemonic is Mnemonic.JCC and not entry.protected)
    assert patcher.patch_entry(target)
    return module


def test_table3(benchmark, record):
    module = once(benchmark, _protect_jump)

    lines = []
    for block in module.text().code_blocks():
        names = [s.name for s in module.symbols_for(block)]
        for name in names:
            lines.append(f"{name}:")
        lines.extend("    " + render_instruction(e)
                     for e in block.entries)
        if len(lines) > 40:
            break
    record("table3_jcc_pattern",
           "TABLE III: local protection for conditional jumps\n"
           + "\n".join(lines[:40]))

    rendered = "\n".join(lines)
    assert "sete cl" in rendered          # set<cond> cl
    assert "cmp cl, 0" in rendered        # fall-through expects false
    assert "cmp cl, 1" in rendered        # taken edge expects true
    assert "push rcx" in rendered
    assert rendered.count("fi_faulthandler") >= 4

    rebuilt = reassemble(module)
    assert run_executable(rebuilt).exit_code == 7  # branch not taken

    # attack: invert the protected branch's condition (je -> jne); the
    # edge validation must catch the inconsistency
    machine = Machine(rebuilt)
    trace = machine.run(record_trace=True).trace
    jcc_steps = [i for i, addr in enumerate(trace)
                 if machine.fetch_decode(addr).mnemonic is Mnemonic.JCC]

    def invert(insn, cpu):
        return Instruction(Mnemonic.JCC, insn.operands,
                           cond=insn.cond.inverted,
                           address=insn.address, length=insn.length)

    caught = 0
    for step in jcc_steps:
        result = Machine(rebuilt).run(fault_step=step,
                                      fault_intercept=invert)
        if result.exit_code == 42:
            caught += 1
        else:
            assert result.exit_code == 7, (
                f"inverting the jcc at step {step} changed behaviour "
                f"without detection: {result}")
    assert caught >= 1
