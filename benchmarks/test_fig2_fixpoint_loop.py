"""Fig. 2 — the Faulter+Patcher flowchart reaches its fixed point.

Regenerates the per-iteration vulnerability counts until "no more
faults are present or can be fixed".
"""

from conftest import once

from repro.patcher import FaulterPatcherLoop


def test_fig2(benchmark, record, pincheck_wl, bootloader_wl):
    results = once(benchmark, lambda: {
        wl.name: FaulterPatcherLoop(
            wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
            models=("skip",), name=wl.name).run()
        for wl in (pincheck_wl, bootloader_wl)
    })

    lines = ["FIG. 2: Faulter+Patcher iteration to fixed point", ""]
    for name, result in results.items():
        lines.append(f"  {name}:")
        for stats in result.iterations:
            lines.append(
                f"    iteration {stats.iteration}: "
                f"{stats.vulnerable_points} vulnerable point(s), "
                f"{stats.patched} patched, {stats.residual} residual "
                f"(text {stats.text_size}B)")
        lines.append(f"    -> converged: {result.converged}")
        lines.append("")
        assert result.converged
        assert result.iterations[-1].vulnerable_points == 0
        # the loop took at least one patch round
        assert any(s.patched > 0 for s in result.iterations)
    record("fig2_fixpoint_loop", "\n".join(lines))


def test_fig2_iterative_repair(record):
    """Patching may introduce new vulnerable points (the paper's
    'rinse and repeat'); the loop must keep iterating past them."""
    from repro.workloads import pincheck
    wl = pincheck.workload(rich=True)
    result = FaulterPatcherLoop(
        wl.build(), wl.good_input, wl.bad_input, wl.grant_marker,
        models=("skip",), name=wl.name).run()
    assert result.converged
    assert len(result.iterations) >= 2
